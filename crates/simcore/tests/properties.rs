//! Property-based tests for the simulation kernel's core invariants.

use proptest::prelude::*;
use simcore::{Clock, EventQueue, Samples, SharedLink, SimDuration, SimRng, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, with FIFO tie-breaks.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut prev_t = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if prev_t == Some(t) {
                // FIFO tie-break: indices at equal time must be increasing.
                prop_assert!(seen_at_time.last().copied().unwrap() < idx);
                seen_at_time.push(idx);
            } else {
                seen_at_time.clear();
                seen_at_time.push(idx);
            }
            prev_t = Some(t);
            last_time = t;
        }
    }

    /// The clock never moves backwards no matter the schedule order.
    #[test]
    fn clock_is_monotone(delays in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut c: Clock<usize> = Clock::new();
        for (i, &d) in delays.iter().enumerate() {
            c.schedule_after(SimDuration::from_nanos(d), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = c.next() {
            prop_assert!(t >= last);
            prop_assert_eq!(c.now(), t);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, delays.len());
    }

    /// Percentiles are order statistics: p0 = min, p100 = max, monotone in q.
    #[test]
    fn percentiles_are_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut s = Samples::new();
        for &v in &values {
            s.record(v);
        }
        let p0 = s.percentile(0.0).unwrap();
        let p50 = s.percentile(0.5).unwrap();
        let p100 = s.percentile(1.0).unwrap();
        prop_assert!(p0 <= p50 && p50 <= p100);
        prop_assert_eq!(p0, s.min().unwrap());
        prop_assert_eq!(p100, s.max().unwrap());
    }

    /// Work conservation on a shared link: total busy time equals total
    /// bytes / capacity when the link is never idle between flows.
    #[test]
    fn shared_link_conserves_work(
        sizes in prop::collection::vec(1u64..5_000_000_000, 1..20),
        cap_gbps in 1u64..100,
    ) {
        let capacity = cap_gbps as f64 * 1e9;
        let mut link = SharedLink::new(capacity, SimDuration::ZERO);
        let t0 = SimTime::ZERO;
        for &s in &sizes {
            link.start_flow(t0, s);
        }
        let mut now = t0;
        let mut completions = 0usize;
        while link.active_flows() > 0 {
            let next = link.next_completion(now).unwrap();
            prop_assert!(next >= now);
            let done = link.advance_to(next);
            completions += done.len();
            now = next;
        }
        prop_assert_eq!(completions, sizes.len());
        let total: u64 = sizes.iter().sum();
        let expect = total as f64 / capacity;
        let got = now.as_secs_f64();
        // Allow a tiny epsilon per flow for the completion threshold.
        prop_assert!((got - expect).abs() < 1e-5 * sizes.len() as f64 + 1e-6,
            "busy {got}, expected {expect}");
    }

    /// Identical seeds give identical draws across all distributions.
    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert_eq!(a.f64(), b.f64());
            prop_assert_eq!(a.exp(1.5), b.exp(1.5));
            prop_assert_eq!(a.gaussian(), b.gaussian());
            prop_assert_eq!(a.zipf(10, 1.2), b.zipf(10, 1.2));
        }
    }

    /// lognormal_mean_cv always returns positive, finite values.
    #[test]
    fn lognormal_is_positive(seed in any::<u64>(), mean in 1.0f64..1e6, cv in 0.0f64..3.0) {
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = r.lognormal_mean_cv(mean, cv);
            prop_assert!(v > 0.0 && v.is_finite());
        }
    }
}
