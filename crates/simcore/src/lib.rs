//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the DeepServe reproduction. Every higher-level crate
//! (hardware model, serving engine, platform) runs on this kernel:
//!
//! * [`time`] — integer-nanosecond instants and spans ([`SimTime`],
//!   [`SimDuration`]); exact, drift-free, totally ordered.
//! * [`event`] — the event queue and clock ([`EventQueue`], [`Clock`]) with
//!   FIFO tie-breaking so reruns are bit-identical.
//! * [`rng`] — seeded randomness ([`SimRng`]) with the distributions the
//!   workload generators need (exponential, normal, lognormal, Zipf).
//! * [`metrics`] — samples, percentiles, time series, and the serving
//!   metrics the paper reports (TTFT/TPOT/JCT/throughput/SLO attainment).
//! * [`resource`] — queueing primitives: serial [`FifoChannel`]s and
//!   processor-sharing [`SharedLink`]s, the building blocks for PCIe, HCCS,
//!   RoCE and SSD models.
//! * [`trace`] — sim-time spans and events ([`Tracer`], [`Trace`]):
//!   ring-buffered, mergeable across components, zero-cost when disabled.
//! * [`fault`] — seeded, replayable fault schedules ([`FaultPlan`]): TE
//!   crashes, stragglers, link degradation and transfer flakes, injected
//!   as ordinary events so faulted runs stay bit-for-bit deterministic.
//! * [`sync`] — coordination primitives for drivers that step components
//!   on persistent worker threads ([`TaskQueue`], [`Epoch`]); they carry
//!   opaque jobs and round tags, never simulated state.
//!
//! Design rule: **no wall-clock time, no global state, no locking** on the
//! simulation itself. A simulation is an ordinary value you step;
//! determinism comes from integer time, ordered queues and seeded RNG
//! streams, not from synchronization. The kernel itself is
//! single-threaded; a driver may *step* independent components on worker
//! threads, but only if it merges their results back in an order it fully
//! determines (see `deepserve`'s parallel stepping) — the kernel never
//! hides a thread or a lock behind the simulation API. The [`sync`] module
//! is the one place locks appear, and it is strictly an execution-strategy
//! primitive for such drivers: no simulated state ever lives behind it.

#![forbid(unsafe_code)]

pub mod event;
pub mod fault;
pub mod metrics;
pub mod resource;
pub mod rng;
pub mod sync;
pub mod time;
pub mod trace;

pub use event::{Clock, EventQueue, TimeMultiset, CLASS_ARRIVAL, CLASS_DEFAULT};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use metrics::{
    Counters, LatencyStats, MetricId, MetricsRegistry, RequestLatency, Samples, Summary, TimeSeries,
};
pub use resource::{FifoChannel, FlowId, SharedLink};
pub use rng::SimRng;
pub use sync::{Epoch, TaskQueue};
pub use time::{SimDuration, SimTime};
pub use trace::{AttrValue, EventRecord, SpanId, SpanRecord, Trace, TraceLevel, Tracer};
