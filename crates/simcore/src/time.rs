//! Simulated time.
//!
//! All simulations in this workspace run on integer nanoseconds. Using an
//! integer base unit (rather than `f64` seconds) keeps event ordering exact
//! and reruns bit-identical: two events scheduled from different code paths
//! at "the same" instant always compare equal, and accumulation over millions
//! of events cannot drift.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch, as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`; in release
    /// builds saturates to zero. Time in a discrete-event simulation only
    /// moves forward, so a negative elapsed span is a logic error upstream.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span; used as an "unbounded" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Converts a float second count to a span, rounding to the nearest
    /// nanosecond and saturating on overflow or negative input.
    ///
    /// This is the bridge from analytic cost models (which naturally produce
    /// `f64` seconds) into exact simulation time.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(if secs > 0.0 { u64::MAX } else { 0 });
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this span, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds in this span, as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the span by a float factor (for efficiency/contention factors),
    /// rounding to the nearest nanosecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Integer division of the span, rounding down.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, divisor: u64) -> SimDuration {
        SimDuration(self.0 / divisor.max(1))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        let d = SimDuration::ZERO - SimDuration::from_secs(1);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn since_computes_elapsed() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(35);
        assert_eq!(b.since(a), SimDuration::from_millis(25));
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(2),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(2)
            ]
        );
    }
}
