//! Deterministic fault injection: seeded, replayable fault plans.
//!
//! A [`FaultPlan`] is an ordinary piece of simulation input — a time-sorted
//! list of [`FaultEvent`]s that a driver schedules into its deterministic
//! event queue before the run starts. Nothing here touches wall-clock time
//! or global state, so a run is replayable bit-for-bit from
//! `(workload seed, plan)`: the same plan against the same workload always
//! produces the same trace, the same metrics, the same report.
//!
//! The fault vocabulary mirrors what a serverless serving cluster actually
//! sees (DeepServe §4, "occasional hardware failures"):
//!
//! * [`FaultKind::TeCrash`] — a TE dies instantly, losing all engine state
//!   (in-flight batches, KV cache, RTC index).
//! * [`FaultKind::Straggler`] — a TE keeps running but every iteration is
//!   slowed by a factor for a window (thermal throttling, a sick NPU).
//! * [`FaultKind::LinkDegrade`] — inter-TE transfer bandwidth is scaled
//!   down for a window (congestion, a flapping switch).
//! * [`FaultKind::TransferFlake`] — KV transfers started inside the window
//!   fail once and must be retried (transient DistFlow / fabric errors).
//!
//! TEs are addressed by their pool index (`u32`) because this crate sits
//! below the platform layer and must not know its id types.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::Serialize;

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultKind {
    /// TE `te` crashes at the event time, losing all state.
    TeCrash {
        /// Pool index of the crashed TE.
        te: u32,
    },
    /// TE `te` runs `factor`x slower for `duration`.
    Straggler {
        /// Pool index of the straggling TE.
        te: u32,
        /// Iteration wall-time multiplier (> 1.0 = slower).
        factor: f64,
        /// How long the slowdown lasts.
        duration: SimDuration,
    },
    /// Inter-TE link bandwidth is multiplied by `factor` for `duration`.
    LinkDegrade {
        /// Bandwidth multiplier in (0, 1] (0.5 = half speed).
        factor: f64,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
    /// KV transfers started within `duration` fail once and are retried.
    TransferFlake {
        /// How long the flaky window lasts.
        duration: SimDuration,
    },
}

/// A fault scheduled at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete, time-sorted fault schedule for one run.
///
/// Build one with the `with_*` methods (which keep the list sorted) or
/// generate one with [`FaultPlan::random_crashes`]. An empty plan is the
/// explicit "no faults" input: drivers must treat it as a no-op so healthy
/// runs are bit-identical with or without the fault layer armed.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    /// The schedule, sorted by time (stable on ties).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: inject nothing, change nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event, keeping the schedule time-sorted (stable: an event
    /// added later at the same instant fires after earlier ones).
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
    }

    /// Builder: crash TE `te` at `at`.
    pub fn with_crash(mut self, at: SimTime, te: u32) -> Self {
        self.push(at, FaultKind::TeCrash { te });
        self
    }

    /// Builder: slow TE `te` by `factor`x for `duration` starting at `at`.
    pub fn with_straggler(
        mut self,
        at: SimTime,
        te: u32,
        factor: f64,
        duration: SimDuration,
    ) -> Self {
        self.push(
            at,
            FaultKind::Straggler {
                te,
                factor,
                duration,
            },
        );
        self
    }

    /// Builder: degrade link bandwidth to `factor`x for `duration`.
    pub fn with_link_degrade(mut self, at: SimTime, factor: f64, duration: SimDuration) -> Self {
        self.push(at, FaultKind::LinkDegrade { factor, duration });
        self
    }

    /// Builder: make transfers flaky for `duration` starting at `at`.
    pub fn with_transfer_flake(mut self, at: SimTime, duration: SimDuration) -> Self {
        self.push(at, FaultKind::TransferFlake { duration });
        self
    }

    /// Generates a Poisson crash schedule: TE crashes arrive at
    /// `rate_per_sec` over `[0, horizon)`, each hitting a uniformly chosen
    /// TE in `[0, n_tes)`. Deterministic in `seed`; a zero rate yields the
    /// empty plan.
    ///
    /// # Panics
    ///
    /// Panics if `n_tes == 0` while `rate_per_sec > 0`, or if the rate is
    /// negative or non-finite.
    pub fn random_crashes(seed: u64, n_tes: u32, horizon: SimDuration, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec >= 0.0 && rate_per_sec.is_finite(),
            "crash rate must be non-negative and finite, got {rate_per_sec}"
        );
        let mut plan = FaultPlan::none();
        if rate_per_sec == 0.0 {
            return plan;
        }
        assert!(n_tes > 0, "cannot crash TEs in an empty pool");
        let mut rng = SimRng::seed_from_u64(seed ^ 0xfa_17);
        let mut t = 0.0;
        loop {
            t += rng.exp(rate_per_sec);
            if t >= horizon.as_secs_f64() {
                break;
            }
            let te = rng.range(0, n_tes as u64) as u32;
            plan.push(
                SimTime::ZERO + SimDuration::from_secs_f64(t),
                FaultKind::TeCrash { te },
            );
        }
        plan
    }

    /// Largest TE index referenced by the plan, if any TE-scoped fault
    /// exists. Drivers use it to validate the plan against their pool size.
    pub fn max_te(&self) -> Option<u32> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::TeCrash { te } | FaultKind::Straggler { te, .. } => Some(te),
                _ => None,
            })
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_plan_sorted_and_stable() {
        let mut plan = FaultPlan::none();
        plan.push(SimTime::from_secs(2), FaultKind::TeCrash { te: 0 });
        plan.push(SimTime::from_secs(1), FaultKind::TeCrash { te: 1 });
        plan.push(SimTime::from_secs(2), FaultKind::TeCrash { te: 2 });
        let tes: Vec<u32> = plan
            .events
            .iter()
            .map(|e| match e.kind {
                FaultKind::TeCrash { te } => te,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tes, vec![1, 0, 2], "sorted by time, stable on ties");
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn random_crashes_is_deterministic_in_seed() {
        let a = FaultPlan::random_crashes(7, 4, SimDuration::from_secs(60), 0.1);
        let b = FaultPlan::random_crashes(7, 4, SimDuration::from_secs(60), 0.1);
        let c = FaultPlan::random_crashes(8, 4, SimDuration::from_secs(60), 0.1);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert!(a.events.iter().all(|e| e.at < SimTime::from_secs(60)));
        assert!(a.max_te().is_none_or(|m| m < 4));
    }

    #[test]
    fn zero_rate_yields_empty_plan() {
        let p = FaultPlan::random_crashes(1, 4, SimDuration::from_secs(60), 0.0);
        assert!(p.is_empty());
        assert_eq!(p, FaultPlan::none());
        assert!(p.max_te().is_none());
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::none()
            .with_crash(SimTime::from_secs(5), 1)
            .with_straggler(SimTime::from_secs(1), 0, 3.0, SimDuration::from_secs(10))
            .with_link_degrade(SimTime::from_secs(2), 0.25, SimDuration::from_secs(4))
            .with_transfer_flake(SimTime::from_secs(3), SimDuration::from_secs(2));
        assert_eq!(plan.events.len(), 4);
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(plan.max_te(), Some(1));
    }

    #[test]
    fn plan_serializes() {
        use serde::Serialize;
        let plan = FaultPlan::none().with_crash(SimTime::from_secs(1), 2);
        let text = plan.to_value().to_json();
        assert!(text.contains("TeCrash"), "{text}");
    }
}
