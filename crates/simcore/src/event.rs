//! Deterministic event queue and simulation clock.
//!
//! The queue orders events by `(time, class, sequence)`: ties at the same
//! instant are broken first by the *ordering class* (see below), then by
//! insertion order, so a simulation that schedules events in a deterministic
//! order replays bit-identically regardless of how many events collide on
//! one timestamp. The payload type `E` needs no `Ord` impl.
//!
//! # Ordering classes
//!
//! A driver that materializes its whole workload up front schedules every
//! arrival before the run starts, so arrivals hold the globally lowest
//! sequence numbers and win every same-instant tie against events scheduled
//! during the run. A *streaming* driver schedules arrivals lazily (one
//! pending at a time) and would lose those ties. The ordering class restores
//! the materialized semantics: arrivals are scheduled with
//! [`CLASS_ARRIVAL`] (0), everything else with [`CLASS_DEFAULT`] (1), and
//! class is compared before sequence. For a driver that pre-schedules all
//! arrivals the class is a no-op (arrivals already held the lowest
//! sequences), so both admission paths yield one identical total order.
//!
//! # Sharding
//!
//! At thousands of simulated components a single global binary heap becomes
//! the push/pop bottleneck. [`EventQueue`] therefore maintains per-shard
//! sub-heaps with a cached-min merge front (a `BTreeSet` holding each
//! non-empty shard's head key). The global sequence counter spans all
//! shards, so the pop order is *identical* to an unsharded queue — sharding
//! changes only the cost per operation (`O(log shard_len)` heap work plus
//! `O(log shards)` front maintenance), never the order. Callers that do not
//! care push to shard 0 via [`EventQueue::push`].

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Ordering class for arrival-like events: wins every same-instant tie
/// against [`CLASS_DEFAULT`] events regardless of scheduling order.
pub const CLASS_ARRIVAL: u8 = 0;

/// Ordering class for everything scheduled during the run.
pub const CLASS_DEFAULT: u8 = 1;

/// A scheduled event: payload `E` due at `time`.
struct Scheduled<E> {
    time: SimTime,
    class: u8,
    seq: u64,
    payload: E,
}

impl<E> Scheduled<E> {
    /// The total-order key (also the merge-front key, with the shard id
    /// appended by the queue).
    fn key(&self) -> (SimTime, u8, u64) {
        (self.time, self.class, self.seq)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (then the lowest class, then the lowest sequence number) on top.
        other.key().cmp(&self.key())
    }
}

/// Merge-front key: a shard head's total-order key plus the shard index.
/// Sequence numbers are globally unique, so keys never collide and the
/// shard index never influences the order — it is payload, carried so a
/// popped front entry knows which sub-heap to visit.
type FrontKey = (SimTime, u8, u64, u32);

/// A min-queue of timestamped events with deterministic tie-breaking and
/// optional sharding (see the module docs).
pub struct EventQueue<E> {
    /// Per-shard sub-heaps. Shard 0 always exists; higher shards are
    /// created on first use.
    shards: Vec<BinaryHeap<Scheduled<E>>>,
    /// Head key of every non-empty shard, eagerly maintained.
    front: BTreeSet<FrontKey>,
    next_seq: u64,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (one shard until [`EventQueue::push_sharded`]
    /// grows it).
    pub fn new() -> Self {
        EventQueue {
            shards: vec![BinaryHeap::new()],
            front: BTreeSet::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedules `payload` to fire at `time` (shard 0, default class).
    pub fn push(&mut self, time: SimTime, payload: E) {
        self.push_sharded(0, time, CLASS_DEFAULT, payload);
    }

    /// Schedules `payload` at `time` with an explicit ordering class
    /// (shard 0).
    pub fn push_class(&mut self, time: SimTime, class: u8, payload: E) {
        self.push_sharded(0, time, class, payload);
    }

    /// Schedules `payload` at `time` on `shard` with an explicit ordering
    /// class. Shards are created on demand; the pop order is independent of
    /// the shard layout (see the module docs).
    pub fn push_sharded(&mut self, shard: usize, time: SimTime, class: u8, payload: E) {
        if shard >= self.shards.len() {
            self.shards.resize_with(shard + 1, BinaryHeap::new);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let heap = &mut self.shards[shard];
        let old_head = heap.peek().map(Scheduled::key);
        heap.push(Scheduled {
            time,
            class,
            seq,
            payload,
        });
        // Eager front maintenance: replace this shard's front entry iff the
        // push became the new shard head.
        let new_head = heap.peek().map(Scheduled::key);
        if new_head != old_head {
            if let Some((t, c, s)) = old_head {
                self.front.remove(&(t, c, s, shard as u32));
            }
            if let Some((t, c, s)) = new_head {
                self.front.insert((t, c, s, shard as u32));
            }
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let &(t, c, s, shard) = self.front.first()?;
        self.front.remove(&(t, c, s, shard));
        let heap = &mut self.shards[shard as usize];
        let ev = heap.pop();
        debug_assert!(
            ev.as_ref().map(Scheduled::key) == Some((t, c, s)),
            "merge front out of sync with shard head"
        );
        if let Some(next) = heap.peek() {
            let (nt, nc, ns) = next.key();
            self.front.insert((nt, nc, ns, shard));
        }
        ev.map(|e| {
            self.len -= 1;
            (e.time, e.payload)
        })
    }

    /// The due time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.front.first().map(|&(t, _, _, _)| t)
    }

    /// The earliest event without removing it, if any.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        let &(_, _, _, shard) = self.front.first()?;
        self.shards[shard as usize]
            .peek()
            .map(|s| (s.time, &s.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events (the shard layout is kept).
    pub fn clear(&mut self) {
        for h in &mut self.shards {
            h.clear();
        }
        self.front.clear();
        self.len = 0;
    }
}

/// A simulation clock married to an event queue.
///
/// `Clock` enforces the single invariant every discrete-event simulation
/// depends on: **time never moves backwards**. Components schedule future
/// events through [`Clock::schedule`] / [`Clock::schedule_after`]; the driver
/// loop repeatedly calls [`Clock::next`], which advances `now` to the event's
/// due time and hands the payload back.
pub struct Clock<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Default for Clock<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Clock<E> {
    /// Creates a clock at t = 0 with an empty queue.
    pub fn new() -> Self {
        Clock {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past: scheduling behind the clock would make
    /// the event fire "now" in an order that depends on queue internals,
    /// which silently breaks determinism. Callers that mean "as soon as
    /// possible" should pass `self.now()`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "Clock::schedule: time {at} is before now ({})",
            self.now
        );
        self.queue.push(at, payload);
    }

    /// Schedules `payload` at `at` on an event-queue shard with an explicit
    /// ordering class. Same past-scheduling panic as [`Clock::schedule`];
    /// the pop order is independent of the shard layout.
    pub fn schedule_sharded(&mut self, at: SimTime, shard: usize, class: u8, payload: E) {
        assert!(
            at >= self.now,
            "Clock::schedule_sharded: time {at} is before now ({})",
            self.now
        );
        self.queue.push_sharded(shard, at, class, payload);
    }

    /// Schedules `payload` after a relative delay.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, payload: E) {
        let at = self.now + delay;
        self.queue.push(at, payload);
    }

    /// Pops the next event, advancing `now` to its due time.
    ///
    /// Deliberately named like `Iterator::next`; `Clock` is not an
    /// iterator because popping mutates the clock, but the call-site
    /// reading ("give me the next event") is the same.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded an event in the past");
        self.now = t;
        Some((t, e))
    }

    /// Due time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The next event without popping it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.queue.peek()
    }

    /// Pops the next event **without advancing `now`**.
    ///
    /// This exists for batched execution: a driver that pops a run of
    /// homogeneous events to process them together must keep `now` at the
    /// first event's time, then walk it forward itself (via
    /// [`Clock::advance_to`]) as it applies each popped event in order —
    /// otherwise handlers replayed for the earlier events could not
    /// schedule into the gap before the later ones.
    pub fn pop_pending(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded an event in the past");
        Some((t, e))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether any events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Advances `now` without an event (e.g. to align with an external clock).
    ///
    /// # Panics
    ///
    /// Panics if `to` is before the current time.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(
            to >= self.now,
            "Clock::advance_to: target {to} is before now ({})",
            self.now
        );
        self.now = to;
    }
}

/// A multiset of event times with an O(1) minimum.
///
/// Drivers that hand engines a *lookahead horizon* (the earliest pending
/// event that could interact with them) consult the minimum on every wake,
/// which makes a tree-walk per query the hot path. The multiset caches the
/// minimum and only re-derives it (one `BTreeMap` range scan) when the
/// removal that emptied the smallest key invalidates it; inserts refresh it
/// with a plain comparison.
///
/// Removals leave *tombstones* (zero-count entries) rather than paying a
/// tree rebalance per remove; the table is compacted in one `retain` pass
/// whenever dead entries outnumber live ones, so million-event runs keep
/// the structure at O(live) size with amortized O(1) cleanup.
#[derive(Debug, Default)]
pub struct TimeMultiset {
    counts: std::collections::BTreeMap<SimTime, u32>,
    cached_min: Option<SimTime>,
    /// Keys with a positive count.
    live: usize,
    /// Tombstoned keys (count == 0) awaiting compaction.
    dead: usize,
}

impl TimeMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one occurrence of `t`.
    pub fn insert(&mut self, t: SimTime) {
        match self.counts.entry(t) {
            std::collections::btree_map::Entry::Occupied(mut o) => {
                if *o.get() == 0 {
                    // Resurrected tombstone.
                    self.dead -= 1;
                    self.live += 1;
                }
                *o.get_mut() += 1;
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(1);
                self.live += 1;
            }
        }
        if self.cached_min.is_none_or(|m| t < m) {
            self.cached_min = Some(t);
        }
    }

    /// Removes one occurrence of `t`. Removing a time that is not present
    /// is a no-op (loud in debug builds): the caller's insert/remove
    /// pairing is the invariant, not this container's job to repair.
    pub fn remove(&mut self, t: SimTime) {
        match self.counts.get_mut(&t) {
            None | Some(0) => {
                debug_assert!(false, "TimeMultiset::remove of absent time {t}");
            }
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.live -= 1;
                    self.dead += 1;
                    if self.cached_min == Some(t) {
                        // Next live key at or after the dead minimum; the
                        // skipped tombstones fall to the compaction below.
                        self.cached_min = self
                            .counts
                            .range(t..)
                            .find(|(_, &c)| c > 0)
                            .map(|(&k, _)| k);
                    }
                    if self.dead > self.live {
                        self.compact();
                    }
                }
            }
        }
    }

    /// Drops every tombstone in one pass.
    fn compact(&mut self) {
        self.counts.retain(|_, c| *c > 0);
        self.dead = 0;
    }

    /// The smallest time present, if any. O(1).
    pub fn min(&self) -> Option<SimTime> {
        self.cached_min
    }

    /// Whether the multiset holds no times.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether at least one occurrence of `t` is present. Live-ingress
    /// drivers use this to place injected arrivals on collision-free
    /// instants so FIFO tie-breaking cannot diverge between a live run
    /// and its replay.
    pub fn contains(&self, t: SimTime) -> bool {
        self.counts.get(&t).is_some_and(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn class_breaks_ties_before_sequence() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.push(t, "default-early");
        q.push_class(t, CLASS_ARRIVAL, "arrival-late");
        q.push(t, "default-later");
        // The arrival wins the tie despite its later sequence number.
        assert_eq!(q.pop(), Some((t, "arrival-late")));
        assert_eq!(q.pop(), Some((t, "default-early")));
        assert_eq!(q.pop(), Some((t, "default-later")));
    }

    #[test]
    fn sharded_pop_order_matches_unsharded() {
        // Deterministic pseudo-random schedule pushed twice: once all on
        // shard 0, once spread over 7 shards. Pop orders must be identical.
        let mut single = EventQueue::new();
        let mut sharded = EventQueue::new();
        let mut x: u64 = 0x2545f4914f6cdd1d;
        for i in 0..500u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = SimTime::from_nanos(x % 40);
            let class = if x.is_multiple_of(5) {
                CLASS_ARRIVAL
            } else {
                CLASS_DEFAULT
            };
            single.push_class(t, class, i);
            sharded.push_sharded((x % 7) as usize, t, class, i);
        }
        assert_eq!(single.len(), sharded.len());
        while let Some(a) = single.pop() {
            assert_eq!(Some(a), sharded.pop());
        }
        assert!(sharded.is_empty());
    }

    #[test]
    fn sharded_peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push_sharded(3, SimTime::from_millis(9), CLASS_DEFAULT, "late");
        q.push_sharded(1, SimTime::from_millis(2), CLASS_DEFAULT, "early");
        q.push_sharded(2, SimTime::from_millis(4), CLASS_DEFAULT, "mid");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.peek(), Some((SimTime::from_millis(2), &"early")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), "early")));
        assert_eq!(q.peek(), Some((SimTime::from_millis(4), &"mid")));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty() && q.pop().is_none());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c: Clock<u32> = Clock::new();
        c.schedule(SimTime::from_secs(1), 1);
        c.schedule_after(SimDuration::from_millis(10), 2);
        let (t1, e1) = c.next().unwrap();
        assert_eq!((t1, e1), (SimTime::from_millis(10), 2));
        assert_eq!(c.now(), SimTime::from_millis(10));
        let (t2, e2) = c.next().unwrap();
        assert_eq!((t2, e2), (SimTime::from_secs(1), 1));
        assert!(c.next().is_none());
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut c: Clock<u32> = Clock::new();
        c.schedule(SimTime::from_secs(1), 1);
        c.next();
        c.schedule(SimTime::from_millis(1), 2);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_exposes_payload_without_removal() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), "b");
        q.push(SimTime::from_millis(1), "a");
        assert_eq!(q.peek(), Some((SimTime::from_millis(1), &"a")));
        assert_eq!(q.len(), 2);
        let mut c: Clock<&str> = Clock::new();
        c.schedule(SimTime::from_millis(2), "x");
        assert_eq!(c.peek(), Some((SimTime::from_millis(2), &"x")));
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn pop_pending_leaves_now_untouched() {
        let mut c: Clock<u32> = Clock::new();
        c.schedule(SimTime::from_millis(5), 1);
        c.schedule(SimTime::from_millis(9), 2);
        let (t1, e1) = c.pop_pending().unwrap();
        assert_eq!((t1, e1), (SimTime::from_millis(5), 1));
        assert_eq!(c.now(), SimTime::ZERO);
        // A batch driver can still schedule into the gap before the
        // popped event's time, then walk `now` forward explicitly.
        c.schedule(SimTime::from_millis(3), 3);
        c.advance_to(SimTime::from_millis(3));
        assert_eq!(c.next(), Some((SimTime::from_millis(3), 3)));
        assert_eq!(c.next(), Some((SimTime::from_millis(9), 2)));
    }

    #[test]
    fn clock_schedule_sharded_preserves_order() {
        let mut c: Clock<&str> = Clock::new();
        c.schedule_sharded(SimTime::from_millis(4), 2, CLASS_DEFAULT, "wake");
        c.schedule_sharded(SimTime::from_millis(4), 0, CLASS_ARRIVAL, "arrival");
        assert_eq!(c.next(), Some((SimTime::from_millis(4), "arrival")));
        assert_eq!(c.next(), Some((SimTime::from_millis(4), "wake")));
    }

    #[test]
    fn time_multiset_tracks_min_through_inserts_and_removes() {
        let mut m = TimeMultiset::new();
        assert_eq!(m.min(), None);
        assert!(m.is_empty());
        let (t1, t2, t3) = (
            SimTime::from_millis(1),
            SimTime::from_millis(2),
            SimTime::from_millis(3),
        );
        m.insert(t2);
        m.insert(t3);
        assert_eq!(m.min(), Some(t2));
        m.insert(t1);
        m.insert(t1);
        assert_eq!(m.min(), Some(t1));
        // Duplicate removal: min holds until the last occurrence goes.
        m.remove(t1);
        assert_eq!(m.min(), Some(t1));
        m.remove(t1);
        assert_eq!(m.min(), Some(t2));
        // Removing a non-min key never disturbs the cache.
        m.remove(t3);
        assert_eq!(m.min(), Some(t2));
        m.remove(t2);
        assert_eq!(m.min(), None);
        assert!(m.is_empty());
        // Tombstones do not make removed keys look present.
        assert!(!m.contains(t1) && !m.contains(t2) && !m.contains(t3));
    }

    #[test]
    fn time_multiset_matches_naive_scan() {
        // Deterministic pseudo-random interleaving of inserts/removes,
        // cross-checked against a recomputed min each step.
        let mut m = TimeMultiset::new();
        let mut shadow: Vec<SimTime> = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = SimTime::from_nanos(x % 16);
            if x.is_multiple_of(3) && !shadow.is_empty() {
                let idx = (x as usize / 3) % shadow.len();
                let victim = shadow.swap_remove(idx);
                m.remove(victim);
            } else {
                shadow.push(t);
                m.insert(t);
            }
            assert_eq!(m.min(), shadow.iter().min().copied());
        }
    }

    #[test]
    fn time_multiset_compacts_tombstones() {
        // A sliding window of insert/remove pairs over ever-increasing
        // times: without compaction the table would grow to ~N keys; with
        // the dead > live trigger it stays at O(live).
        let mut m = TimeMultiset::new();
        for i in 0..100_000u64 {
            m.insert(SimTime::from_nanos(i));
            if i >= 8 {
                m.remove(SimTime::from_nanos(i - 8));
                assert_eq!(m.min(), Some(SimTime::from_nanos(i - 7)));
            }
        }
        // 9 live keys; compaction keeps the table within live + dead <= 2x.
        assert!(
            m.counts.len() <= 19,
            "tombstones not compacted: {} entries",
            m.counts.len()
        );
        for i in 100_000 - 8..100_000 {
            m.remove(SimTime::from_nanos(i));
        }
        assert!(m.is_empty());
        assert_eq!(m.min(), None);
    }
}
