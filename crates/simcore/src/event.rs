//! Deterministic event queue and simulation clock.
//!
//! The queue orders events by `(time, sequence)`: ties at the same instant
//! are broken by insertion order, so a simulation that schedules events in a
//! deterministic order replays bit-identically regardless of how many events
//! collide on one timestamp. The payload type `E` needs no `Ord` impl.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: payload `E` due at `time`.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (then the lowest sequence number) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of timestamped events with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// The due time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A simulation clock married to an event queue.
///
/// `Clock` enforces the single invariant every discrete-event simulation
/// depends on: **time never moves backwards**. Components schedule future
/// events through [`Clock::schedule`] / [`Clock::schedule_after`]; the driver
/// loop repeatedly calls [`Clock::next`], which advances `now` to the event's
/// due time and hands the payload back.
pub struct Clock<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Default for Clock<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Clock<E> {
    /// Creates a clock at t = 0 with an empty queue.
    pub fn new() -> Self {
        Clock {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past: scheduling behind the clock would make
    /// the event fire "now" in an order that depends on queue internals,
    /// which silently breaks determinism. Callers that mean "as soon as
    /// possible" should pass `self.now()`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "Clock::schedule: time {at} is before now ({})",
            self.now
        );
        self.queue.push(at, payload);
    }

    /// Schedules `payload` after a relative delay.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, payload: E) {
        let at = self.now + delay;
        self.queue.push(at, payload);
    }

    /// Pops the next event, advancing `now` to its due time.
    ///
    /// Deliberately named like `Iterator::next`; `Clock` is not an
    /// iterator because popping mutates the clock, but the call-site
    /// reading ("give me the next event") is the same.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded an event in the past");
        self.now = t;
        Some((t, e))
    }

    /// Due time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether any events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Advances `now` without an event (e.g. to align with an external clock).
    ///
    /// # Panics
    ///
    /// Panics if `to` is before the current time.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(
            to >= self.now,
            "Clock::advance_to: target {to} is before now ({})",
            self.now
        );
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c: Clock<u32> = Clock::new();
        c.schedule(SimTime::from_secs(1), 1);
        c.schedule_after(SimDuration::from_millis(10), 2);
        let (t1, e1) = c.next().unwrap();
        assert_eq!((t1, e1), (SimTime::from_millis(10), 2));
        assert_eq!(c.now(), SimTime::from_millis(10));
        let (t2, e2) = c.next().unwrap();
        assert_eq!((t2, e2), (SimTime::from_secs(1), 1));
        assert!(c.next().is_none());
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut c: Clock<u32> = Clock::new();
        c.schedule(SimTime::from_secs(1), 1);
        c.next();
        c.schedule(SimTime::from_millis(1), 2);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
