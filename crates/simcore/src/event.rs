//! Deterministic event queue and simulation clock.
//!
//! The queue orders events by `(time, sequence)`: ties at the same instant
//! are broken by insertion order, so a simulation that schedules events in a
//! deterministic order replays bit-identically regardless of how many events
//! collide on one timestamp. The payload type `E` needs no `Ord` impl.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: payload `E` due at `time`.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (then the lowest sequence number) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of timestamped events with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// The due time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The earliest event without removing it, if any.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|s| (s.time, &s.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A simulation clock married to an event queue.
///
/// `Clock` enforces the single invariant every discrete-event simulation
/// depends on: **time never moves backwards**. Components schedule future
/// events through [`Clock::schedule`] / [`Clock::schedule_after`]; the driver
/// loop repeatedly calls [`Clock::next`], which advances `now` to the event's
/// due time and hands the payload back.
pub struct Clock<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Default for Clock<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Clock<E> {
    /// Creates a clock at t = 0 with an empty queue.
    pub fn new() -> Self {
        Clock {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past: scheduling behind the clock would make
    /// the event fire "now" in an order that depends on queue internals,
    /// which silently breaks determinism. Callers that mean "as soon as
    /// possible" should pass `self.now()`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "Clock::schedule: time {at} is before now ({})",
            self.now
        );
        self.queue.push(at, payload);
    }

    /// Schedules `payload` after a relative delay.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, payload: E) {
        let at = self.now + delay;
        self.queue.push(at, payload);
    }

    /// Pops the next event, advancing `now` to its due time.
    ///
    /// Deliberately named like `Iterator::next`; `Clock` is not an
    /// iterator because popping mutates the clock, but the call-site
    /// reading ("give me the next event") is the same.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded an event in the past");
        self.now = t;
        Some((t, e))
    }

    /// Due time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The next event without popping it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.queue.peek()
    }

    /// Pops the next event **without advancing `now`**.
    ///
    /// This exists for batched execution: a driver that pops a run of
    /// homogeneous events to process them together must keep `now` at the
    /// first event's time, then walk it forward itself (via
    /// [`Clock::advance_to`]) as it applies each popped event in order —
    /// otherwise handlers replayed for the earlier events could not
    /// schedule into the gap before the later ones.
    pub fn pop_pending(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded an event in the past");
        Some((t, e))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether any events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Advances `now` without an event (e.g. to align with an external clock).
    ///
    /// # Panics
    ///
    /// Panics if `to` is before the current time.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(
            to >= self.now,
            "Clock::advance_to: target {to} is before now ({})",
            self.now
        );
        self.now = to;
    }
}

/// A multiset of event times with an O(1) minimum.
///
/// Drivers that hand engines a *lookahead horizon* (the earliest pending
/// event that could interact with them) consult the minimum on every wake,
/// which makes a tree-walk per query the hot path. The multiset caches the
/// minimum and only re-derives it (one `BTreeMap` min-key lookup) when the
/// removal that emptied the smallest key invalidates it; inserts refresh it
/// with a plain comparison.
#[derive(Debug, Default)]
pub struct TimeMultiset {
    counts: std::collections::BTreeMap<SimTime, u32>,
    cached_min: Option<SimTime>,
}

impl TimeMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one occurrence of `t`.
    pub fn insert(&mut self, t: SimTime) {
        *self.counts.entry(t).or_insert(0) += 1;
        if self.cached_min.is_none_or(|m| t < m) {
            self.cached_min = Some(t);
        }
    }

    /// Removes one occurrence of `t`. Removing a time that is not present
    /// is a no-op (loud in debug builds): the caller's insert/remove
    /// pairing is the invariant, not this container's job to repair.
    pub fn remove(&mut self, t: SimTime) {
        let Some(n) = self.counts.get_mut(&t) else {
            debug_assert!(false, "TimeMultiset::remove of absent time {t}");
            return;
        };
        *n -= 1;
        if *n == 0 {
            self.counts.remove(&t);
            if self.cached_min == Some(t) {
                self.cached_min = self.counts.keys().next().copied();
            }
        }
    }

    /// The smallest time present, if any. O(1).
    pub fn min(&self) -> Option<SimTime> {
        self.cached_min
    }

    /// Whether the multiset holds no times.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Whether at least one occurrence of `t` is present. Live-ingress
    /// drivers use this to place injected arrivals on collision-free
    /// instants so FIFO tie-breaking cannot diverge between a live run
    /// and its replay.
    pub fn contains(&self, t: SimTime) -> bool {
        self.counts.contains_key(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c: Clock<u32> = Clock::new();
        c.schedule(SimTime::from_secs(1), 1);
        c.schedule_after(SimDuration::from_millis(10), 2);
        let (t1, e1) = c.next().unwrap();
        assert_eq!((t1, e1), (SimTime::from_millis(10), 2));
        assert_eq!(c.now(), SimTime::from_millis(10));
        let (t2, e2) = c.next().unwrap();
        assert_eq!((t2, e2), (SimTime::from_secs(1), 1));
        assert!(c.next().is_none());
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut c: Clock<u32> = Clock::new();
        c.schedule(SimTime::from_secs(1), 1);
        c.next();
        c.schedule(SimTime::from_millis(1), 2);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_exposes_payload_without_removal() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), "b");
        q.push(SimTime::from_millis(1), "a");
        assert_eq!(q.peek(), Some((SimTime::from_millis(1), &"a")));
        assert_eq!(q.len(), 2);
        let mut c: Clock<&str> = Clock::new();
        c.schedule(SimTime::from_millis(2), "x");
        assert_eq!(c.peek(), Some((SimTime::from_millis(2), &"x")));
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn pop_pending_leaves_now_untouched() {
        let mut c: Clock<u32> = Clock::new();
        c.schedule(SimTime::from_millis(5), 1);
        c.schedule(SimTime::from_millis(9), 2);
        let (t1, e1) = c.pop_pending().unwrap();
        assert_eq!((t1, e1), (SimTime::from_millis(5), 1));
        assert_eq!(c.now(), SimTime::ZERO);
        // A batch driver can still schedule into the gap before the
        // popped event's time, then walk `now` forward explicitly.
        c.schedule(SimTime::from_millis(3), 3);
        c.advance_to(SimTime::from_millis(3));
        assert_eq!(c.next(), Some((SimTime::from_millis(3), 3)));
        assert_eq!(c.next(), Some((SimTime::from_millis(9), 2)));
    }

    #[test]
    fn time_multiset_tracks_min_through_inserts_and_removes() {
        let mut m = TimeMultiset::new();
        assert_eq!(m.min(), None);
        assert!(m.is_empty());
        let (t1, t2, t3) = (
            SimTime::from_millis(1),
            SimTime::from_millis(2),
            SimTime::from_millis(3),
        );
        m.insert(t2);
        m.insert(t3);
        assert_eq!(m.min(), Some(t2));
        m.insert(t1);
        m.insert(t1);
        assert_eq!(m.min(), Some(t1));
        // Duplicate removal: min holds until the last occurrence goes.
        m.remove(t1);
        assert_eq!(m.min(), Some(t1));
        m.remove(t1);
        assert_eq!(m.min(), Some(t2));
        // Removing a non-min key never disturbs the cache.
        m.remove(t3);
        assert_eq!(m.min(), Some(t2));
        m.remove(t2);
        assert_eq!(m.min(), None);
        assert!(m.is_empty());
    }

    #[test]
    fn time_multiset_matches_naive_scan() {
        // Deterministic pseudo-random interleaving of inserts/removes,
        // cross-checked against a recomputed min each step.
        let mut m = TimeMultiset::new();
        let mut shadow: Vec<SimTime> = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = SimTime::from_nanos(x % 16);
            if x.is_multiple_of(3) && !shadow.is_empty() {
                let idx = (x as usize / 3) % shadow.len();
                let victim = shadow.swap_remove(idx);
                m.remove(victim);
            } else {
                shadow.push(t);
                m.insert(t);
            }
            assert_eq!(m.min(), shadow.iter().min().copied());
        }
    }
}
