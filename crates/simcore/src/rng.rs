//! Seeded randomness and the distributions the workloads need.
//!
//! Everything is built on a self-contained xoshiro256++ generator (seeded
//! through SplitMix64 from a caller-supplied 64-bit seed), so a given seed
//! reproduces the exact same arrival process, prompt lengths and decode
//! lengths run after run — with zero external dependencies, which keeps the
//! workspace buildable offline. The non-uniform distributions (normal,
//! lognormal, Zipf) are implemented here directly.

/// A deterministic random source for simulations.
///
/// Core generator: xoshiro256++ (Blackman & Vigna), a small, fast, high
/// quality non-cryptographic PRNG. State is expanded from the seed via
/// SplitMix64 so similar seeds still give uncorrelated streams.
pub struct SimRng {
    state: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            gauss_spare: None,
        }
    }

    fn next(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator. Used to give each component
    /// (arrivals, lengths, predictor noise, ...) its own stream so adding a
    /// draw in one place does not perturb every other stream.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.next();
        SimRng::seed_from_u64(seed)
    }

    /// Derives the `stream`-th child generator **without advancing this
    /// one** — unlike [`SimRng::fork`], which consumes a draw.
    ///
    /// Splitting is for parallel drivers: a coordinator that hands each
    /// worker its own stream must derive all of them from a state it does
    /// not mutate, so the set of streams (and everything downstream of the
    /// parent) is independent of how many workers exist. Two splits with
    /// the same parent state and index always yield the same stream;
    /// distinct indices yield uncorrelated streams.
    pub fn split(&self, stream: u64) -> SimRng {
        // Mix the full parent state with the stream index through
        // SplitMix64 so child seeds differ in all bits even for adjacent
        // indices.
        let mut sm = self.state[0] ^ self.state[1].rotate_left(17);
        let _ = splitmix64(&mut sm);
        sm ^= self.state[2] ^ self.state[3].rotate_left(29);
        let _ = splitmix64(&mut sm);
        sm ^= stream.wrapping_mul(0xd1342543de82ef95);
        SimRng::seed_from_u64(splitmix64(&mut sm))
    }

    /// Uniform draw in `[0, 1)` (53 random mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range: empty range [{lo}, {hi})");
        // Fixed-point multiply maps a 64-bit draw onto the span; the bias is
        // below 2^-64 per unit of span, irrelevant for simulation draws and
        // (unlike rejection sampling) always consumes exactly one draw,
        // which keeps replay counting simple.
        let span = hi - lo;
        lo + ((self.next() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "SimRng::index: n must be positive");
        self.range(0, n as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential draw with the given rate (mean `1/rate`). Used for
    /// Poisson-process inter-arrival gaps.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "SimRng::exp: rate must be positive and finite, got {rate}"
        );
        // Inverse-CDF; 1 - f64() is in (0, 1] so ln() is finite.
        -(1.0 - self.f64()).ln() / rate
    }

    /// Standard normal draw (Box-Muller, with spare caching).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Polar Box-Muller: rejection-sample a point in the unit disc.
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Lognormal draw parameterized by the mean/std-dev of the *underlying*
    /// normal (the conventional mu/sigma parameterization).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Lognormal draw parameterized by the desired mean and coefficient of
    /// variation of the *resulting* distribution — the form workload specs
    /// are written in ("mean 2000 tokens, cv 0.3").
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv < 0`.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(mean > 0.0, "lognormal mean must be positive, got {mean}");
        assert!(cv >= 0.0, "lognormal cv must be non-negative, got {cv}");
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// Zipf draw over `{0, 1, ..., n-1}` with exponent `s` (rank 0 most
    /// likely). Used for skewed popularity, e.g. which model a scale-up
    /// targets or which shared prefix a chat request extends.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "SimRng::zipf: n must be positive");
        assert!(s >= 0.0, "SimRng::zipf: exponent must be non-negative");
        // Inverse-CDF over the explicit normalized weights. n is small in
        // every use here (model catalog sizes, prefix group counts), so the
        // O(n) walk is fine and exact.
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut u = self.f64() * norm;
        for k in 1..=n {
            let w = (k as f64).powf(-s);
            if u < w {
                return k - 1;
            }
            u -= w;
        }
        n - 1
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        // Parent stream continues identically after the fork.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_is_deterministic_and_leaves_parent_untouched() {
        let mut a = SimRng::seed_from_u64(9);
        let b = SimRng::seed_from_u64(9);
        let mut s0 = a.split(0);
        let mut s0b = b.split(0);
        let mut s1 = a.split(1);
        assert_eq!(s0.next_u64(), s0b.next_u64());
        assert_ne!(s0.next_u64(), s1.next_u64());
        // Parent stream is byte-identical to an unsplit twin.
        let mut twin = SimRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), twin.next_u64());
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gaussian_moments_are_close() {
        let mut r = SimRng::seed_from_u64(2);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_mean_cv_hits_targets() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal_mean_cv(2000.0, 0.3)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 2000.0).abs() / 2000.0 < 0.02, "mean {mean}");
        assert!((cv - 0.3).abs() < 0.02, "cv {cv}");
    }

    #[test]
    fn lognormal_zero_cv_is_constant() {
        let mut r = SimRng::seed_from_u64(4);
        assert_eq!(r.lognormal_mean_cv(123.0, 0.0), 123.0);
    }

    #[test]
    fn zipf_is_monotone_in_rank() {
        let mut r = SimRng::seed_from_u64(5);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.zipf(5, 1.0)] += 1;
        }
        for w in counts.windows(2) {
            assert!(w[0] > w[1], "zipf counts not decreasing: {counts:?}");
        }
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut r = SimRng::seed_from_u64(6);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.zipf(4, 0.0)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
