//! Time-shared resource models.
//!
//! Two queueing primitives cover every piece of hardware the cluster model
//! needs:
//!
//! * [`FifoChannel`] — a serial resource: one user at a time, back-to-back.
//!   Models DMA engines and NPU compute streams, where kernels/copies are
//!   issued in order and each runs alone.
//! * [`SharedLink`] — a processor-sharing resource: concurrent flows split
//!   the capacity equally (max-min fair with equal demands). Models PCIe
//!   links shared by TP ranks and HCCS/RoCE fabric ports carrying multiple
//!   simultaneous transfers. This is where the paper's observed "local
//!   loading time increases with larger TP ranks due to PCIe link sharing"
//!   comes from.

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifier for an in-flight flow on a [`SharedLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

/// A resource that serves one job at a time, in submission order.
#[derive(Debug, Clone)]
pub struct FifoChannel {
    /// Sustained bandwidth, bytes per second.
    bandwidth: f64,
    /// Fixed per-job setup latency.
    latency: SimDuration,
    /// Time the channel becomes free.
    busy_until: SimTime,
}

impl FifoChannel {
    /// Creates a channel with the given bandwidth (bytes/s) and fixed
    /// per-job latency.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive and finite.
    pub fn new(bandwidth: f64, latency: SimDuration) -> Self {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "FifoChannel: bandwidth must be positive and finite, got {bandwidth}"
        );
        FifoChannel {
            bandwidth,
            latency,
            busy_until: SimTime::ZERO,
        }
    }

    /// Duration a `bytes`-sized job occupies the channel (latency + transfer).
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Enqueues a `bytes`-sized job at time `now`; returns its completion
    /// time. The job starts when the channel frees up.
    pub fn enqueue(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.busy_until.max_of(now);
        let done = start + self.service_time(bytes);
        self.busy_until = done;
        done
    }

    /// Time the channel next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the channel is free at `now`.
    pub fn is_free(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Configured bandwidth, bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
}

/// A processor-sharing link: all active flows progress simultaneously at
/// `capacity / n` each.
///
/// Usage is a three-step dance driven by the caller's event loop:
///
/// 1. [`SharedLink::start_flow`] when a transfer begins,
/// 2. [`SharedLink::next_completion`] to learn when the earliest flow ends
///    (schedule an event there),
/// 3. [`SharedLink::advance_to`] when that event fires, which drains progress
///    and returns the flows that finished.
///
/// Starting or finishing a flow changes every other flow's rate, so callers
/// must re-query `next_completion` after any mutation (completion events that
/// were scheduled earlier are then stale; callers detect that by checking the
/// returned completion set).
#[derive(Debug, Clone)]
pub struct SharedLink {
    capacity: f64,
    latency: SimDuration,
    /// In-flight flows. A `BTreeMap` so every iteration (min-remaining
    /// scan, completion drain) runs in `FlowId` order — flow completion
    /// order feeds transfer completion order, which feeds reports.
    flows: BTreeMap<FlowId, Flow>,
    last_update: SimTime,
    next_id: u64,
}

/// Flows smaller than this (in bytes) are considered complete; guards against
/// float residue keeping a flow alive forever.
const COMPLETION_EPSILON: f64 = 0.5;

impl SharedLink {
    /// Creates a link with the given total capacity (bytes/s) and per-flow
    /// setup latency (added to each flow's size as `latency * capacity`
    /// equivalent bytes, so it degrades gracefully under sharing).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn new(capacity: f64, latency: SimDuration) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "SharedLink: capacity must be positive and finite, got {capacity}"
        );
        SharedLink {
            capacity,
            latency,
            flows: BTreeMap::new(),
            last_update: SimTime::ZERO,
            next_id: 0,
        }
    }

    /// Total link capacity, bytes per second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of flows currently sharing the link.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Per-flow rate at the current occupancy (bytes/s).
    pub fn current_rate(&self) -> f64 {
        if self.flows.is_empty() {
            self.capacity
        } else {
            self.capacity / self.flows.len() as f64
        }
    }

    /// Begins a transfer of `bytes` at time `now`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the link's last update (time went backwards).
    pub fn start_flow(&mut self, now: SimTime, bytes: u64) -> FlowId {
        self.drain_to(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        // Account setup latency as extra bytes at full-capacity rate: a
        // latency of L behaves like L * capacity extra bytes for a lone
        // flow and slightly more under sharing, matching the intuition that
        // setup handshakes also slow down under congestion.
        let effective = bytes as f64 + self.latency.as_secs_f64() * self.capacity;
        self.flows.insert(
            id,
            Flow {
                remaining: effective.max(COMPLETION_EPSILON * 2.0),
            },
        );
        id
    }

    /// Cancels a flow (e.g. the transfer's initiator died). No-op if the
    /// flow already completed.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) {
        self.drain_to(now);
        self.flows.remove(&id);
    }

    /// The earliest time any active flow completes, given current sharing.
    /// `None` if the link is idle.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        if self.flows.is_empty() {
            return None;
        }
        debug_assert!(now >= self.last_update);
        let rate = self.current_rate();
        let min_remaining = self
            .flows
            .values()
            .map(|f| f.remaining)
            .fold(f64::INFINITY, f64::min);
        // Remaining work at the time of the last drain; the caller passes
        // `now == last_update` in the common case (they just mutated).
        let elapsed = now.since(self.last_update).as_secs_f64();
        let left = (min_remaining - rate * elapsed).max(0.0);
        // Overshoot by one nanosecond: rounding `left / rate` to the nearest
        // nanosecond can land *before* the true completion instant, and an
        // advance_to() at that instant would leave a residue above the
        // completion epsilon — the caller would then spin on the same time
        // forever. One extra nanosecond guarantees progress.
        Some(now + SimDuration::from_secs_f64(left / rate) + SimDuration::from_nanos(1))
    }

    /// Advances the link to `now`, draining progress at the shared rate, and
    /// returns the ids of flows that completed (in id order, for
    /// determinism).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last update.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<FlowId> {
        self.drain_to(now);
        // BTreeMap iteration is already id order — no sort needed.
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= COMPLETION_EPSILON)
            .map(|(&id, _)| id)
            .collect();
        for id in &done {
            self.flows.remove(id);
        }
        done
    }

    fn drain_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "SharedLink: time went backwards ({now} < {})",
            self.last_update
        );
        if self.flows.is_empty() {
            self.last_update = now;
            return;
        }
        let dt = now.since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            let rate = self.current_rate();
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - rate * dt).max(0.0);
            }
        }
        self.last_update = now;
    }

    /// One-shot helper: the time a lone transfer of `bytes` would take on an
    /// idle link (latency + size/capacity). Used by analytic cost models
    /// that don't need flow-level interleaving.
    pub fn lone_transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn fifo_serializes_jobs() {
        let mut ch = FifoChannel::new(1e9, SimDuration::ZERO); // 1 GB/s
        let t0 = SimTime::ZERO;
        let d1 = ch.enqueue(t0, 1_000_000_000); // 1s
        let d2 = ch.enqueue(t0, 1_000_000_000); // queued behind
        assert_eq!(d1, SimTime::from_secs(1));
        assert_eq!(d2, SimTime::from_secs(2));
        // Enqueue after idle gap starts immediately.
        let d3 = ch.enqueue(SimTime::from_secs(10), 500_000_000);
        assert_eq!(d3, SimTime::from_millis(10_500));
    }

    #[test]
    fn fifo_adds_latency_per_job() {
        let mut ch = FifoChannel::new(1e9, SimDuration::from_millis(5));
        let done = ch.enqueue(SimTime::ZERO, 1_000_000_000);
        assert_eq!(done, SimTime::from_millis(1005));
    }

    #[test]
    fn lone_flow_runs_at_full_capacity() {
        let mut link = SharedLink::new(1e9, SimDuration::ZERO);
        let t0 = SimTime::ZERO;
        link.start_flow(t0, GB);
        let done = link.next_completion(t0).unwrap();
        let expect = GB as f64 / 1e9;
        assert!((done.as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn two_flows_halve_the_rate() {
        let mut link = SharedLink::new(1e9, SimDuration::ZERO);
        let t0 = SimTime::ZERO;
        let a = link.start_flow(t0, 1_000_000_000);
        let _b = link.start_flow(t0, 1_000_000_000);
        // Equal flows sharing equally finish together at 2s.
        let done = link.next_completion(t0).unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6, "{done}");
        let finished = link.advance_to(done);
        assert_eq!(finished.len(), 2);
        assert!(finished.contains(&a));
    }

    #[test]
    fn late_joiner_slows_existing_flow() {
        let mut link = SharedLink::new(1e9, SimDuration::ZERO);
        let t0 = SimTime::ZERO;
        let a = link.start_flow(t0, 1_000_000_000); // alone: would finish at 1s
        let t_half = SimTime::from_millis(500);
        let b = link.start_flow(t_half, 1_000_000_000); // joins at 0.5s
                                                        // a has 0.5 GB left, now at 0.5 GB/s => finishes at 1.5s.
        let next = link.next_completion(t_half).unwrap();
        assert!((next.as_secs_f64() - 1.5).abs() < 1e-6, "{next}");
        let done_a = link.advance_to(next);
        assert_eq!(done_a, vec![a]);
        // b alone again: 0.5 GB left at 1 GB/s => finishes at 2.0s.
        let next_b = link.next_completion(next).unwrap();
        assert!((next_b.as_secs_f64() - 2.0).abs() < 1e-6, "{next_b}");
        assert_eq!(link.advance_to(next_b), vec![b]);
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn cancel_restores_capacity() {
        let mut link = SharedLink::new(1e9, SimDuration::ZERO);
        let t0 = SimTime::ZERO;
        let a = link.start_flow(t0, GB);
        let b = link.start_flow(t0, GB);
        link.cancel_flow(SimTime::from_millis(1), b);
        assert_eq!(link.active_flows(), 1);
        let done = link.next_completion(SimTime::from_millis(1)).unwrap();
        // ~1ms shared (negligible progress at half rate) then full rate.
        assert!(done < SimTime::from_millis(1100), "{done}");
        assert_eq!(link.advance_to(done), vec![a]);
    }

    #[test]
    fn conservation_of_work() {
        // Total bytes delivered must equal capacity * busy time, regardless
        // of how flows interleave.
        let mut link = SharedLink::new(2e9, SimDuration::ZERO);
        let t0 = SimTime::ZERO;
        link.start_flow(t0, 3 * GB);
        link.start_flow(t0, GB);
        link.start_flow(SimTime::from_millis(200), GB);
        let mut now = SimTime::from_millis(200);
        let mut last_done = SimTime::ZERO;
        while link.active_flows() > 0 {
            let next = link.next_completion(now).unwrap();
            let finished = link.advance_to(next);
            assert!(!finished.is_empty());
            now = next;
            last_done = next;
        }
        let total_bytes = (5 * GB) as f64;
        let busy_secs = last_done.as_secs_f64();
        assert!(
            (busy_secs - total_bytes / 2e9).abs() < 1e-6,
            "busy {busy_secs}, expected {}",
            total_bytes / 2e9
        );
    }

    #[test]
    fn zero_byte_flow_completes_quickly() {
        let mut link = SharedLink::new(1e9, SimDuration::ZERO);
        let id = link.start_flow(SimTime::ZERO, 0);
        let done = link.next_completion(SimTime::ZERO).unwrap();
        assert!(done <= SimTime::from_micros(1));
        assert_eq!(link.advance_to(done), vec![id]);
    }
}
