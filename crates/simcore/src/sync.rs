//! Coordination primitives for persistent worker pools.
//!
//! The simulation kernel itself is single-threaded (see the crate docs);
//! these types exist for *drivers* that step independent components on
//! long-lived worker threads and merge the results back in an order they
//! fully determine. Nothing here touches simulated state: a [`TaskQueue`]
//! carries opaque jobs, and an [`Epoch`] tags dispatch rounds so a
//! coordinator can assert that every completion it applies belongs to the
//! round it is collecting — a cheap guard against stale results leaking
//! across a pool reconfiguration.
//!
//! Hand-rolled over `std::sync::{Mutex, Condvar}`: the offline build
//! vendors no crossbeam/rayon, and the queue needs exactly one nonstandard
//! behavior anyway — a *closable* MPMC queue whose blocked consumers all
//! wake and observe shutdown, so a pool can be torn down while its workers
//! are parked without leaking threads or deadlocking.

use std::collections::VecDeque;
use std::sync::PoisonError;

// Under the `detcheck` feature the primitives come from the model
// checker's shim layer (std-compatible APIs, scheduled yield points
// inside a model run, passthrough outside one); normal builds use the
// real std types. See crates/detcheck and DESIGN.md §"Concurrency model
// checking".
#[cfg(feature = "detcheck")]
use detcheck::sync::{Condvar, Mutex};
#[cfg(not(feature = "detcheck"))]
use std::sync::{Condvar, Mutex};

/// A closable multi-producer multi-consumer FIFO job queue.
///
/// * [`TaskQueue::push_all`] enqueues a batch under one lock acquisition
///   and wakes every parked consumer.
/// * [`TaskQueue::pop_wait`] blocks until a job or shutdown arrives;
///   `None` means the queue is closed *and* drained — the consumer should
///   exit.
/// * [`TaskQueue::try_pop`] never blocks — the coordinator uses it to
///   steal jobs while it waits for workers, which is what makes
///   work-stealing between chunks free: whoever drains first (worker or
///   coordinator) just pops the next chunk.
///
/// Lock poisoning is deliberately ignored (`PoisonError::into_inner`):
/// every critical section is a single push/pop on a `VecDeque`, so a
/// consumer that panicked *outside* the lock cannot have left the queue
/// itself in a half-mutated state, and teardown paths (close + drain on
/// drop) must keep working mid-unwind or a worker panic would cascade
/// into a coordinator deadlock.
pub struct TaskQueue<T> {
    state: Mutex<TaskState<T>>,
    ready: Condvar,
}

struct TaskState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> Default for TaskQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TaskQueue<T> {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        TaskQueue {
            state: Mutex::new(TaskState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues every job in `batch` under one lock acquisition and wakes
    /// all parked consumers. Jobs pushed after [`TaskQueue::close`] are
    /// dropped silently — the pool is shutting down and no consumer will
    /// return for them.
    pub fn push_all<I: IntoIterator<Item = T>>(&self, batch: I) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !st.closed {
            st.jobs.extend(batch);
        }
        drop(st);
        self.ready.notify_all();
    }

    /// Pops the next job without blocking; `None` when the queue is empty
    /// (closed or not).
    pub fn try_pop(&self) -> Option<T> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .pop_front()
    }

    /// Blocks until a job is available or the queue is closed and drained
    /// (`None`: the consumer should exit).
    pub fn pop_wait(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: parked consumers wake and drain the backlog, then
    /// observe shutdown. Idempotent.
    pub fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }

    /// Whether [`TaskQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed
    }

    /// Jobs currently queued (racy by nature; diagnostics only).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .len()
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A monotonically increasing dispatch-round counter.
///
/// A coordinator bumps the epoch once per dispatch round, stamps every job
/// with it, and asserts that each completion it collects carries the
/// current value. Rounds are strictly sequential (the coordinator blocks
/// until a round fully drains before starting the next), so a mismatched
/// epoch can only mean a protocol bug — results from a torn-down pool
/// generation surviving a reconfigure — and the coordinator should fail
/// loudly rather than merge them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Epoch(u64);

impl Epoch {
    /// The zero epoch (no round dispatched yet).
    pub fn new() -> Self {
        Epoch(0)
    }

    /// Advances to the next round and returns its tag.
    pub fn advance(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }

    /// The current round tag.
    pub fn current(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_close() {
        let q: TaskQueue<u32> = TaskQueue::new();
        q.push_all([1, 2, 3]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
        q.close();
        // Backlog drains even after close...
        assert_eq!(q.pop_wait(), Some(3));
        // ...then consumers observe shutdown instead of blocking.
        assert_eq!(q.pop_wait(), None);
        assert!(q.is_closed());
        assert!(q.is_empty());
    }

    #[test]
    fn push_after_close_is_dropped() {
        let q: TaskQueue<u32> = TaskQueue::new();
        q.close();
        q.push_all([7]);
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn epoch_advances_monotonically() {
        let mut e = Epoch::new();
        assert_eq!(e.current(), 0);
        assert_eq!(e.advance(), 1);
        assert_eq!(e.advance(), 2);
        assert_eq!(e.current(), 2);
    }
}
