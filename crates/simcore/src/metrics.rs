//! Measurement plumbing: distributions, percentiles, time series.
//!
//! Experiments record raw samples (`Samples`), summarize them
//! (`Summary`), and track values over time (`TimeSeries`). The serving
//! metrics the paper reports — TTFT, TPOT, JCT, throughput, SLO attainment —
//! are computed from these primitives by `LatencyStats`.

use crate::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// A bag of raw `f64` samples supporting exact percentile queries.
///
/// Simulation runs produce at most a few million samples, so keeping the raw
/// values and sorting on demand is both exact and fast enough; sortedness is
/// cached and invalidated on insert.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Records one sample. Non-finite values are a logic error upstream.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on NaN/inf input; release builds drop the
    /// sample (a poisoned percentile is worse than a missing point).
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "Samples::record: non-finite {value}");
        if value.is_finite() {
            self.values.push(value);
            self.sorted = false;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Exact percentile via nearest-rank on the sorted samples.
    /// `q` is in `[0, 1]`; returns `None` if empty.
    pub fn percentile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
            self.sorted = true;
        }
        let rank = ((q * self.values.len() as f64).ceil() as usize).clamp(1, self.values.len());
        Some(self.values[rank - 1])
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(acc.map_or(v, |m: f64| if v > m { v } else { m }))
        })
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(acc.map_or(v, |m: f64| if v < m { v } else { m }))
        })
    }

    /// Fraction of samples at or below `threshold` — SLO attainment.
    pub fn fraction_le(&self, threshold: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let hits = self.values.iter().filter(|&&v| v <= threshold).count();
        Some(hits as f64 / self.values.len() as f64)
    }

    /// Summarizes the distribution.
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.len(),
            mean: self.mean().unwrap_or(0.0),
            p50: self.percentile(0.50).unwrap_or(0.0),
            p90: self.percentile(0.90).unwrap_or(0.0),
            p95: self.percentile(0.95).unwrap_or(0.0),
            p99: self.percentile(0.99).unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A distribution summary: count, mean and standard percentiles.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    pub min: f64,
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// A `(time, value)` series, e.g. queue depth or instance count over time.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point. Points must be appended in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes the last recorded point.
    pub fn record(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(last, _)| t >= last),
            "TimeSeries::record: out-of-order point at {t}"
        );
        self.points.push((t, value));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Time-weighted average of a step function defined by the points, over
    /// the span from the first point to `end`. Returns `None` if empty.
    pub fn time_weighted_mean(&self, end: SimTime) -> Option<f64> {
        let first = self.points.first()?.0;
        if end <= first {
            return Some(self.points[0].1);
        }
        let total = end.since(first).as_nanos() as f64;
        let mut acc = 0.0;
        for (i, &(t, v)) in self.points.iter().enumerate() {
            let next_t = self
                .points
                .get(i + 1)
                .map(|&(nt, _)| nt.max_of(t))
                .unwrap_or(end);
            let next_t = if next_t > end { end } else { next_t };
            if next_t > t {
                acc += v * next_t.since(t).as_nanos() as f64;
            }
        }
        Some(acc / total)
    }
}

/// Per-request serving latency metrics, in the units the paper reports.
#[derive(Debug, Clone, Copy)]
pub struct RequestLatency {
    /// Time to first token.
    pub ttft: SimDuration,
    /// Mean time per output token (excluding the first).
    pub tpot: SimDuration,
    /// Job completion time: arrival to last token.
    pub jct: SimDuration,
    /// Number of output tokens generated.
    pub output_tokens: u64,
}

/// Aggregates request latencies into the paper's reported metrics.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    ttft_ms: Samples,
    tpot_ms: Samples,
    jct_ms: Samples,
    total_output_tokens: u64,
    completed: u64,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, lat: RequestLatency) {
        self.ttft_ms.record(lat.ttft.as_millis_f64());
        self.tpot_ms.record(lat.tpot.as_millis_f64());
        self.jct_ms.record(lat.jct.as_millis_f64());
        self.total_output_tokens += lat.output_tokens;
        self.completed += 1;
    }

    /// Number of completed requests recorded.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total output tokens across all recorded requests.
    pub fn total_output_tokens(&self) -> u64 {
        self.total_output_tokens
    }

    /// TTFT distribution in milliseconds.
    pub fn ttft_ms(&mut self) -> Summary {
        self.ttft_ms.summary()
    }

    /// TPOT distribution in milliseconds.
    pub fn tpot_ms(&mut self) -> Summary {
        self.tpot_ms.summary()
    }

    /// JCT distribution in milliseconds.
    pub fn jct_ms(&mut self) -> Summary {
        self.jct_ms.summary()
    }

    /// Fraction of requests with TPOT at or under `sla`.
    pub fn tpot_sla_attainment(&self, sla_ms: f64) -> Option<f64> {
        self.tpot_ms.fraction_le(sla_ms)
    }

    /// Fraction of requests with TTFT at or under `sla`.
    pub fn ttft_sla_attainment(&self, sla_ms: f64) -> Option<f64> {
        self.ttft_ms.fraction_le(sla_ms)
    }

    /// Output-token throughput over the given makespan, tokens/second.
    pub fn decode_throughput(&self, makespan: SimDuration) -> f64 {
        let secs = makespan.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_output_tokens as f64 / secs
        }
    }
}

/// A string-keyed set of counters, for coarse accounting (cache hits,
/// preemptions, scale events). BTreeMap keeps iteration order stable for
/// deterministic report output.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to counter `key`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.map.entry(key).or_insert(0) += n;
    }

    /// Increments counter `key` by one.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero if never touched).
    pub fn get(&self, key: &'static str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Iterates `(key, value)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.percentile(0.50), Some(50.0));
        assert_eq!(s.percentile(0.90), Some(90.0));
        assert_eq!(s.percentile(0.99), Some(99.0));
        assert_eq!(s.percentile(1.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
    }

    #[test]
    fn empty_samples_yield_none() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.fraction_le(1.0), None);
    }

    #[test]
    fn record_after_percentile_stays_correct() {
        let mut s = Samples::new();
        s.record(10.0);
        assert_eq!(s.percentile(0.5), Some(10.0));
        s.record(1.0);
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn fraction_le_counts_slo_attainment() {
        let mut s = Samples::new();
        for v in [10.0, 20.0, 30.0, 40.0] {
            s.record(v);
        }
        assert_eq!(s.fraction_le(25.0), Some(0.5));
        assert_eq!(s.fraction_le(5.0), Some(0.0));
        assert_eq!(s.fraction_le(100.0), Some(1.0));
    }

    #[test]
    fn time_weighted_mean_of_step_function() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::ZERO, 0.0);
        ts.record(SimTime::from_secs(1), 10.0);
        // 1s at 0.0, 1s at 10.0 => mean 5.0 over [0, 2s].
        let m = ts.time_weighted_mean(SimTime::from_secs(2)).unwrap();
        assert!((m - 5.0).abs() < 1e-9, "{m}");
    }

    #[test]
    fn latency_stats_aggregate() {
        let mut ls = LatencyStats::new();
        ls.record(RequestLatency {
            ttft: SimDuration::from_millis(100),
            tpot: SimDuration::from_millis(40),
            jct: SimDuration::from_secs(5),
            output_tokens: 200,
        });
        ls.record(RequestLatency {
            ttft: SimDuration::from_millis(300),
            tpot: SimDuration::from_millis(60),
            jct: SimDuration::from_secs(9),
            output_tokens: 100,
        });
        assert_eq!(ls.completed(), 2);
        assert_eq!(ls.total_output_tokens(), 300);
        assert!((ls.ttft_ms().mean - 200.0).abs() < 1e-9);
        assert_eq!(ls.tpot_sla_attainment(50.0), Some(0.5));
        let thr = ls.decode_throughput(SimDuration::from_secs(10));
        assert!((thr - 30.0).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate_in_stable_order() {
        let mut c = Counters::new();
        c.incr("b");
        c.add("a", 5);
        c.incr("b");
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("b"), 2);
        assert_eq!(c.get("never"), 0);
        let keys: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
