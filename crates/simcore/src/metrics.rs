//! Measurement plumbing: distributions, percentiles, time series.
//!
//! Experiments record raw samples (`Samples`), summarize them
//! (`Summary`), and track values over time (`TimeSeries`). The serving
//! metrics the paper reports — TTFT, TPOT, JCT, throughput, SLO attainment —
//! are computed from these primitives by `LatencyStats`.

use crate::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// A bag of raw `f64` samples supporting exact percentile queries.
///
/// Simulation runs produce at most a few million samples, so keeping the raw
/// values and sorting on demand is both exact and fast enough; sortedness is
/// cached and invalidated on insert.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Records one sample. Non-finite values are a logic error upstream.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on NaN/inf input; release builds drop the
    /// sample (a poisoned percentile is worse than a missing point).
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "Samples::record: non-finite {value}");
        if value.is_finite() {
            self.values.push(value);
            self.sorted = false;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Exact percentile via nearest-rank on the sorted samples.
    /// `q` is in `[0, 1]`; returns `None` if empty.
    pub fn percentile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if !self.sorted {
            self.values.sort_unstable_by(f64::total_cmp);
            self.sorted = true;
        }
        let rank = ((q * self.values.len() as f64).ceil() as usize).clamp(1, self.values.len());
        Some(self.values[rank - 1])
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(acc.map_or(v, |m: f64| if v > m { v } else { m }))
        })
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(acc.map_or(v, |m: f64| if v < m { v } else { m }))
        })
    }

    /// Fraction of samples at or below `threshold` — SLO attainment.
    pub fn fraction_le(&self, threshold: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let hits = self.values.iter().filter(|&&v| v <= threshold).count();
        Some(hits as f64 / self.values.len() as f64)
    }

    /// Summarizes the distribution. An empty distribution yields a
    /// [`Summary`] with `count == 0` and zeroed statistics in memory;
    /// serialization makes the emptiness explicit by emitting `null` for
    /// every statistic (a genuine 0.0 latency and "no samples" must not
    /// be confusable in artifacts). Use [`Summary::non_empty`] before
    /// reading the plain fields when emptiness is possible.
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.len(),
            mean: self.mean().unwrap_or(0.0),
            p50: self.percentile(0.50).unwrap_or(0.0),
            p90: self.percentile(0.90).unwrap_or(0.0),
            p95: self.percentile(0.95).unwrap_or(0.0),
            p99: self.percentile(0.99).unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A distribution summary: count, mean and standard percentiles.
///
/// When `count == 0` the statistic fields hold 0.0 placeholders; the
/// `Serialize` impl emits `null` for them so an empty distribution can
/// never masquerade as an all-zero one in JSON artifacts.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// `Some(self)` iff at least one sample was recorded — the gate every
    /// artifact writer should pass a summary through before reading the
    /// plain `f64` fields, so "no data" serializes as `null` rather than
    /// a fabricated zero.
    pub fn non_empty(self) -> Option<Summary> {
        if self.count == 0 {
            None
        } else {
            Some(self)
        }
    }
}

impl Serialize for Summary {
    fn to_value(&self) -> serde::Value {
        use serde::value::{Number, Value};
        // Same shape and field order the derive would emit, but with the
        // statistics nulled out when the distribution is empty.
        let stat = |x: f64| {
            if self.count == 0 {
                Value::Null
            } else {
                Value::Number(Number::F64(x))
            }
        };
        Value::Object(vec![
            (
                "count".to_string(),
                Value::Number(Number::U64(self.count as u64)),
            ),
            ("mean".to_string(), stat(self.mean)),
            ("p50".to_string(), stat(self.p50)),
            ("p90".to_string(), stat(self.p90)),
            ("p95".to_string(), stat(self.p95)),
            ("p99".to_string(), stat(self.p99)),
            ("min".to_string(), stat(self.min)),
            ("max".to_string(), stat(self.max)),
        ])
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0 (no samples)");
        }
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// A `(time, value)` series, e.g. queue depth or instance count over time.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point. Points must be appended in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes the last recorded point.
    pub fn record(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(last, _)| t >= last),
            "TimeSeries::record: out-of-order point at {t}"
        );
        self.points.push((t, value));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Time-weighted average of a step function defined by the points, over
    /// the span from the first point to `end`. Returns `None` if empty.
    pub fn time_weighted_mean(&self, end: SimTime) -> Option<f64> {
        let first = self.points.first()?.0;
        if end <= first {
            return Some(self.points[0].1);
        }
        let total = end.since(first).as_nanos() as f64;
        let mut acc = 0.0;
        for (i, &(t, v)) in self.points.iter().enumerate() {
            let next_t = self.points.get(i + 1).map_or(end, |&(nt, _)| nt.max_of(t));
            let next_t = if next_t > end { end } else { next_t };
            if next_t > t {
                acc += v * next_t.since(t).as_nanos() as f64;
            }
        }
        Some(acc / total)
    }
}

/// Per-request serving latency metrics, in the units the paper reports.
#[derive(Debug, Clone, Copy)]
pub struct RequestLatency {
    /// Time to first token.
    pub ttft: SimDuration,
    /// Mean time per output token (excluding the first).
    pub tpot: SimDuration,
    /// Job completion time: arrival to last token.
    pub jct: SimDuration,
    /// Number of output tokens generated.
    pub output_tokens: u64,
}

/// Aggregates request latencies into the paper's reported metrics.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    ttft_ms: Samples,
    tpot_ms: Samples,
    jct_ms: Samples,
    total_output_tokens: u64,
    completed: u64,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, lat: RequestLatency) {
        self.ttft_ms.record(lat.ttft.as_millis_f64());
        self.tpot_ms.record(lat.tpot.as_millis_f64());
        self.jct_ms.record(lat.jct.as_millis_f64());
        self.total_output_tokens += lat.output_tokens;
        self.completed += 1;
    }

    /// Number of completed requests recorded.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total output tokens across all recorded requests.
    pub fn total_output_tokens(&self) -> u64 {
        self.total_output_tokens
    }

    /// TTFT distribution in milliseconds.
    pub fn ttft_ms(&mut self) -> Summary {
        self.ttft_ms.summary()
    }

    /// TPOT distribution in milliseconds.
    pub fn tpot_ms(&mut self) -> Summary {
        self.tpot_ms.summary()
    }

    /// JCT distribution in milliseconds.
    pub fn jct_ms(&mut self) -> Summary {
        self.jct_ms.summary()
    }

    /// Fraction of requests with TPOT at or under `sla`.
    pub fn tpot_sla_attainment(&self, sla_ms: f64) -> Option<f64> {
        self.tpot_ms.fraction_le(sla_ms)
    }

    /// Fraction of requests with TTFT at or under `sla`.
    pub fn ttft_sla_attainment(&self, sla_ms: f64) -> Option<f64> {
        self.ttft_ms.fraction_le(sla_ms)
    }

    /// Output-token throughput over the given makespan, tokens/second.
    pub fn decode_throughput(&self, makespan: SimDuration) -> f64 {
        let secs = makespan.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_output_tokens as f64 / secs
        }
    }
}

/// A string-keyed set of counters, for coarse accounting (cache hits,
/// preemptions, scale events). BTreeMap keeps iteration order stable for
/// deterministic report output.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to counter `key`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.map.entry(key).or_insert(0) += n;
    }

    /// Increments counter `key` by one.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero if never touched).
    pub fn get(&self, key: &'static str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Iterates `(key, value)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

/// One metric behind a registry handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Samples(Samples),
    Series(TimeSeries),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Samples(_) => "samples",
            Metric::Series(_) => "series",
        }
    }
}

/// Handle to a registered metric; cheap to copy and use on hot paths
/// (index lookup, no hashing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// A named registry unifying the three metric primitives — [`Counters`]-style
/// counters, [`Samples`] distributions, and [`TimeSeries`] — behind string
/// names and queryable [`MetricId`] handles, with JSON export/import.
///
/// Registration is idempotent: asking for the same name returns the same
/// handle. Names are namespaced by convention (`engine.`, `rtc.`, `sim.`).
///
/// # Panics
///
/// Re-registering a name as a different metric kind panics — that is a
/// wiring bug, not a runtime condition.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    index: BTreeMap<String, usize>,
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(&mut self, name: &str, make: fn() -> Metric) -> MetricId {
        if let Some(&i) = self.index.get(name) {
            let want = make();
            assert_eq!(
                self.entries[i].1.kind(),
                want.kind(),
                "metric {name:?} already registered as {}",
                self.entries[i].1.kind()
            );
            return MetricId(i);
        }
        let i = self.entries.len();
        self.entries.push((name.to_string(), make()));
        self.index.insert(name.to_string(), i);
        MetricId(i)
    }

    /// Registers (or looks up) a counter.
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.register(name, || Metric::Counter(0))
    }

    /// Registers (or looks up) a sample distribution.
    pub fn samples(&mut self, name: &str) -> MetricId {
        self.register(name, || Metric::Samples(Samples::new()))
    }

    /// Registers (or looks up) a time series.
    pub fn series(&mut self, name: &str) -> MetricId {
        self.register(name, || Metric::Series(TimeSeries::new()))
    }

    /// Adds `n` to a counter handle.
    pub fn add(&mut self, id: MetricId, n: u64) {
        match &mut self.entries[id.0].1 {
            Metric::Counter(v) => *v += n,
            other => {
                debug_assert!(false, "MetricsRegistry::add on a {}", other.kind());
            }
        }
    }

    /// Increments a counter handle.
    pub fn incr(&mut self, id: MetricId) {
        self.add(id, 1);
    }

    /// Records one sample on a samples handle.
    pub fn record(&mut self, id: MetricId, value: f64) {
        match &mut self.entries[id.0].1 {
            Metric::Samples(s) => s.record(value),
            other => {
                debug_assert!(false, "MetricsRegistry::record on a {}", other.kind());
            }
        }
    }

    /// Appends a point to a series handle.
    pub fn record_at(&mut self, id: MetricId, t: SimTime, value: f64) {
        match &mut self.entries[id.0].1 {
            Metric::Series(s) => s.record(t, value),
            other => {
                debug_assert!(false, "MetricsRegistry::record_at on a {}", other.kind());
            }
        }
    }

    /// Current value of a counter by name (zero if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.index.get(name).map(|&i| &self.entries[i].1) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Distribution summary of a samples metric by name.
    pub fn summary(&mut self, name: &str) -> Option<Summary> {
        let &i = self.index.get(name)?;
        match &mut self.entries[i].1 {
            Metric::Samples(s) => Some(s.summary()),
            _ => None,
        }
    }

    /// Points of a series metric by name.
    pub fn series_points(&self, name: &str) -> Option<&[(SimTime, f64)]> {
        let &i = self.index.get(name)?;
        match &self.entries[i].1 {
            Metric::Series(s) => Some(s.points()),
            _ => None,
        }
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Copies every counter from a [`Counters`] set into this registry
    /// (added onto any existing values).
    pub fn import_counters(&mut self, counters: &Counters) {
        for (k, v) in counters.iter() {
            let id = self.counter(k);
            self.add(id, v);
        }
    }

    /// Exports the registry as a JSON object: name -> typed record.
    /// Counters carry their exact value; samples their raw values plus a
    /// summary; series their `[t_ns, value]` points. Sorted by name.
    pub fn to_json(&mut self) -> serde::Value {
        use serde::value::{Number, Value};
        let mut out: Vec<(String, Value)> = Vec::new();
        // Summaries need &mut (percentile sorting); precompute them.
        let summaries: BTreeMap<String, Summary> = self
            .entries
            .iter_mut()
            .filter_map(|(n, m)| match m {
                Metric::Samples(s) => Some((n.clone(), s.summary())),
                _ => None,
            })
            .collect();
        for (name, metric) in &self.entries {
            let v = match metric {
                Metric::Counter(c) => Value::Object(vec![
                    ("type".to_string(), Value::String("counter".to_string())),
                    ("value".to_string(), Value::Number(Number::U64(*c))),
                ]),
                Metric::Samples(s) => Value::Object(vec![
                    ("type".to_string(), Value::String("samples".to_string())),
                    (
                        "values".to_string(),
                        Value::Array(
                            s.values()
                                .iter()
                                .map(|&x| Value::Number(Number::F64(x)))
                                .collect(),
                        ),
                    ),
                    (
                        "summary".to_string(),
                        serde::Serialize::to_value(&summaries[name]),
                    ),
                ]),
                Metric::Series(s) => Value::Object(vec![
                    ("type".to_string(), Value::String("series".to_string())),
                    (
                        "points".to_string(),
                        Value::Array(
                            s.points()
                                .iter()
                                .map(|&(t, x)| {
                                    Value::Array(vec![
                                        Value::Number(Number::U64(t.as_nanos())),
                                        Value::Number(Number::F64(x)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            };
            out.push((name.clone(), v));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        serde::Value::Object(out)
    }

    /// Rebuilds a registry from [`MetricsRegistry::to_json`] output.
    /// Counter values and series points round-trip exactly; sample values
    /// round-trip through Rust's shortest-representation float formatting,
    /// which is bit-exact.
    pub fn from_json(v: &serde::Value) -> Result<MetricsRegistry, String> {
        use serde::Value;
        let Value::Object(entries) = v else {
            return Err("metrics JSON root must be an object".to_string());
        };
        let mut reg = MetricsRegistry::new();
        for (name, entry) in entries {
            let kind = entry
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("metric {name:?}: missing type"))?;
            match kind {
                "counter" => {
                    let val = entry
                        .get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("metric {name:?}: bad counter value"))?;
                    let id = reg.counter(name);
                    reg.add(id, val);
                }
                "samples" => {
                    let vals = entry
                        .get("values")
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("metric {name:?}: missing values"))?;
                    let id = reg.samples(name);
                    for x in vals {
                        let x = x
                            .as_f64()
                            .ok_or_else(|| format!("metric {name:?}: non-numeric sample"))?;
                        reg.record(id, x);
                    }
                }
                "series" => {
                    let pts = entry
                        .get("points")
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("metric {name:?}: missing points"))?;
                    let id = reg.series(name);
                    for p in pts {
                        let t = p
                            .at(0)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("metric {name:?}: bad point time"))?;
                        let x = p
                            .at(1)
                            .and_then(Value::as_f64)
                            .ok_or_else(|| format!("metric {name:?}: bad point value"))?;
                        reg.record_at(id, SimTime::from_nanos(t), x);
                    }
                }
                other => return Err(format!("metric {name:?}: unknown type {other:?}")),
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.percentile(0.50), Some(50.0));
        assert_eq!(s.percentile(0.90), Some(90.0));
        assert_eq!(s.percentile(0.99), Some(99.0));
        assert_eq!(s.percentile(1.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
    }

    #[test]
    fn empty_samples_yield_none() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.fraction_le(1.0), None);
    }

    #[test]
    fn record_after_percentile_stays_correct() {
        let mut s = Samples::new();
        s.record(10.0);
        assert_eq!(s.percentile(0.5), Some(10.0));
        s.record(1.0);
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn fraction_le_counts_slo_attainment() {
        let mut s = Samples::new();
        for v in [10.0, 20.0, 30.0, 40.0] {
            s.record(v);
        }
        assert_eq!(s.fraction_le(25.0), Some(0.5));
        assert_eq!(s.fraction_le(5.0), Some(0.0));
        assert_eq!(s.fraction_le(100.0), Some(1.0));
    }

    #[test]
    fn time_weighted_mean_of_step_function() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::ZERO, 0.0);
        ts.record(SimTime::from_secs(1), 10.0);
        // 1s at 0.0, 1s at 10.0 => mean 5.0 over [0, 2s].
        let m = ts.time_weighted_mean(SimTime::from_secs(2)).unwrap();
        assert!((m - 5.0).abs() < 1e-9, "{m}");
    }

    #[test]
    fn latency_stats_aggregate() {
        let mut ls = LatencyStats::new();
        ls.record(RequestLatency {
            ttft: SimDuration::from_millis(100),
            tpot: SimDuration::from_millis(40),
            jct: SimDuration::from_secs(5),
            output_tokens: 200,
        });
        ls.record(RequestLatency {
            ttft: SimDuration::from_millis(300),
            tpot: SimDuration::from_millis(60),
            jct: SimDuration::from_secs(9),
            output_tokens: 100,
        });
        assert_eq!(ls.completed(), 2);
        assert_eq!(ls.total_output_tokens(), 300);
        assert!((ls.ttft_ms().mean - 200.0).abs() < 1e-9);
        assert_eq!(ls.tpot_sla_attainment(50.0), Some(0.5));
        let thr = ls.decode_throughput(SimDuration::from_secs(10));
        assert!((thr - 30.0).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate_in_stable_order() {
        let mut c = Counters::new();
        c.incr("b");
        c.add("a", 5);
        c.incr("b");
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("b"), 2);
        assert_eq!(c.get("never"), 0);
        let keys: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn registry_handles_are_idempotent_and_queryable() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("sim.completed");
        assert_eq!(r.counter("sim.completed"), c, "same name, same handle");
        r.add(c, 3);
        r.incr(c);
        assert_eq!(r.counter_value("sim.completed"), 4);
        assert_eq!(r.counter_value("absent"), 0);

        let s = r.samples("ttft_ms");
        r.record(s, 10.0);
        r.record(s, 30.0);
        let sum = r.summary("ttft_ms").unwrap();
        assert_eq!(sum.count, 2);
        assert!((sum.mean - 20.0).abs() < 1e-9);

        let ts = r.series("queue_depth");
        r.record_at(ts, SimTime::ZERO, 1.0);
        r.record_at(ts, SimTime::from_secs(1), 2.0);
        assert_eq!(r.series_points("queue_depth").unwrap().len(), 2);
        assert_eq!(
            r.names().collect::<Vec<_>>(),
            vec!["sim.completed", "ttft_ms", "queue_depth"]
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_change() {
        let mut r = MetricsRegistry::new();
        r.counter("x");
        r.samples("x");
    }

    #[test]
    fn registry_imports_counters() {
        let mut c = Counters::new();
        c.add("a", 2);
        c.add("b", 7);
        let mut r = MetricsRegistry::new();
        let a = r.counter("a");
        r.add(a, 1);
        r.import_counters(&c);
        assert_eq!(r.counter_value("a"), 3);
        assert_eq!(r.counter_value("b"), 7);
    }

    #[test]
    fn registry_round_trips_through_json() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("sim.completed");
        r.add(c, 41);
        let s = r.samples("ttft_ms");
        for v in [12.5, 800.0, 0.125, 3.0] {
            r.record(s, v);
        }
        let ts = r.series("kv_blocks");
        r.record_at(ts, SimTime::from_nanos(17), 1.0);
        r.record_at(ts, SimTime::from_millis(5), 2.5);

        // record -> export JSON text -> parse -> rebuild -> re-export.
        let text = r.to_json().to_json();
        let parsed = serde::Value::parse(&text).unwrap();
        let mut rebuilt = MetricsRegistry::from_json(&parsed).unwrap();
        assert_eq!(rebuilt.counter_value("sim.completed"), 41);
        assert_eq!(rebuilt.summary("ttft_ms").unwrap().count, 4);
        assert_eq!(
            rebuilt.series_points("kv_blocks").unwrap(),
            r.series_points("kv_blocks").unwrap()
        );
        assert_eq!(rebuilt.to_json().to_json(), text, "export is a fixed point");
    }

    #[test]
    fn empty_summary_serializes_nulls_not_zeros() {
        let mut s = Samples::new();
        let sum = s.summary();
        assert_eq!(sum.count, 0);
        assert!(sum.non_empty().is_none());
        let v = serde::Serialize::to_value(&sum);
        assert_eq!(v.get("count").and_then(serde::Value::as_u64), Some(0));
        for field in ["mean", "p50", "p90", "p95", "p99", "min", "max"] {
            assert!(
                matches!(v.get(field), Some(serde::Value::Null)),
                "empty summary field {field} must be null"
            );
        }
        assert_eq!(sum.to_string(), "n=0 (no samples)");
        // Non-empty summaries keep plain numbers.
        s.record(2.0);
        let sum = s.summary();
        assert!(sum.non_empty().is_some());
        let v = serde::Serialize::to_value(&sum);
        assert_eq!(v.get("mean").and_then(serde::Value::as_f64), Some(2.0));
    }

    #[test]
    fn empty_samples_round_trip_through_registry_json() {
        let mut r = MetricsRegistry::new();
        r.samples("never.recorded");
        let text = r.to_json().to_json();
        assert!(text.contains("null"), "empty stats must export as null");
        let parsed = serde::Value::parse(&text).unwrap();
        let mut rebuilt = MetricsRegistry::from_json(&parsed).unwrap();
        assert_eq!(rebuilt.summary("never.recorded").unwrap().count, 0);
        assert_eq!(rebuilt.to_json().to_json(), text, "export is a fixed point");
    }

    #[test]
    fn registry_from_json_rejects_garbage() {
        assert!(MetricsRegistry::from_json(&serde::Value::Null).is_err());
        let bad = serde::Value::parse(r#"{"x": {"type": "gauge"}}"#).unwrap();
        assert!(MetricsRegistry::from_json(&bad).is_err());
    }
}
