//! Sim-time tracing: spans and point events on the simulation clock.
//!
//! Components own a [`Tracer`] each; a tracer is **disabled by default** and
//! every emission method starts with a single branch on that flag, so the
//! hot path pays one predictable-taken branch and nothing else when tracing
//! is off (no allocation, no formatting, no record construction — attribute
//! vectors are only built behind `is_enabled()` guards at the call sites).
//!
//! Records are ring-buffered: when a tracer reaches its capacity the oldest
//! record is dropped and counted in `dropped`, bounding memory for
//! arbitrarily long runs. At collection time each component's buffer is
//! drained into a [`Trace`] and merged with [`Trace::absorb`], which remaps
//! span IDs and tags every record with the component name, so a cluster-wide
//! trace reads like one timeline (`te0.engine`, `te0.rtc`, `je`, ...).
//!
//! Two verbosity levels: [`TraceLevel::Lifecycle`] records request-level
//! milestones and iteration spans; [`TraceLevel::Full`] additionally records
//! per-chunk and per-decode-token events (orders of magnitude more records —
//! meant for short diagnostic runs).

use crate::time::SimTime;
use serde::value::{Number, Value};
use std::collections::VecDeque;

/// Identifier of a span within one [`Trace`]. `SpanId::NONE` (0) means
/// "no span" (top-level event, or tracing disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: parent of root spans, and what a disabled tracer
    /// returns.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is a real span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// An attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, token numbers, nanosecond stamps).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (scores, rates).
    F64(f64),
    /// Short label (policy names, backends).
    Str(String),
}

impl AttrValue {
    fn to_value(&self) -> Value {
        match self {
            AttrValue::U64(v) => Value::Number(Number::U64(*v)),
            AttrValue::I64(v) => Value::Number(Number::I64(*v)),
            AttrValue::F64(v) => Value::Number(Number::F64(*v)),
            AttrValue::Str(s) => Value::String(s.clone()),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<SimTime> for AttrValue {
    fn from(v: SimTime) -> Self {
        AttrValue::U64(v.as_nanos())
    }
}

/// Attribute list type used by all emission APIs.
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// A closed or still-open span: something with duration on the sim clock.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Trace-unique identifier (never 0).
    pub id: SpanId,
    /// Enclosing span, or [`SpanId::NONE`].
    pub parent: SpanId,
    /// What this span is ("request", "iteration", "kv_migration", ...).
    pub label: &'static str,
    /// Emitting component, filled in by [`Trace::absorb`] (empty until
    /// merged).
    pub component: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant; `None` if the span was still open at collection.
    pub end: Option<SimTime>,
    /// Key/value annotations.
    pub attrs: Attrs,
}

/// An instantaneous event, optionally inside a span.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// When it happened.
    pub at: SimTime,
    /// What happened ("request.first_token", "rtc.hit", ...).
    pub label: &'static str,
    /// Emitting component, filled in by [`Trace::absorb`].
    pub component: String,
    /// Enclosing span, or [`SpanId::NONE`].
    pub span: SpanId,
    /// Key/value annotations.
    pub attrs: Attrs,
}

impl SpanRecord {
    /// Looks up an unsigned-integer attribute by key.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        attr_u64(&self.attrs, key)
    }
}

impl EventRecord {
    /// Looks up an unsigned-integer attribute by key.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        attr_u64(&self.attrs, key)
    }

    /// Looks up a float attribute by key (integers coerce).
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| match v {
                AttrValue::F64(x) => Some(*x),
                AttrValue::U64(n) => Some(*n as f64),
                AttrValue::I64(n) => Some(*n as f64),
                AttrValue::Str(_) => None,
            })
    }

    /// Looks up a string attribute by key.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| match v {
                AttrValue::Str(s) => Some(s.as_str()),
                _ => None,
            })
    }
}

fn attr_u64(attrs: &Attrs, key: &str) -> Option<u64> {
    attrs
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            AttrValue::U64(n) => Some(*n),
            AttrValue::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        })
}

fn attrs_to_value(attrs: &Attrs) -> Value {
    Value::Object(
        attrs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect(),
    )
}

/// Emission verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLevel {
    /// Request milestones, iteration spans, cache/transfer events.
    Lifecycle,
    /// Lifecycle plus per-prefill-chunk and per-decode-token events.
    Full,
}

/// A per-component span/event recorder. See the module docs for the
/// enabled/disabled and ring-buffer semantics.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    level: TraceLevel,
    capacity: usize,
    next_id: u64,
    spans: VecDeque<SpanRecord>,
    events: VecDeque<EventRecord>,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// The zero-cost default: every emission method returns immediately.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            level: TraceLevel::Lifecycle,
            capacity: 0,
            next_id: 1,
            spans: VecDeque::new(),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An active tracer keeping at most `capacity` spans and `capacity`
    /// events (oldest dropped first).
    pub fn enabled(level: TraceLevel, capacity: usize) -> Self {
        Tracer {
            enabled: true,
            level,
            capacity: capacity.max(1),
            next_id: 1,
            spans: VecDeque::new(),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Whether emissions are recorded at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether per-token/per-chunk (Full-level) emissions are recorded.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.enabled && self.level == TraceLevel::Full
    }

    /// Opens a root span. Returns [`SpanId::NONE`] when disabled.
    pub fn start_span(&mut self, at: SimTime, label: &'static str, attrs: Attrs) -> SpanId {
        self.start_child(at, label, SpanId::NONE, attrs)
    }

    /// Opens a span under `parent`. Returns [`SpanId::NONE`] when disabled.
    pub fn start_child(
        &mut self,
        at: SimTime,
        label: &'static str,
        parent: SpanId,
        attrs: Attrs,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = SpanId(self.next_id);
        self.next_id += 1;
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(SpanRecord {
            id,
            parent,
            label,
            component: String::new(),
            start: at,
            end: None,
            attrs,
        });
        id
    }

    /// Closes a span. A no-op when disabled, when `id` is NONE, or when the
    /// span was already evicted from the ring.
    pub fn end_span(&mut self, at: SimTime, id: SpanId) {
        if !self.enabled || !id.is_some() {
            return;
        }
        // Spans close soon after they open in practice; search from the back.
        if let Some(s) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            s.end = Some(at);
        }
    }

    /// Appends attributes to an open (still-buffered) span.
    pub fn span_attrs(&mut self, id: SpanId, attrs: Attrs) {
        if !self.enabled || !id.is_some() {
            return;
        }
        if let Some(s) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            s.attrs.extend(attrs);
        }
    }

    /// Records a top-level point event.
    pub fn event(&mut self, at: SimTime, label: &'static str, attrs: Attrs) {
        self.event_in(at, label, SpanId::NONE, attrs);
    }

    /// Records a point event inside `span`.
    pub fn event_in(&mut self, at: SimTime, label: &'static str, span: SpanId, attrs: Attrs) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(EventRecord {
            at,
            label,
            component: String::new(),
            span,
            attrs,
        });
    }

    /// Drains everything recorded so far into a [`Trace`]. The tracer stays
    /// enabled and keeps allocating fresh span IDs (IDs never repeat within
    /// one tracer's lifetime).
    pub fn take(&mut self) -> Trace {
        Trace {
            spans: self.spans.drain(..).collect(),
            events: self.events.drain(..).collect(),
            dropped: std::mem::take(&mut self.dropped),
        }
    }
}

/// A collected, mergeable set of trace records.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// Events, in emission order.
    pub events: Vec<EventRecord>,
    /// Records evicted by ring-buffer pressure before collection.
    pub dropped: u64,
}

impl Trace {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.events.is_empty()
    }

    fn max_id(&self) -> u64 {
        self.spans.iter().map(|s| s.id.0).max().unwrap_or(0)
    }

    /// Merges `other` into `self`: every absorbed record is tagged with
    /// `component` (unless already tagged by an earlier merge) and span IDs
    /// are offset past this trace's to stay unique.
    pub fn absorb(&mut self, component: &str, other: Trace) {
        let base = self.max_id();
        let remap = |id: SpanId| {
            if id.is_some() {
                SpanId(id.0 + base)
            } else {
                SpanId::NONE
            }
        };
        for mut s in other.spans {
            s.id = remap(s.id);
            s.parent = remap(s.parent);
            if s.component.is_empty() {
                s.component = component.to_string();
            }
            self.spans.push(s);
        }
        for mut e in other.events {
            e.span = remap(e.span);
            if e.component.is_empty() {
                e.component = component.to_string();
            }
            self.events.push(e);
        }
        self.dropped += other.dropped;
    }

    /// Events with the given label, in emission order.
    pub fn events_labeled<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = &'a EventRecord> + 'a {
        self.events.iter().filter(move |e| e.label == label)
    }

    /// Spans with the given label, in open order.
    pub fn spans_labeled<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = &'a SpanRecord> + 'a {
        self.spans.iter().filter(move |s| s.label == label)
    }

    /// Renders the trace as a JSON value (see DESIGN.md "Observability" for
    /// the schema).
    pub fn to_json(&self) -> Value {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("id".to_string(), Value::Number(Number::U64(s.id.0))),
                    ("parent".to_string(), Value::Number(Number::U64(s.parent.0))),
                    ("component".to_string(), Value::String(s.component.clone())),
                    ("label".to_string(), Value::String(s.label.to_string())),
                    (
                        "start_ns".to_string(),
                        Value::Number(Number::U64(s.start.as_nanos())),
                    ),
                    (
                        "end_ns".to_string(),
                        match s.end {
                            Some(t) => Value::Number(Number::U64(t.as_nanos())),
                            None => Value::Null,
                        },
                    ),
                    ("attrs".to_string(), attrs_to_value(&s.attrs)),
                ])
            })
            .collect();
        let events = self
            .events
            .iter()
            .map(|e| {
                Value::Object(vec![
                    (
                        "at_ns".to_string(),
                        Value::Number(Number::U64(e.at.as_nanos())),
                    ),
                    ("component".to_string(), Value::String(e.component.clone())),
                    ("label".to_string(), Value::String(e.label.to_string())),
                    ("span".to_string(), Value::Number(Number::U64(e.span.0))),
                    ("attrs".to_string(), attrs_to_value(&e.attrs)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("spans".to_string(), Value::Array(spans)),
            ("events".to_string(), Value::Array(events)),
            (
                "dropped".to_string(),
                Value::Number(Number::U64(self.dropped)),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_tracer_records_nothing_and_returns_none_ids() {
        let mut tr = Tracer::disabled();
        let s = tr.start_span(t(0), "a", vec![("k", 1u64.into())]);
        assert_eq!(s, SpanId::NONE);
        tr.event(t(1), "e", vec![]);
        tr.end_span(t(2), s);
        let trace = tr.take();
        assert!(trace.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn span_nesting_and_ordering_are_deterministic() {
        let run = || {
            let mut tr = Tracer::enabled(TraceLevel::Lifecycle, 1024);
            let root = tr.start_span(t(0), "root", vec![]);
            let child = tr.start_child(t(1), "child", root, vec![("n", 7u64.into())]);
            tr.event_in(t(2), "tick", child, vec![]);
            tr.end_span(t(3), child);
            tr.end_span(t(4), root);
            tr.take()
        };
        let a = run();
        let b = run();
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.spans[0].label, "root");
        assert_eq!(a.spans[1].parent, a.spans[0].id);
        assert_eq!(a.spans[1].end, Some(t(3)));
        assert_eq!(a.events[0].span, a.spans[1].id);
        // Determinism: identical emission sequences produce identical JSON.
        assert_eq!(a.to_json().to_json(), b.to_json().to_json());
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let mut tr = Tracer::enabled(TraceLevel::Lifecycle, 4);
        for i in 0..10u64 {
            tr.event(t(i), "e", vec![("i", i.into())]);
        }
        let trace = tr.take();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.dropped, 6);
        assert_eq!(trace.events[0].attr_u64("i"), Some(6));
        assert_eq!(trace.events[3].attr_u64("i"), Some(9));
    }

    #[test]
    fn ending_an_evicted_span_is_a_noop() {
        let mut tr = Tracer::enabled(TraceLevel::Lifecycle, 2);
        let old = tr.start_span(t(0), "old", vec![]);
        tr.start_span(t(1), "a", vec![]);
        tr.start_span(t(2), "b", vec![]); // evicts "old"
        tr.end_span(t(3), old);
        let trace = tr.take();
        assert_eq!(trace.spans.len(), 2);
        assert!(trace.spans.iter().all(|s| s.label != "old"));
        assert_eq!(trace.dropped, 1);
    }

    #[test]
    fn absorb_remaps_ids_and_tags_components() {
        let mut a = Tracer::enabled(TraceLevel::Lifecycle, 16);
        let ra = a.start_span(t(0), "x", vec![]);
        a.event_in(t(1), "ea", ra, vec![]);
        let mut b = Tracer::enabled(TraceLevel::Lifecycle, 16);
        let rb = b.start_span(t(0), "y", vec![]);
        b.event_in(t(1), "eb", rb, vec![]);

        let mut merged = a.take();
        merged.absorb("", Trace::default()); // no-op
        let mut combined = Trace::default();
        combined.absorb("compA", merged);
        combined.absorb("compB", b.take());

        assert_eq!(combined.spans.len(), 2);
        let ids: Vec<u64> = combined.spans.iter().map(|s| s.id.0).collect();
        assert_ne!(ids[0], ids[1], "absorbed IDs must stay unique");
        assert_eq!(combined.spans[0].component, "compA");
        assert_eq!(combined.spans[1].component, "compB");
        // Events still point at their (remapped) spans.
        let ea = combined.events_labeled("ea").next().unwrap();
        assert_eq!(ea.span, combined.spans[0].id);
        let eb = combined.events_labeled("eb").next().unwrap();
        assert_eq!(eb.span, combined.spans[1].id);
    }

    #[test]
    fn json_shape_has_spans_events_dropped() {
        let mut tr = Tracer::enabled(TraceLevel::Full, 16);
        let s = tr.start_span(t(1), "req", vec![("req", 5u64.into())]);
        tr.event_in(t(2), "first", s, vec![("score", AttrValue::F64(0.5))]);
        tr.end_span(t(3), s);
        let mut trace = Trace::default();
        trace.absorb("engine", tr.take());
        let v = trace.to_json();
        let spans = v.get("spans").unwrap();
        assert_eq!(spans.as_array().unwrap().len(), 1);
        let span0 = spans.at(0).unwrap();
        assert_eq!(span0.get("label").unwrap().as_str(), Some("req"));
        assert_eq!(span0.get("component").unwrap().as_str(), Some("engine"));
        assert_eq!(span0.get("start_ns").unwrap().as_u64(), Some(1_000_000));
        assert_eq!(
            span0.get("attrs").unwrap().get("req").unwrap().as_u64(),
            Some(5)
        );
        let ev0 = v.get("events").unwrap().at(0).unwrap();
        assert_eq!(
            ev0.get("span").unwrap().as_u64(),
            span0.get("id").unwrap().as_u64()
        );
        // Round-trips through the JSON text layer.
        let text = v.to_json();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(parsed.to_json(), text);
    }
}
