//! `serve` — run the DeepServe gateway on a TCP port.
//!
//! ```text
//! serve [--addr 127.0.0.1:8080] [--timescale 20] [--tes 2]
//!       [--fleet-models N] [--session-capacity N]
//!       [--max-requests N] [--max-wall-ms MS]
//!       [--session-log PATH] [--report PATH] [--replay-check]
//! ```
//!
//! `--fleet-models N` serves a registry of N model endpoints instead of
//! the single default model: completions tagged `"model":
//! "fleet-000-generic-7b"` cold-start their endpoint through the storage
//! hierarchy and `/v1/models` reports per-endpoint load states.
//! `--session-log` writes the replayable ingress log on exit;
//! `--replay-check` re-runs the log through a fresh deterministic cluster
//! and fails loudly unless the replayed report is byte-identical to the
//! live run's (the determinism contract in DESIGN.md "Serving façade").

use deepserve_gateway::{build_fleet_sim, build_sim, log, Server, ServerConfig};
use std::process::ExitCode;

struct Args {
    cfg: ServerConfig,
    session_log: Option<String>,
    report: Option<String>,
    replay_check: bool,
}

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--timescale X] [--tes N] \
                     [--fleet-models N] [--session-capacity N] \
                     [--max-requests N] [--max-wall-ms MS] [--session-log PATH] \
                     [--report PATH] [--replay-check]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: ServerConfig {
            addr: "127.0.0.1:8080".to_string(),
            ..ServerConfig::default()
        },
        session_log: None,
        report: None,
        replay_check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.cfg.addr = value("--addr")?,
            "--timescale" => {
                let v = value("--timescale")?;
                args.cfg.timescale = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t > 0.0)
                    .ok_or_else(|| format!("--timescale must be a positive number, got {v:?}"))?;
            }
            "--tes" => {
                let v = value("--tes")?;
                args.cfg.tes = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--tes must be a positive integer, got {v:?}"))?;
            }
            "--max-requests" => {
                let v = value("--max-requests")?;
                args.cfg.max_requests = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--max-requests must be an integer, got {v:?}"))?,
                );
            }
            "--max-wall-ms" => {
                let v = value("--max-wall-ms")?;
                args.cfg.max_wall_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--max-wall-ms must be an integer, got {v:?}"))?,
                );
            }
            "--fleet-models" => {
                let v = value("--fleet-models")?;
                args.cfg.fleet_models = v
                    .parse::<usize>()
                    .map_err(|_| format!("--fleet-models must be an integer, got {v:?}"))?;
            }
            "--session-capacity" => {
                let v = value("--session-capacity")?;
                args.cfg.session_capacity =
                    v.parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("--session-capacity must be a positive integer, got {v:?}")
                    })?;
            }
            "--session-log" => args.session_log = Some(value("--session-log")?),
            "--report" => args.report = Some(value("--report")?),
            "--replay-check" => args.replay_check = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let tes = args.cfg.tes;
    let fleet_models = args.cfg.fleet_models;
    let server = match Server::bind(args.cfg) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Some(addr) => println!("gateway listening on http://{addr}"),
        None => println!("gateway listening"),
    }
    let outcome = server.run();
    println!(
        "gateway done: served {} completions, {} ingress records",
        outcome.served,
        outcome.ingress.len()
    );
    if let Some(path) = &args.session_log {
        if let Err(e) = std::fs::write(path, log::to_json(&outcome.ingress)) {
            eprintln!("cannot write session log {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        println!("session log written to {path}");
    }
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, &outcome.report_json) {
            eprintln!("cannot write report {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        println!("live report written to {path}");
    }
    if args.replay_check {
        let fresh = || {
            if fleet_models > 0 {
                build_fleet_sim(tes, fleet_models)
            } else {
                build_sim(tes)
            }
        };
        let replayed = log::replay(&outcome.ingress, fresh).to_json().to_json();
        if replayed == outcome.report_json {
            println!("replay check passed: report is byte-identical");
        } else {
            eprintln!("replay check FAILED: live and replayed reports differ");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
