//! The serving loop: a single-threaded, non-blocking HTTP/1.1 + SSE
//! server over [`std::net::TcpListener`], driving a live-ingress
//! [`ClusterSim`].
//!
//! One thread does everything — accept, read, parse, submit, step the sim,
//! stream tokens — so detlint's thread rule holds in this crate with no
//! waivers (the cluster coordinator keeps its monopoly on worker threads).
//! Sockets are non-blocking; the loop paces itself with
//! [`crate::pacing::Pacer`], the workspace's only wall-clock site.
//!
//! Endpoints:
//! * `POST /v1/completions` — blocking JSON, or SSE when `"stream": true`
//! * `GET /v1/models` — the one model this cluster serves
//! * `GET /metrics` — point-in-time JSON dump of the metrics registry
//! * `POST /admin/shutdown` — drain in-flight requests, then exit

use crate::http::{self, HttpError, Parse, Request};
use crate::pacing::Pacer;
use crate::session::SessionTable;
use deepserve::{
    fleet_catalog, ApiRequest, ClusterConfig, ClusterSim, FleetConfig, IngressRecord, LiveEvent,
    ModelRegistry, TeRole,
};
use flowserve::{CacheId, Tokenizer};
use serde::{Number, Value};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Sim seconds per wall second (values above 1 compress wall time).
    pub timescale: f64,
    /// Number of PD-colocated TEs in the serving pool.
    pub tes: usize,
    /// Exit after this many completions finished (or failed); `None`
    /// keeps serving until `POST /admin/shutdown`.
    pub max_requests: Option<u64>,
    /// `max_tokens` used when a request does not specify one.
    pub default_max_tokens: u32,
    /// Hard cap on a request's `max_tokens`.
    pub max_tokens_cap: u32,
    /// Wall-clock safety deadline in milliseconds; the loop force-drains
    /// and exits past it. `None` = no deadline.
    pub max_wall_ms: Option<u64>,
    /// Model name advertised by `/v1/models` and stamped on completions.
    pub model_name: String,
    /// Serve a model fleet of this many registered endpoints instead of
    /// the single pre-warmed model; `0` keeps the single-model gateway.
    /// Completion bodies pick an endpoint with `"model": "<name>"`, and
    /// `/v1/models` reports per-endpoint load states.
    pub fleet_models: usize,
    /// LRU cap on live sessions (see [`SessionTable`]).
    pub session_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            timescale: 20.0,
            tes: 2,
            max_requests: None,
            default_max_tokens: 16,
            max_tokens_cap: 2048,
            max_wall_ms: None,
            model_name: "deepserve-34b".to_string(),
            fleet_models: 0,
            session_capacity: crate::session::DEFAULT_SESSION_CAPACITY,
        }
    }
}

/// Builds the deterministic cluster the gateway serves from — and the one
/// a replay must rebuild to reproduce the live run (same topology, same
/// config, no wall clock).
pub fn build_sim(tes: usize) -> ClusterSim {
    let cfg = ClusterConfig::standard_34b();
    let roles = vec![TeRole::Colocated; tes.max(1)];
    ClusterSim::new(cfg, &roles)
}

/// [`build_sim`] plus a fleet of `models` registered endpoints, every
/// checkpoint staged on local SSD (the deployment the storage hierarchy
/// assumes). A replay of a fleet session log must rebuild with the same
/// `(tes, models)` pair.
pub fn build_fleet_sim(tes: usize, models: usize) -> ClusterSim {
    let mut sim = build_sim(tes);
    sim.enable_fleet(fleet_catalog(models), FleetConfig::default());
    sim.stage_fleet_on_ssd();
    sim
}

/// What a finished serve run hands back: the deterministic final report
/// (as its canonical JSON string) plus the replayable ingress log.
#[derive(Debug)]
pub struct ServeOutcome {
    /// `RunReport::to_json().to_json()` — the replay-comparable bytes.
    pub report_json: String,
    /// Every accepted submission, in arrival order.
    pub ingress: Vec<IngressRecord>,
    /// Completions delivered (finished or failed).
    pub served: u64,
}

/// Per-request bookkeeping while the sim works on it.
#[derive(Debug)]
struct PendingRequest {
    req_id: u64,
    prompt_tokens: usize,
    /// Words already streamed to the client.
    emitted: u64,
    /// SSE mode (false = answer once on finish).
    streaming: bool,
    /// Fleet endpoint name to echo in responses (None = the gateway's
    /// single advertised model).
    model: Option<String>,
}

#[derive(Debug)]
enum ConnState {
    /// Accumulating request bytes.
    Reading,
    /// Request submitted; events will complete it.
    Pending(PendingRequest),
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    state: ConnState,
}

/// The gateway server. Construct with [`Server::bind`], drive with
/// [`Server::run`].
pub struct Server {
    cfg: ServerConfig,
    listener: TcpListener,
    sim: ClusterSim,
    pacer: Pacer,
    sessions: SessionTable,
    tokenizer: Tokenizer,
    conns: Vec<Option<Conn>>,
    /// Request id -> connection slot. Point-lookup only (never iterated).
    waiters: HashMap<u64, usize>,
    next_req_id: u64,
    served: u64,
    shutdown: bool,
}

impl Server {
    /// Binds the listener and stands up the live cluster.
    pub fn bind(cfg: ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| format!("cannot bind {addr}: {e}", addr = cfg.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set listener non-blocking: {e}"))?;
        let mut sim = if cfg.fleet_models > 0 {
            build_fleet_sim(cfg.tes, cfg.fleet_models)
        } else {
            build_sim(cfg.tes)
        };
        sim.enable_live_ingress();
        sim.set_token_events(true);
        let pacer = Pacer::new(cfg.timescale);
        let sessions = SessionTable::with_capacity(cfg.session_capacity);
        Ok(Server {
            cfg,
            listener,
            sim,
            pacer,
            sessions,
            tokenizer: Tokenizer::default(),
            conns: Vec::new(),
            waiters: HashMap::new(),
            next_req_id: 1,
            served: 0,
            shutdown: false,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.local_addr().ok()
    }

    /// Serves until shutdown (admin endpoint, `max_requests`, or the wall
    /// deadline), then drains the sim and returns the final outcome.
    pub fn run(mut self) -> ServeOutcome {
        let deadline_sim = self.cfg.max_wall_ms.map(|ms| {
            simcore::SimTime::ZERO
                + simcore::SimDuration::from_nanos((ms as f64 * 1e6 * self.cfg.timescale) as u64)
        });
        loop {
            let draining =
                self.shutdown || self.cfg.max_requests.is_some_and(|max| self.served >= max);
            if !draining {
                self.accept_new();
            }
            self.read_conns();
            let limit = self.pacer.now_sim();
            if self.sim.next_event_time().is_some_and(|t| t <= limit) {
                self.sim.step_until(limit);
            }
            self.dispatch_events();
            let draining =
                self.shutdown || self.cfg.max_requests.is_some_and(|max| self.served >= max);
            if draining && self.waiters.is_empty() {
                break;
            }
            if deadline_sim.is_some_and(|d| self.pacer.now_sim() >= d) {
                // Safety valve: a wedged client must not hang the process.
                break;
            }
            // Sleep until the next sim event is due on the wall clock,
            // capped so new connections stay responsive.
            match self.sim.next_event_time() {
                Some(next) => self.pacer.sleep_until_sim(next, 2),
                None => Pacer::sleep_brief(),
            }
        }
        let ingress = self.sim.ingress_log().to_vec();
        let mut report = self.sim.run_to_completion();
        ServeOutcome {
            report_json: report.to_json().to_json(),
            ingress,
            served: self.served,
        }
    }

    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // peer already gone
                    }
                    let conn = Conn {
                        stream,
                        buf: Vec::new(),
                        state: ConnState::Reading,
                    };
                    if let Some(slot) = self.conns.iter().position(Option::is_none) {
                        self.conns[slot] = Some(conn);
                    } else {
                        self.conns.push(Some(conn));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break, // transient accept error; retry next tick
            }
        }
    }

    fn read_conns(&mut self) {
        for slot in 0..self.conns.len() {
            let mut chunk = [0u8; 4096];
            let action = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                if !matches!(conn.state, ConnState::Reading) {
                    // A pending connection that hangs up mid-stream is
                    // detected by its next write; nothing to read here.
                    continue;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => ReadAction::Close,
                    Ok(n) => {
                        conn.buf.extend_from_slice(&chunk[..n]);
                        match http::parse_request(&conn.buf) {
                            Parse::NeedMore => ReadAction::Keep,
                            Parse::Complete(req, _) => ReadAction::Handle(req),
                            Parse::Invalid(err) => ReadAction::Reject(err),
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => ReadAction::Keep,
                    Err(_) => ReadAction::Close,
                }
            };
            match action {
                ReadAction::Keep => {}
                ReadAction::Close => self.drop_conn(slot),
                ReadAction::Reject(err) => {
                    self.write_to(slot, &http::error_response(&err));
                    self.drop_conn(slot);
                }
                ReadAction::Handle(req) => self.route(slot, &req),
            }
        }
    }

    fn route(&mut self, slot: usize, req: &Request) {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/completions") => self.handle_completion(slot, req),
            ("GET", "/v1/models") => {
                let body = match self.sim.fleet_registry() {
                    Some(reg) => fleet_models_json(reg),
                    None => models_json(&self.cfg.model_name),
                };
                self.write_to(slot, &http::response(200, "application/json", &body));
                self.drop_conn(slot);
            }
            ("GET", "/metrics") => {
                let body = self.sim.metrics_snapshot_json().to_json_pretty();
                self.write_to(
                    slot,
                    &http::response(200, "application/json", body.as_bytes()),
                );
                self.drop_conn(slot);
            }
            ("POST", "/admin/shutdown") => {
                self.shutdown = true;
                self.write_to(
                    slot,
                    &http::response(200, "application/json", b"{\"ok\":true}"),
                );
                self.drop_conn(slot);
            }
            (_, "/v1/completions" | "/v1/models" | "/metrics" | "/admin/shutdown") => {
                let err = HttpError::new(405, "method not allowed for this route");
                self.write_to(slot, &http::error_response(&err));
                self.drop_conn(slot);
            }
            _ => {
                let err = HttpError::new(404, "unknown route");
                self.write_to(slot, &http::error_response(&err));
                self.drop_conn(slot);
            }
        }
    }

    fn handle_completion(&mut self, slot: usize, req: &Request) {
        let parsed = match parse_completion_body(req, &self.cfg) {
            Ok(p) => p,
            Err(err) => {
                self.write_to(slot, &http::error_response(&err));
                self.drop_conn(slot);
                return;
            }
        };
        let tokens = self.tokenizer.tokenize(&parsed.prompt);
        if tokens.is_empty() {
            let err = HttpError::new(400, "prompt must not be empty");
            self.write_to(slot, &http::error_response(&err));
            self.drop_conn(slot);
            return;
        }
        // Resolve the target endpoint in fleet mode. An unknown name is
        // rejected here, before it enters the sim; requests naming the
        // gateway's advertised single model (or naming nothing) take the
        // untagged pre-warmed path.
        let model_idx = match (&parsed.model, self.sim.fleet_registry()) {
            (Some(name), Some(reg)) if name != &self.cfg.model_name => match reg.find(name) {
                Some(m) => Some(m),
                None => {
                    let err = HttpError::new(404, format!("unknown model {name:?}"));
                    self.write_to(slot, &http::error_response(&err));
                    self.drop_conn(slot);
                    return;
                }
            },
            _ => None,
        };
        let cache_id = parsed
            .session
            .as_deref()
            .map(|key| CacheId(self.sessions.cache_id(key)));
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        let prompt_tokens = tokens.len();
        let mut api = ApiRequest::chat(req_id, tokens, parsed.max_tokens, self.pacer.now_sim());
        api.cache_id = cache_id;
        api.model = model_idx;
        self.sim.submit_live(api);
        if parsed.stream {
            self.write_to(slot, &http::sse_head());
        }
        // The write may have dropped the connection (client vanished); the
        // request still runs, its events just find no waiter.
        if self.conns[slot].is_some() {
            self.waiters.insert(req_id, slot);
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.state = ConnState::Pending(PendingRequest {
                    req_id,
                    prompt_tokens,
                    emitted: 0,
                    streaming: parsed.stream,
                    model: model_idx.and(parsed.model),
                });
            }
        }
    }

    fn dispatch_events(&mut self) {
        for ev in self.sim.take_live_events() {
            match ev {
                LiveEvent::FirstToken { id, .. } => self.on_tokens(id.0, 1),
                LiveEvent::Tokens { id, n, .. } => self.on_tokens(id.0, u64::from(n)),
                LiveEvent::Finished {
                    id, output_tokens, ..
                } => self.on_done(id.0, Some(output_tokens)),
                LiveEvent::Failed { id, .. } => self.on_done(id.0, None),
            }
        }
    }

    /// Streams `n` more completion words to `req_id`'s waiter (SSE mode);
    /// blocking waiters just advance their emitted count.
    fn on_tokens(&mut self, req_id: u64, n: u64) {
        let Some(&slot) = self.waiters.get(&req_id) else {
            return; // client hung up earlier
        };
        let frame = {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let ConnState::Pending(p) = &mut conn.state else {
                return;
            };
            let from = p.emitted;
            p.emitted += n;
            if !p.streaming {
                return;
            }
            let text = completion_text(req_id, from, p.emitted);
            let model = p.model.as_deref().unwrap_or(&self.cfg.model_name);
            http::sse_frame(&chunk_json(req_id, model, &text, None).to_json())
        };
        self.write_to(slot, &frame);
        if self.conns[slot].is_none() {
            // Mid-stream disconnect: stop routing events at this waiter.
            self.waiters.remove(&req_id);
        }
    }

    /// Completes `req_id`: `total` is the full output length on success,
    /// `None` on permanent failure.
    fn on_done(&mut self, req_id: u64, total: Option<u64>) {
        self.served += 1;
        let Some(slot) = self.waiters.remove(&req_id) else {
            return; // client hung up earlier
        };
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let ConnState::Pending(p) = &mut conn.state else {
            return;
        };
        let model = p
            .model
            .clone()
            .unwrap_or_else(|| self.cfg.model_name.clone());
        match (total, p.streaming) {
            (Some(total), true) => {
                // Flush any tokens the event stream did not cover, then a
                // final frame with the finish reason, then the terminator.
                let mut out = Vec::new();
                if p.emitted < total {
                    let text = completion_text(req_id, p.emitted, total);
                    out.extend_from_slice(&http::sse_frame(
                        &chunk_json(req_id, &model, &text, None).to_json(),
                    ));
                }
                out.extend_from_slice(&http::sse_frame(
                    &chunk_json(req_id, &model, "", Some("stop")).to_json(),
                ));
                out.extend_from_slice(&http::sse_frame("[DONE]"));
                self.write_to(slot, &out);
            }
            (Some(total), false) => {
                let text = completion_text(req_id, 0, total);
                let body = completion_json(req_id, &model, &text, p.prompt_tokens, total).to_json();
                self.write_to(
                    slot,
                    &http::response(200, "application/json", body.as_bytes()),
                );
            }
            (None, true) => {
                let mut out =
                    http::sse_frame("{\"error\":{\"message\":\"request failed\",\"code\":503}}");
                out.extend_from_slice(&http::sse_frame("[DONE]"));
                self.write_to(slot, &out);
            }
            (None, false) => {
                let err = HttpError::new(503, "request failed in the serving pool");
                self.write_to(slot, &http::error_response(&err));
            }
        }
        self.drop_conn(slot);
    }

    /// Writes the whole buffer, retrying short/blocked writes briefly.
    /// Any hard error (peer gone, retry budget exhausted) drops the
    /// connection — never panics, never wedges the loop.
    fn write_to(&mut self, slot: usize, bytes: &[u8]) {
        let ok = {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            write_all_nonblocking(&mut conn.stream, bytes)
        };
        if !ok {
            self.drop_conn(slot);
        }
    }

    fn drop_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            if let ConnState::Pending(p) = conn.state {
                self.waiters.remove(&p.req_id);
            }
            // Socket closes on drop.
        }
    }
}

enum ReadAction {
    Keep,
    Close,
    Reject(HttpError),
    Handle(Box<Request>),
}

/// Fields of a `POST /v1/completions` body the gateway understands.
struct CompletionParams {
    prompt: String,
    max_tokens: u32,
    stream: bool,
    session: Option<String>,
    model: Option<String>,
}

fn parse_completion_body(req: &Request, cfg: &ServerConfig) -> Result<CompletionParams, HttpError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| HttpError::new(400, "request body is not UTF-8"))?;
    let v = Value::parse(text).map_err(|_| HttpError::new(400, "request body is not JSON"))?;
    let prompt = v
        .get("prompt")
        .and_then(Value::as_str)
        .ok_or_else(|| HttpError::new(400, "missing string field \"prompt\""))?
        .to_string();
    let max_tokens = match v.get("max_tokens") {
        None => cfg.default_max_tokens,
        Some(m) => u32::try_from(
            m.as_u64()
                .ok_or_else(|| HttpError::new(400, "\"max_tokens\" must be a positive integer"))?,
        )
        .map_err(|_| HttpError::new(400, "\"max_tokens\" out of range"))?,
    };
    if max_tokens == 0 || max_tokens > cfg.max_tokens_cap {
        return Err(HttpError::new(
            400,
            format!(
                "\"max_tokens\" must be between 1 and {cap}",
                cap = cfg.max_tokens_cap
            ),
        ));
    }
    let stream = match v.get("stream") {
        None => false,
        Some(s) => s
            .as_bool()
            .ok_or_else(|| HttpError::new(400, "\"stream\" must be a boolean"))?,
    };
    // Session identity: explicit `session` field, else the API key.
    let session = v
        .get("session")
        .and_then(Value::as_str)
        .map(str::to_string)
        .or_else(|| req.header("authorization").map(str::to_string));
    let model = match v.get("model") {
        None => None,
        Some(m) => Some(
            m.as_str()
                .ok_or_else(|| HttpError::new(400, "\"model\" must be a string"))?
                .to_string(),
        ),
    };
    Ok(CompletionParams {
        prompt,
        max_tokens,
        stream,
        session,
        model,
    })
}

/// True on full success; false means the connection should be dropped.
fn write_all_nonblocking(stream: &mut TcpStream, mut bytes: &[u8]) -> bool {
    // ~2 s worth of 1 ms backoffs: a stalled client gets disconnected
    // rather than wedging the single-threaded loop.
    let mut budget = 2000u32;
    while !bytes.is_empty() {
        match stream.write(bytes) {
            Ok(0) => return false,
            Ok(n) => bytes = &bytes[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
                Pacer::sleep_brief();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    let _ = stream.flush();
    true
}

/// Deterministic synthetic completion text: the engine simulates timing,
/// not content, so the gateway derives stable words from the request id
/// and token index (same request in a replayed log → same text).
const WORDS: [&str; 16] = [
    "alpha", "bravo", "cedar", "delta", "ember", "frost", "gleam", "harbor", "island", "juniper",
    "kernel", "lumen", "meadow", "nectar", "onyx", "prairie",
];

fn completion_word(req_id: u64, idx: u64) -> &'static str {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in req_id.to_le_bytes().iter().chain(idx.to_le_bytes().iter()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    WORDS[(h % WORDS.len() as u64) as usize]
}

/// Words `[from, to)` of `req_id`'s completion, space-separated, with a
/// leading space for every word so chunks concatenate cleanly.
fn completion_text(req_id: u64, from: u64, to: u64) -> String {
    let mut out = String::new();
    for idx in from..to {
        out.push(' ');
        out.push_str(completion_word(req_id, idx));
    }
    out
}

fn models_json(model: &str) -> Vec<u8> {
    Value::Object(vec![
        ("object".to_string(), Value::String("list".to_string())),
        (
            "data".to_string(),
            Value::Array(vec![Value::Object(vec![
                ("id".to_string(), Value::String(model.to_string())),
                ("object".to_string(), Value::String("model".to_string())),
            ])]),
        ),
    ])
    .to_json()
    .into_bytes()
}

/// `/v1/models` in fleet mode: every registered endpoint with its live
/// load state, so a client can see which models are warm before paying a
/// cold start.
fn fleet_models_json(reg: &ModelRegistry) -> Vec<u8> {
    let data = (0..reg.len() as u32)
        .filter_map(|m| {
            reg.entry(m).map(|e| {
                Value::Object(vec![
                    ("id".to_string(), Value::String(e.name.clone())),
                    ("object".to_string(), Value::String("model".to_string())),
                    (
                        "state".to_string(),
                        Value::String(reg.state(m).as_str().to_string()),
                    ),
                    (
                        "replicas".to_string(),
                        Value::Number(Number::U64(reg.hosts(m).len() as u64)),
                    ),
                ])
            })
        })
        .collect();
    Value::Object(vec![
        ("object".to_string(), Value::String("list".to_string())),
        ("data".to_string(), Value::Array(data)),
    ])
    .to_json()
    .into_bytes()
}

fn chunk_json(req_id: u64, model: &str, text: &str, finish: Option<&str>) -> Value {
    Value::Object(vec![
        ("id".to_string(), Value::String(format!("cmpl-{req_id}"))),
        (
            "object".to_string(),
            Value::String("text_completion.chunk".to_string()),
        ),
        ("model".to_string(), Value::String(model.to_string())),
        (
            "choices".to_string(),
            Value::Array(vec![Value::Object(vec![
                ("index".to_string(), Value::Number(Number::U64(0))),
                ("text".to_string(), Value::String(text.to_string())),
                (
                    "finish_reason".to_string(),
                    finish.map_or(Value::Null, |f| Value::String(f.to_string())),
                ),
            ])]),
        ),
    ])
}

fn completion_json(
    req_id: u64,
    model: &str,
    text: &str,
    prompt_tokens: usize,
    completion_tokens: u64,
) -> Value {
    Value::Object(vec![
        ("id".to_string(), Value::String(format!("cmpl-{req_id}"))),
        (
            "object".to_string(),
            Value::String("text_completion".to_string()),
        ),
        ("model".to_string(), Value::String(model.to_string())),
        (
            "choices".to_string(),
            Value::Array(vec![Value::Object(vec![
                ("index".to_string(), Value::Number(Number::U64(0))),
                ("text".to_string(), Value::String(text.to_string())),
                (
                    "finish_reason".to_string(),
                    Value::String("stop".to_string()),
                ),
            ])]),
        ),
        (
            "usage".to_string(),
            Value::Object(vec![
                (
                    "prompt_tokens".to_string(),
                    Value::Number(Number::U64(prompt_tokens as u64)),
                ),
                (
                    "completion_tokens".to_string(),
                    Value::Number(Number::U64(completion_tokens)),
                ),
                (
                    "total_tokens".to_string(),
                    Value::Number(Number::U64(prompt_tokens as u64 + completion_tokens)),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_text_is_deterministic_and_chunkable() {
        let whole = completion_text(7, 0, 6);
        let parts = format!(
            "{}{}{}",
            completion_text(7, 0, 1),
            completion_text(7, 1, 4),
            completion_text(7, 4, 6)
        );
        assert_eq!(whole, parts);
        assert_eq!(whole, completion_text(7, 0, 6));
        assert_ne!(completion_text(7, 0, 6), completion_text(8, 0, 6));
    }

    #[test]
    fn build_sim_is_reproducible() {
        let mut a = build_sim(2);
        let mut b = build_sim(2);
        let ra = a.run_to_completion().to_json().to_json();
        let rb = b.run_to_completion().to_json().to_json();
        assert_eq!(ra, rb);
    }
}
