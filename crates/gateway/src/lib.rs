//! # deepserve-gateway — the real-time serving façade
//!
//! An HTTP/1.1 + SSE frontend over the deterministic cluster simulation:
//! the piece that turns the offline reproduction into something you can
//! `curl` (DEEPSERVE §3's user-facing surface, scoped to chat/text
//! completions). Dependency-free by necessity — the build container is
//! offline, so the server speaks hand-rolled HTTP over
//! `std::net::TcpListener` on a single non-blocking thread.
//!
//! * [`http`] — incremental request parsing, response/SSE framing, limits.
//! * [`session`] — session key → RTC context-cache id mapping, so
//!   multi-turn conversations pin and reuse their prefix KV.
//! * [`pacing`] — the wall-clock ↔ sim-time bridge; the only module in
//!   the workspace (outside benches) allowed to read the host clock.
//! * [`server`] — the accept/read/step/stream loop over a live-ingress
//!   [`deepserve::ClusterSim`].
//! * [`log`] — the session log: replaying it through a fresh sim
//!   reproduces the live run's report byte-for-byte.

#![forbid(unsafe_code)]

pub mod http;
pub mod log;
pub mod pacing;
pub mod server;
pub mod session;

pub use http::{HttpError, Request, MAX_BODY_BYTES, MAX_HEAD_BYTES};
pub use pacing::Pacer;
pub use server::{build_fleet_sim, build_sim, ServeOutcome, Server, ServerConfig};
pub use session::{SessionTable, DEFAULT_SESSION_CAPACITY};
