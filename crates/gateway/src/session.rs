//! Session layer: maps caller identities to RTC context-cache ids.
//!
//! A multi-turn conversation resends its growing transcript as the prompt.
//! The engine's radix tree already shares any common token prefix, but the
//! platform's explicit context-cache path ([`flowserve::CacheId`]) lets a
//! session *pin* its prefix KV: the session layer hands every request from
//! the same session the same cache id, so turn N's prefill registers the
//! chain that turn N+1 reuses (§5.2's global prompt tree / RTC pairing).
//!
//! A session key is whatever the client offers, in priority order: the
//! `session` field of the request JSON, else the `Authorization` header
//! (API key), else no session (anonymous requests still benefit from
//! implicit radix-prefix sharing, they just never pin).
//!
//! The table is bounded: a long-lived gateway sees an unbounded stream of
//! API keys, so sessions are capped with deterministic LRU eviction (the
//! recency order is an explicit vector, never hash-map iteration). An
//! evicted session that comes back gets a *fresh* cache id — its pinned
//! prefix is gone, and resurrecting the old id would alias another
//! session's KV.

use std::collections::HashMap;

/// Default cap on live sessions ([`SessionTable::new`]).
pub const DEFAULT_SESSION_CAPACITY: usize = 1024;

/// Allocates stable per-session cache ids, LRU-capped.
///
/// detlint note: the map is point-lookup only (never iterated); eviction
/// order comes from the `recency` vector.
#[derive(Debug)]
pub struct SessionTable {
    ids: HashMap<String, u64>,
    /// Keys from coldest (front) to hottest (back).
    recency: Vec<String>,
    capacity: usize,
    next: u64,
}

impl Default for SessionTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionTable {
    /// An empty table with the default capacity; cache ids are handed out
    /// sequentially from 1.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SESSION_CAPACITY)
    }

    /// An empty table evicting beyond `capacity` sessions (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SessionTable {
            ids: HashMap::new(),
            recency: Vec::new(),
            capacity: capacity.max(1),
            next: 1,
        }
    }

    /// The cache id for `key`, allocating one on first sight (and evicting
    /// the least-recently-used session at capacity). Ids are never reused:
    /// an evicted key seen again gets a new id, because its pinned prefix
    /// KV died with the old one.
    pub fn cache_id(&mut self, key: &str) -> u64 {
        if let Some(&id) = self.ids.get(key) {
            self.touch(key);
            return id;
        }
        if self.ids.len() >= self.capacity {
            // Coldest first; `recency` and `ids` shrink together.
            let victim = self.recency.remove(0);
            self.ids.remove(&victim);
        }
        let id = self.next;
        self.next += 1;
        self.ids.insert(key.to_string(), id);
        self.recency.push(key.to_string());
        id
    }

    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.recency.iter().position(|k| k == key) {
            let k = self.recency.remove(pos);
            self.recency.push(k);
        }
    }

    /// Number of live (non-evicted) sessions.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no session is live.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_id_distinct_keys_distinct_ids() {
        let mut t = SessionTable::new();
        let a = t.cache_id("alice");
        let b = t.cache_id("bob");
        assert_ne!(a, b);
        assert_eq!(t.cache_id("alice"), a);
        assert_eq!(t.cache_id("bob"), b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn capacity_evicts_lru_and_evicted_keys_get_fresh_ids() {
        let mut t = SessionTable::with_capacity(2);
        let a = t.cache_id("alice");
        let b = t.cache_id("bob");
        // Touch alice so bob is the LRU victim when carol arrives.
        assert_eq!(t.cache_id("alice"), a);
        let c = t.cache_id("carol");
        assert_eq!(t.len(), 2, "capacity must hold");
        // Alice survived (recently used); her pinned id is intact.
        assert_eq!(t.cache_id("alice"), a);
        // Bob was evicted: his pinned prefix is gone, so re-seeing the key
        // must mint a NEW id, never resurrect the old one.
        let b2 = t.cache_id("bob");
        assert_ne!(b2, b, "evicted session must lose its pinned cache id");
        assert!(b2 > c, "ids are never reused");
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // Same access sequence -> same evictions -> same ids, every run.
        let run = || {
            let mut t = SessionTable::with_capacity(3);
            let keys = ["a", "b", "c", "d", "b", "e", "a", "f", "c"];
            keys.iter().map(|k| t.cache_id(k)).collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }
}
