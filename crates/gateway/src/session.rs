//! Session layer: maps caller identities to RTC context-cache ids.
//!
//! A multi-turn conversation resends its growing transcript as the prompt.
//! The engine's radix tree already shares any common token prefix, but the
//! platform's explicit context-cache path ([`flowserve::CacheId`]) lets a
//! session *pin* its prefix KV: the session layer hands every request from
//! the same session the same cache id, so turn N's prefill registers the
//! chain that turn N+1 reuses (§5.2's global prompt tree / RTC pairing).
//!
//! A session key is whatever the client offers, in priority order: the
//! `session` field of the request JSON, else the `Authorization` header
//! (API key), else no session (anonymous requests still benefit from
//! implicit radix-prefix sharing, they just never pin).

use std::collections::HashMap;

/// Allocates stable per-session cache ids.
///
/// detlint note: the map is point-lookup only (never iterated), so hash
/// order cannot leak anywhere.
#[derive(Debug, Default)]
pub struct SessionTable {
    ids: HashMap<String, u64>,
    next: u64,
}

impl SessionTable {
    /// An empty table; cache ids are handed out sequentially from 1.
    pub fn new() -> Self {
        SessionTable {
            ids: HashMap::new(),
            next: 1,
        }
    }

    /// The cache id for `key`, allocating one on first sight.
    pub fn cache_id(&mut self, key: &str) -> u64 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.next;
        self.next += 1;
        self.ids.insert(key.to_string(), id);
        id
    }

    /// Number of distinct sessions seen.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no session has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_id_distinct_keys_distinct_ids() {
        let mut t = SessionTable::new();
        let a = t.cache_id("alice");
        let b = t.cache_id("bob");
        assert_ne!(a, b);
        assert_eq!(t.cache_id("alice"), a);
        assert_eq!(t.cache_id("bob"), b);
        assert_eq!(t.len(), 2);
    }
}
