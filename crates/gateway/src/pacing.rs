//! Wall-clock ↔ sim-time bridge — the **only** module in the workspace
//! outside `crates/bench` that may read the host clock.
//!
//! The deterministic core never sees wall time: the gateway maps a wall
//! instant to a sim instant here, hands the core plain [`SimTime`]s
//! (`submit_live` / `step_until`), and sleeps here until the next pending
//! event is due. Determinism is preserved by construction — wall time only
//! chooses *when* ingress happens; once an arrival stamp is chosen it goes
//! into the session log, and replaying the log needs no clock at all.
//!
//! Every host-clock touchpoint below carries an explicit detlint waiver;
//! detlint's wall-clock rule still covers the rest of the crate (and the
//! workspace) so new call sites cannot creep in unreviewed.

use simcore::{SimDuration, SimTime};
// detlint: allow(wall-clock) — the serving façade's sole sim↔wall bridge; see module doc
use std::time::{Duration, Instant};

/// Maps wall-clock progress since an anchor instant onto sim time, scaled
/// by `timescale` (sim seconds per wall second). A timescale above 1
/// compresses wall time — useful for smoke tests where multi-sim-second
/// completions should finish in wall milliseconds.
#[derive(Debug, Clone)]
pub struct Pacer {
    start: Instant,
    timescale: f64,
}

impl Pacer {
    /// Anchors sim time zero at the current wall instant.
    ///
    /// Non-finite or non-positive timescales fall back to 1.0 (debug
    /// builds assert): a gateway must keep serving, not divide by zero.
    pub fn new(timescale: f64) -> Self {
        let ok = timescale.is_finite() && timescale > 0.0;
        debug_assert!(ok, "timescale must be finite and positive");
        Pacer {
            // detlint: allow(wall-clock) — anchor for the sim↔wall mapping
            start: Instant::now(),
            timescale: if ok { timescale } else { 1.0 },
        }
    }

    /// The current wall instant expressed in sim time.
    pub fn now_sim(&self) -> SimTime {
        let elapsed = self.start.elapsed();
        let ns = elapsed.as_secs_f64() * self.timescale * 1e9;
        // Saturate rather than wrap on absurd uptimes/timescales.
        let ns = if ns.is_finite() && ns >= 0.0 {
            ns.min(u64::MAX as f64) as u64
        } else {
            0
        };
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    /// Sleeps until sim instant `t` is due on the wall clock, but no
    /// longer than `cap_ms` — the serve loop must keep polling its
    /// listener for new connections, so long waits are chopped into caps.
    pub fn sleep_until_sim(&self, t: SimTime, cap_ms: u64) {
        let now = self.now_sim();
        if t <= now {
            return;
        }
        let sim_ns = t.since(now).as_nanos();
        let wall_ns = (sim_ns as f64 / self.timescale).min(cap_ms as f64 * 1e6);
        if wall_ns >= 1.0 {
            std::thread::sleep(Duration::from_nanos(wall_ns as u64));
        }
    }

    /// A short fixed sleep for idle polling (no pending sim event).
    pub fn sleep_brief() {
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_advances_with_wall_time() {
        let p = Pacer::new(1000.0);
        let a = p.now_sim();
        Pacer::sleep_brief();
        let b = p.now_sim();
        assert!(b > a, "sim time must move forward with wall time");
    }

    #[test]
    fn sleep_until_past_instant_returns_immediately() {
        let p = Pacer::new(1.0);
        p.sleep_until_sim(SimTime::ZERO, 1000);
    }

    #[test]
    fn degenerate_timescale_falls_back() {
        // Release-mode behavior: the pacer still works.
        if cfg!(debug_assertions) {
            return;
        }
        let p = Pacer::new(0.0);
        let _ = p.now_sim();
    }
}
