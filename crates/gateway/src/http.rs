//! Minimal HTTP/1.1 request parsing and response framing.
//!
//! The container is offline, so there is no tokio/axum/hyper: the gateway
//! speaks just enough HTTP/1.1 over `std::net` for an OpenAI-style
//! completions API. The parser is incremental — callers feed it a growing
//! byte buffer and get back `NeedMore` until a full request (head plus
//! `Content-Length` body) has arrived — and every malformed input maps to
//! a status code, never a panic (house de-panic style).

/// Upper bound on the request head (request line + headers). A client
/// still inside the head past this limit is sent `431`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body; larger declared or delivered bodies are
/// rejected with `413`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request. Header names are lowercased; values are trimmed.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, without query string.
    pub path: String,
    /// `(lowercased name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request-level error with the HTTP status it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable reason, returned in the JSON error body.
    pub message: String,
}

impl HttpError {
    /// Convenience constructor.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Incremental parse outcome for one connection buffer.
#[derive(Debug)]
pub enum Parse {
    /// The buffer does not yet hold a complete request.
    NeedMore,
    /// A complete request, plus the number of buffer bytes it consumed.
    Complete(Box<Request>, usize),
    /// The buffer can never become a valid request; answer and close.
    Invalid(HttpError),
}

/// Parses the front of `buf` as an HTTP/1.1 request.
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Parse::Invalid(HttpError::new(431, "request head too large"));
        }
        return Parse::NeedMore;
    };
    if head_end > MAX_HEAD_BYTES {
        return Parse::Invalid(HttpError::new(431, "request head too large"));
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return Parse::Invalid(HttpError::new(400, "request head is not UTF-8")),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parse::Invalid(HttpError::new(400, "malformed request line"));
    };
    if parts.next().is_some() || method.is_empty() || target.is_empty() {
        return Parse::Invalid(HttpError::new(400, "malformed request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Parse::Invalid(HttpError::new(505, "unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Invalid(HttpError::new(400, "malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match header_value(&headers, "content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Parse::Invalid(HttpError::new(400, "invalid Content-Length")),
        },
    };
    if content_length > MAX_BODY_BYTES {
        return Parse::Invalid(HttpError::new(413, "request body too large"));
    }
    if header_value(&headers, "transfer-encoding").is_some() {
        return Parse::Invalid(HttpError::new(501, "Transfer-Encoding is not supported"));
    }
    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Parse::NeedMore;
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    Parse::Complete(
        Box::new(Request {
            method: method.to_ascii_uppercase(),
            path,
            headers,
            body: buf[body_start..total].to_vec(),
        }),
        total,
    )
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn header_value<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Serializes a full response with `Content-Length` and `Connection:
/// close` (every gateway exchange is one request per connection).
pub fn response(status: u16, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {len}\r\nConnection: close\r\n\r\n",
        reason = reason(status),
        len = body.len(),
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// A JSON error response body for `err`.
pub fn error_response(err: &HttpError) -> Vec<u8> {
    let body = serde::Value::Object(vec![(
        "error".to_string(),
        serde::Value::Object(vec![
            (
                "message".to_string(),
                serde::Value::String(err.message.clone()),
            ),
            (
                "code".to_string(),
                serde::Value::Number(serde::Number::U64(u64::from(err.status))),
            ),
        ]),
    )])
    .to_json();
    response(err.status, "application/json", body.as_bytes())
}

/// The response head that starts a Server-Sent-Events stream. No
/// `Content-Length`: the stream ends when the connection closes.
pub fn sse_head() -> Vec<u8> {
    b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
      Cache-Control: no-cache\r\nConnection: close\r\n\r\n"
        .to_vec()
}

/// One SSE frame: `data: <payload>\n\n`.
pub fn sse_frame(payload: &str) -> Vec<u8> {
    format!("data: {payload}\n\n").into_bytes()
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(s: &str) -> Parse {
        parse_request(s.as_bytes())
    }

    #[test]
    fn parses_get_without_body() {
        let raw = "GET /v1/models HTTP/1.1\r\nHost: x\r\n\r\n";
        let Parse::Complete(r, used) = req(raw) else {
            panic!("expected complete parse");
        };
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/models");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(used, raw.len());
    }

    #[test]
    fn strips_query_string() {
        let Parse::Complete(r, _) = req("GET /metrics?pretty=1 HTTP/1.1\r\n\r\n") else {
            panic!("expected complete parse");
        };
        assert_eq!(r.path, "/metrics");
    }

    #[test]
    fn body_waits_for_content_length() {
        let partial = "POST /v1/completions HTTP/1.1\r\nContent-Length: 5\r\n\r\nab";
        assert!(matches!(req(partial), Parse::NeedMore));
        let full = "POST /v1/completions HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde";
        let Parse::Complete(r, _) = req(full) else {
            panic!("expected complete parse");
        };
        assert_eq!(r.body, b"abcde");
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            " / HTTP/1.1\r\n\r\n",
        ] {
            let Parse::Invalid(e) = req(bad) else {
                panic!("{bad:?} should be invalid");
            };
            assert_eq!(e.status, 400, "{bad:?}");
        }
    }

    #[test]
    fn unsupported_version_is_505() {
        let Parse::Invalid(e) = req("GET / HTTP/2.0\r\n\r\n") else {
            panic!("expected invalid");
        };
        assert_eq!(e.status, 505);
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20);
        let Parse::Invalid(e) = req(&huge) else {
            panic!("expected invalid");
        };
        assert_eq!(e.status, 413);
    }

    #[test]
    fn unterminated_giant_head_is_431() {
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        while buf.len() <= MAX_HEAD_BYTES {
            buf.extend_from_slice(b"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        let Parse::Invalid(e) = parse_request(&buf) else {
            panic!("expected invalid");
        };
        assert_eq!(e.status, 431);
    }

    #[test]
    fn bad_content_length_is_400() {
        let Parse::Invalid(e) = req("POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n") else {
            panic!("expected invalid");
        };
        assert_eq!(e.status, 400);
    }

    #[test]
    fn responses_carry_length_and_close() {
        let r = String::from_utf8(response(200, "application/json", b"{}")).expect("utf8");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 2\r\n"));
        assert!(r.contains("Connection: close\r\n"));
        assert!(r.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn sse_framing() {
        assert_eq!(sse_frame("{\"a\":1}"), b"data: {\"a\":1}\n\n");
        let head = String::from_utf8(sse_head()).expect("utf8");
        assert!(head.contains("text/event-stream"));
    }
}
