//! The session log: a replayable record of everything the gateway let in.
//!
//! Live serving is wall-clock-driven, so the *run* is not reproducible —
//! but the *workload* is: every accepted submission is recorded with the
//! final arrival stamp the sim chose ([`deepserve::IngressRecord`]), and
//! [`replay`] feeds those records through a fresh deterministic cluster.
//! The contract (DESIGN.md "Serving façade"): the replayed
//! [`RunReport`]'s JSON is byte-identical to the live run's, at any
//! thread count and with fast-forward on or off.

use deepserve::{ClusterSim, IngressRecord, RunReport};
use serde::{Number, Serialize, Value};

/// Current log format version.
pub const LOG_VERSION: u64 = 1;

/// Serializes a session log: `{"version":1,"ingress":[...]}`.
pub fn to_json(records: &[IngressRecord]) -> String {
    Value::Object(vec![
        (
            "version".to_string(),
            Value::Number(Number::U64(LOG_VERSION)),
        ),
        (
            "ingress".to_string(),
            Value::Array(records.iter().map(Serialize::to_value).collect()),
        ),
    ])
    .to_json_pretty()
}

/// Parses a session log produced by [`to_json`]. Errors name what is
/// wrong; a hand-edited log must fail loudly, not replay something else.
pub fn from_json(text: &str) -> Result<Vec<IngressRecord>, String> {
    let v = Value::parse(text).map_err(|e| format!("session log is not JSON: {e:?}"))?;
    let version = v
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| "session log lacks a numeric \"version\"".to_string())?;
    if version != LOG_VERSION {
        return Err(format!(
            "session log version {version} is not supported (expected {LOG_VERSION})"
        ));
    }
    v.get("ingress")
        .and_then(Value::as_array)
        .ok_or_else(|| "session log lacks an \"ingress\" array".to_string())?
        .iter()
        .enumerate()
        .map(|(i, r)| IngressRecord::from_json(r).map_err(|e| format!("ingress[{i}]: {e}")))
        .collect()
}

/// Replays a recorded session through a fresh deterministic cluster built
/// by `build` (which must construct the same topology the live server
/// used) and returns the final report. No wall clock anywhere: the log's
/// arrival stamps drive the run.
pub fn replay(records: &[IngressRecord], build: impl FnOnce() -> ClusterSim) -> RunReport {
    let mut sim = build();
    sim.inject(records.iter().map(IngressRecord::to_request).collect());
    sim.run_to_completion()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowserve::TokenId;

    fn record(id: u64, at: u64) -> IngressRecord {
        IngressRecord {
            id,
            arrival_ns: at,
            prompt: vec![TokenId(7), TokenId(9)],
            target_output: 4,
            cache_id: if id.is_multiple_of(2) { Some(id) } else { None },
            model: if id.is_multiple_of(3) {
                Some(id as u32)
            } else {
                None
            },
        }
    }

    #[test]
    fn log_round_trips_through_json() {
        let records = vec![record(1, 10), record(2, 20), record(3, 4_000_000_000)];
        let text = to_json(&records);
        let back = from_json(&text).expect("round trip");
        assert_eq!(back, records);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = "{\"version\": 99, \"ingress\": []}";
        let err = from_json(text).expect_err("must reject");
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn garbage_is_rejected_with_context() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{}").is_err());
        let bad_record = "{\"version\":1,\"ingress\":[{\"id\":1}]}";
        let err = from_json(bad_record).expect_err("must reject");
        assert!(err.contains("ingress[0]"), "{err}");
    }
}
