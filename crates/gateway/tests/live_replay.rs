//! The live-vs-replay determinism contract, exercised without any wall
//! clock: the live API (`enable_live_ingress` / `submit_live` /
//! `step_until`) is driven with synthetic arrival stamps, and the
//! recorded ingress log is replayed through `inject` +
//! `run_to_completion`. The reports must match byte-for-byte at thread
//! counts 1 and 4, live and replayed, fast-forward on and off.

use deepserve::{ApiRequest, IngressRecord, LiveEvent};
use deepserve_gateway::{build_fleet_sim, build_sim, log};
use flowserve::Tokenizer;
use simcore::{SimDuration, SimTime};
use std::collections::HashMap;

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Drives a live session: a multi-turn conversation (shared prefix +
/// session cache id) interleaved with one-off requests, stepping sim time
/// in bounded slices like the gateway's serve loop does.
fn run_live(threads: usize, fast_forward: bool) -> (String, Vec<IngressRecord>, Vec<LiveEvent>) {
    let tok = Tokenizer::default();
    let mut sim = build_sim(2);
    sim.set_threads(threads);
    sim.set_fast_forward(fast_forward);
    sim.enable_live_ingress();
    sim.set_token_events(true);

    let mut events = Vec::new();
    let submit = |sim: &mut deepserve::ClusterSim,
                  id: u64,
                  text: &str,
                  out: u32,
                  at: SimTime,
                  cache: Option<u64>| {
        let mut req = ApiRequest::chat(id, tok.tokenize(text), out, at);
        req.cache_id = cache.map(flowserve::CacheId);
        sim.submit_live(req)
    };

    // Turn 1 of a session, plus an anonymous request close by. The turn-1
    // transcript must span several 16-token KV blocks so turn 2's shared
    // prefix is radix-cacheable.
    let turn1 = "the quick brown fox jumps over the lazy dog while seventeen \
                 careful engineers measure every latency percentile of the \
                 deterministic serving cluster and write the numbers down \
                 twice for the replay comparison suite";
    submit(&mut sim, 1, turn1, 6, at_ms(0), Some(1));
    submit(
        &mut sim,
        2,
        "an unrelated single-shot prompt",
        4,
        at_ms(1),
        None,
    );
    events.extend(sim.take_live_events());
    sim.step_until(at_ms(400));
    events.extend(sim.take_live_events());

    // Turn 2 resends the grown transcript (shared prefix) with the same
    // session cache id, arriving "in the past" relative to the frontier —
    // submit_live must bump it forward deterministically.
    let turn2 = format!("{turn1} and now summarize the measurements in one sentence");
    submit(&mut sim, 3, &turn2, 5, at_ms(100), Some(1));
    sim.step_until(at_ms(900));
    events.extend(sim.take_live_events());

    // A burst that lands mid-decode of earlier requests.
    submit(&mut sim, 4, "burst request one", 3, at_ms(901), None);
    submit(&mut sim, 5, "burst request two", 3, at_ms(901), None);
    sim.step_until(at_ms(1200));
    events.extend(sim.take_live_events());

    let ingress = sim.ingress_log().to_vec();
    let mut report = sim.run_to_completion();
    events.extend(sim.take_live_events());
    (report.to_json().to_json(), ingress, events)
}

#[test]
fn live_and_replay_reports_are_byte_identical_at_threads_1_and_4() {
    let (live1, ingress, _) = run_live(1, true);
    let (live4, ingress4, _) = run_live(4, true);
    assert_eq!(ingress, ingress4, "ingress logs must not depend on threads");
    assert_eq!(live1, live4, "live report must not depend on threads");

    for threads in [1usize, 4] {
        for ff in [true, false] {
            let replayed = log::replay(&ingress, || {
                let mut s = build_sim(2);
                s.set_threads(threads);
                s.set_fast_forward(ff);
                s
            })
            .to_json()
            .to_json();
            assert_eq!(
                live1, replayed,
                "replay (threads={threads}, ff={ff}) must be byte-identical to the live run"
            );
        }
    }
}

#[test]
fn live_without_fast_forward_matches_live_with() {
    let (a, ia, _) = run_live(1, true);
    let (b, ib, _) = run_live(1, false);
    assert_eq!(ia, ib);
    assert_eq!(a, b, "fast-forward must not change the live report");
}

#[test]
fn live_events_stream_is_complete_and_ordered() {
    let (_, ingress, events) = run_live(1, true);
    assert_eq!(ingress.len(), 5);

    let mut first_seen: HashMap<u64, SimTime> = HashMap::new();
    let mut tokens: HashMap<u64, u64> = HashMap::new();
    let mut finished: HashMap<u64, u64> = HashMap::new();
    for ev in &events {
        match *ev {
            LiveEvent::FirstToken { id, at } => {
                assert!(
                    first_seen.insert(id.0, at).is_none(),
                    "duplicate first token"
                );
            }
            LiveEvent::Tokens { id, at, n } => {
                assert!(
                    first_seen.contains_key(&id.0),
                    "tokens before first token for {id:?}"
                );
                assert!(at >= first_seen[&id.0]);
                *tokens.entry(id.0).or_insert(0) += u64::from(n);
            }
            LiveEvent::Finished {
                id, output_tokens, ..
            } => {
                assert!(
                    finished.insert(id.0, output_tokens).is_none(),
                    "double finish"
                );
            }
            LiveEvent::Failed { id, .. } => panic!("unexpected failure for {id:?}"),
        }
    }
    for rec in &ingress {
        let total = finished
            .get(&rec.id)
            .unwrap_or_else(|| panic!("request {} never finished", rec.id));
        assert_eq!(
            *total,
            u64::from(rec.target_output),
            "request {} output length",
            rec.id
        );
        // Token events cover the decode stream (the first token arrives
        // via FirstToken; Tokens events deliver the decoded ones).
        let decoded = tokens.get(&rec.id).copied().unwrap_or(0);
        assert!(
            decoded + 1 >= *total,
            "request {}: {decoded} token events for {total} outputs",
            rec.id
        );
    }
}

#[test]
fn arrival_stamps_are_strictly_increasing_and_collision_free() {
    let (_, ingress, _) = run_live(1, true);
    for pair in ingress.windows(2) {
        assert!(
            pair[1].arrival_ns > pair[0].arrival_ns,
            "arrivals must be strictly increasing"
        );
    }
}

/// Drives a live *fleet* session: completions aimed at unloaded endpoints
/// trigger cold starts mid-serve, a later request rides the warmed
/// replica, and the recorded ingress log (model tags included) must
/// replay byte-for-byte.
fn run_live_fleet(threads: usize, fast_forward: bool) -> (String, Vec<IngressRecord>) {
    let tok = Tokenizer::default();
    let mut sim = build_fleet_sim(2, 3);
    sim.set_threads(threads);
    sim.set_fast_forward(fast_forward);
    sim.enable_live_ingress();
    sim.set_token_events(true);

    let submit = |sim: &mut deepserve::ClusterSim, id: u64, model: u32, at: SimTime| {
        let req = ApiRequest::chat(id, tok.tokenize("fleet prompt body"), 3, at).with_model(model);
        sim.submit_live(req);
    };
    // Model 0 is unloaded: request 1 pays the cold start.
    submit(&mut sim, 1, 0, at_ms(0));
    sim.step_until(at_ms(500));
    // Model 1's cold start overlaps model 0's.
    submit(&mut sim, 2, 1, at_ms(501));
    // Step far enough that both loads finish, then ride the warm replica.
    sim.step_until(at_ms(15_000));
    submit(&mut sim, 3, 0, at_ms(15_001));

    let ingress = sim.ingress_log().to_vec();
    let mut report = sim.run_to_completion();
    assert!(
        report.counters.get("fleet.cold_starts") >= 2,
        "both endpoints must cold-start: {:?}",
        report.counters
    );
    (report.to_json().to_json(), ingress)
}

#[test]
fn fleet_session_log_replays_byte_for_byte() {
    let (live, ingress) = run_live_fleet(1, true);
    // The log captured the model tags.
    let models: Vec<Option<u32>> = ingress.iter().map(|r| r.model).collect();
    assert_eq!(models, vec![Some(0), Some(1), Some(0)]);
    // A fleet log survives serialization.
    let parsed = log::from_json(&log::to_json(&ingress)).expect("fleet log parses");
    assert_eq!(parsed, ingress);

    // Live at 4 threads matches live at 1.
    let (live4, ingress4) = run_live_fleet(4, true);
    assert_eq!(ingress, ingress4);
    assert_eq!(live, live4, "live fleet report must not depend on threads");

    for threads in [1usize, 4] {
        for ff in [true, false] {
            let mut replayed = log::replay(&ingress, || {
                let mut s = build_fleet_sim(2, 3);
                s.set_threads(threads);
                s.set_fast_forward(ff);
                s
            });
            assert!(replayed.counters.get("fleet.cold_starts") >= 2);
            assert_eq!(
                live,
                replayed.to_json().to_json(),
                "fleet replay (threads={threads}, ff={ff}) must be byte-identical"
            );
        }
    }
}

#[test]
fn session_prefix_reuse_hits_the_cache_on_replay() {
    let (_, ingress, _) = run_live(1, true);
    let report = log::replay(&ingress, || build_sim(2));
    // Turn 2 of the session resends turn 1's transcript with the same
    // cache id — the radix cache must serve that shared prefix instead of
    // re-prefilling it from zero.
    assert!(
        report.metrics.counter_value("engine.cache_hit_tokens") > 0,
        "multi-turn session should hit the prefix cache"
    );
}
