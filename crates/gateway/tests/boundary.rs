//! Boundary tests for the gateway over real loopback TCP: malformed
//! requests, truncated reads, oversized bodies, unknown routes,
//! mid-stream disconnects, and concurrent sessions. The server must
//! answer each with the right status code and keep serving — never panic.

use deepserve_gateway::{build_fleet_sim, build_sim, log, ServeOutcome, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Starts a gateway on an ephemeral loopback port with an aggressive
/// timescale (so completions finish in a few wall ms) and a wall-clock
/// safety valve.
fn start(max_requests: Option<u64>) -> (SocketAddr, JoinHandle<ServeOutcome>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        timescale: 500.0,
        tes: 2,
        max_requests,
        max_wall_ms: Some(30_000),
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    stream
}

/// Sends raw bytes, then reads until the server closes the connection.
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = connect(addr);
    stream.write_all(raw).expect("write request");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read response");
    String::from_utf8_lossy(&out).into_owned()
}

fn post(addr: SocketAddr, path: &str, session: Option<&str>, body: &str) -> String {
    let session_header =
        session.map_or(String::new(), |s| format!("Authorization: Bearer {s}\r\n"));
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\n{session_header}Content-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    roundtrip(addr, raw.as_bytes())
}

fn shutdown_server(addr: SocketAddr) {
    let _ = roundtrip(
        addr,
        b"POST /admin/shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    );
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"))
}

#[test]
fn malformed_and_unroutable_requests_get_proper_codes() {
    let (addr, handle) = start(None);

    // Malformed request line.
    assert_eq!(status_of(&roundtrip(addr, b"NONSENSE\r\n\r\n")), 400);
    // Unsupported HTTP version.
    assert_eq!(status_of(&roundtrip(addr, b"GET / HTTP/2.0\r\n\r\n")), 505);
    // Unknown route.
    assert_eq!(
        status_of(&roundtrip(addr, b"GET /nope HTTP/1.1\r\n\r\n")),
        404
    );
    // Known route, wrong method.
    assert_eq!(
        status_of(&roundtrip(addr, b"GET /v1/completions HTTP/1.1\r\n\r\n")),
        405
    );
    assert_eq!(
        status_of(&roundtrip(
            addr,
            b"POST /v1/models HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
        )),
        405
    );
    // Oversized declared body.
    let huge = format!(
        "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        64 << 20
    );
    assert_eq!(status_of(&roundtrip(addr, huge.as_bytes())), 413);
    // Bad Content-Length.
    assert_eq!(
        status_of(&roundtrip(
            addr,
            b"POST /v1/completions HTTP/1.1\r\nContent-Length: ten\r\n\r\n"
        )),
        400
    );
    // Invalid JSON body.
    assert_eq!(
        status_of(&post(addr, "/v1/completions", None, "{nope")),
        400
    );
    // Valid JSON, empty prompt.
    assert_eq!(
        status_of(&post(addr, "/v1/completions", None, r#"{"prompt":""}"#)),
        400
    );

    // The server survived all of it and still serves the models route.
    let models = roundtrip(addr, b"GET /v1/models HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&models), 200);
    assert!(models.contains("deepserve-34b"), "{models}");

    shutdown_server(addr);
    let outcome = handle.join().expect("server thread");
    assert_eq!(outcome.served, 0);
}

#[test]
fn truncated_and_chunked_writes_still_parse() {
    let (addr, handle) = start(None);

    // A request trickled in across several writes must still be served.
    let body = r#"{"prompt":"hello slow world","max_tokens":3}"#;
    let raw = format!(
        "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut stream = connect(addr);
    for chunk in raw.as_bytes().chunks(7) {
        stream.write_all(chunk).expect("write chunk");
        stream.flush().expect("flush");
        thread::sleep(Duration::from_millis(2));
    }
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read response");
    let response = String::from_utf8_lossy(&out);
    assert_eq!(status_of(&response), 200, "{response}");
    assert!(response.contains("\"text\""), "{response}");

    // A connection abandoned mid-head (client hangs up before CRLF CRLF)
    // must not wedge or kill the server.
    let mut partial = connect(addr);
    partial
        .write_all(b"POST /v1/completions HTTP/1.1\r\nContent-Le")
        .expect("write partial");
    partial.shutdown(Shutdown::Both).expect("shutdown");
    drop(partial);

    let models = roundtrip(addr, b"GET /v1/models HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&models), 200);

    shutdown_server(addr);
    let outcome = handle.join().expect("server thread");
    assert_eq!(outcome.served, 1);
}

#[test]
fn streaming_completion_emits_sse_frames_and_done() {
    let (addr, handle) = start(None);

    let response = post(
        addr,
        "/v1/completions",
        Some("sse-suite"),
        r#"{"prompt":"stream me a story","max_tokens":4,"stream":true}"#,
    );
    assert_eq!(status_of(&response), 200, "{response}");
    assert!(
        response.contains("Content-Type: text/event-stream"),
        "{response}"
    );
    let frames: Vec<&str> = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("sse body")
        .split("\n\n")
        .filter(|f| !f.is_empty())
        .collect();
    assert!(
        frames.len() >= 2,
        "expected data frames plus [DONE], got {frames:?}"
    );
    assert!(frames.iter().all(|f| f.starts_with("data: ")), "{frames:?}");
    assert_eq!(*frames.last().expect("last frame"), "data: [DONE]");
    // Concatenating the chunk deltas must equal the blocking text for the
    // same request id sequence; at minimum every payload frame is JSON
    // with a text delta or a finish marker.
    for frame in &frames[..frames.len() - 1] {
        let payload = frame.trim_start_matches("data: ");
        let v = serde::Value::parse(payload).expect("frame is JSON");
        assert!(v.get("choices").is_some(), "{payload}");
    }

    shutdown_server(addr);
    let outcome = handle.join().expect("server thread");
    assert_eq!(outcome.served, 1);
}

#[test]
fn midstream_disconnect_does_not_kill_the_server() {
    let (addr, handle) = start(None);

    // Start a long streaming completion, read only the head, vanish.
    let body = r#"{"prompt":"long running stream","max_tokens":64,"stream":true}"#;
    let raw = format!(
        "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut stream = connect(addr);
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut head = [0u8; 64];
    let n = stream.read(&mut head).expect("read some");
    assert!(n > 0, "expected at least the response head");
    stream.shutdown(Shutdown::Both).expect("shutdown");
    drop(stream);

    // The server must keep serving other clients to completion.
    let response = post(
        addr,
        "/v1/completions",
        None,
        r#"{"prompt":"after the disconnect","max_tokens":2}"#,
    );
    assert_eq!(status_of(&response), 200, "{response}");

    shutdown_server(addr);
    let outcome = handle.join().expect("server thread");
    // Both requests entered the sim; both are in the ingress log even
    // though one client vanished.
    assert_eq!(outcome.ingress.len(), 2);
}

#[test]
fn concurrent_sessions_are_served_and_replay_is_byte_identical() {
    let (addr, handle) = start(None);

    // Two sessions, two turns each, with the second turn resending the
    // first turn's transcript (prefix reuse), plus overlap in flight.
    let turn = |session: &str, text: &str| {
        let body = format!(r#"{{"prompt":"{text}","max_tokens":3}}"#);
        let session = session.to_string();
        move || {
            let response = post(addr, "/v1/completions", Some(&session), &body);
            assert_eq!(status_of(&response), 200, "{response}");
            let json_body = response.split("\r\n\r\n").nth(1).expect("body").to_string();
            serde::Value::parse(&json_body).expect("completion is JSON")
        }
    };
    let a1 = thread::spawn(turn("alice", "alice opening line"));
    let b1 = thread::spawn(turn("bob", "bob opening line"));
    let va = a1.join().expect("alice turn 1");
    let vb = b1.join().expect("bob turn 1");
    for v in [&va, &vb] {
        let completion_tokens = v
            .get("usage")
            .and_then(|u| u.get("completion_tokens"))
            .and_then(serde::Value::as_u64);
        assert!(completion_tokens.is_some(), "usage missing: {v:?}");
    }
    let a2 = thread::spawn(turn("alice", "alice opening line and a follow-up"));
    let vb2 = turn("bob", "bob opening line with more context")();
    let va2 = a2.join().expect("alice turn 2");
    assert!(va2.get("id").is_some() && vb2.get("id").is_some());

    shutdown_server(addr);
    let outcome = handle.join().expect("server thread");
    assert_eq!(outcome.served, 4);
    assert_eq!(outcome.ingress.len(), 4);

    // Same-session turns share a cache id; distinct sessions do not.
    let cache_ids: Vec<Option<u64>> = outcome.ingress.iter().map(|r| r.cache_id).collect();
    let distinct: std::collections::BTreeSet<_> = cache_ids.iter().flatten().collect();
    assert_eq!(
        distinct.len(),
        2,
        "two sessions -> two cache ids: {cache_ids:?}"
    );

    // The acceptance contract: replaying the recorded session log through
    // a fresh deterministic cluster reproduces the live report
    // byte-for-byte, at 1 and 4 worker threads.
    for threads in [1usize, 4] {
        let replayed = log::replay(&outcome.ingress, || {
            let mut sim = build_sim(2);
            sim.set_threads(threads);
            sim
        })
        .to_json()
        .to_json();
        assert_eq!(
            replayed, outcome.report_json,
            "replay at {threads} threads must match the live report"
        );
    }

    // And the serialized session log round-trips.
    let serialized = log::to_json(&outcome.ingress);
    let parsed = log::from_json(&serialized).expect("session log parses");
    assert_eq!(parsed, outcome.ingress);
}

#[test]
fn fleet_gateway_cold_starts_and_reports_load_states() {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        timescale: 500.0,
        tes: 2,
        fleet_models: 3,
        max_wall_ms: Some(30_000),
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run());

    // Before any request, every endpoint is advertised unloaded.
    let models = roundtrip(addr, b"GET /v1/models HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&models), 200);
    assert!(models.contains("fleet-000-generic-7b"), "{models}");
    assert!(models.contains("fleet-001-llama3-8b"), "{models}");
    assert!(!models.contains("\"loaded\""), "{models}");
    assert_eq!(models.matches("\"unloaded\"").count(), 3, "{models}");

    // An endpoint the registry does not know is rejected up front.
    let nope = post(
        addr,
        "/v1/completions",
        None,
        r#"{"prompt":"hi","max_tokens":2,"model":"no-such-model"}"#,
    );
    assert_eq!(status_of(&nope), 404, "{nope}");

    // A completion against an unloaded endpoint pays the cold start
    // in-band and still answers 200.
    let response = post(
        addr,
        "/v1/completions",
        None,
        r#"{"prompt":"wake up the fleet","max_tokens":2,"model":"fleet-000-generic-7b"}"#,
    );
    assert_eq!(status_of(&response), 200, "{response}");
    assert!(response.contains("\"text\""), "{response}");
    assert!(
        response.contains("\"model\":\"fleet-000-generic-7b\""),
        "response must echo the fleet endpoint, not the default model: {response}"
    );

    // The served endpoint now advertises as loaded.
    let models = roundtrip(addr, b"GET /v1/models HTTP/1.1\r\n\r\n");
    assert!(models.contains("\"loaded\""), "{models}");

    shutdown_server(addr);
    let outcome = handle.join().expect("server thread");
    assert_eq!(outcome.served, 1);
    assert_eq!(outcome.ingress.len(), 1);
    assert_eq!(outcome.ingress[0].model, Some(0), "model tag recorded");

    // The fleet session log replays byte-for-byte through the same
    // topology, cold start included.
    let mut replayed = log::replay(&outcome.ingress, || build_fleet_sim(2, 3));
    assert!(
        replayed.counters.get("fleet.cold_starts") >= 1,
        "replay must re-pay the cold start: {:?}",
        replayed.counters
    );
    assert_eq!(replayed.to_json().to_json(), outcome.report_json);
}

#[test]
fn max_requests_drains_and_exits_without_shutdown_call() {
    let (addr, handle) = start(Some(1));
    let response = post(
        addr,
        "/v1/completions",
        None,
        r#"{"prompt":"one and done","max_tokens":2}"#,
    );
    assert_eq!(status_of(&response), 200, "{response}");
    let outcome = handle.join().expect("server exits after max requests");
    assert_eq!(outcome.served, 1);
}
