//! # workloads — synthetic trace generators
//!
//! The paper evaluates on proprietary production traces; per the
//! substitution rule (DESIGN.md) this crate regenerates workloads matched
//! to every summary statistic the paper publishes:
//!
//! * the **internal chat trace** of Figure 4 — "roughly 2K input with 200
//!   output", Poisson arrivals at a configurable RPS;
//! * the **code-generation service trace** of Figure 6 — longer, heavily
//!   shared prompt contexts with short completions;
//! * the **fixed-shape grids** of Figure 5 — identical requests per
//!   heatmap cell at fixed RPS;
//! * **shared-prefix chat** for locality studies, with Zipf-popular
//!   conversation groups;
//! * **burst loads** for autoscaling studies;
//! * **fleet traces** — one arrival stream fanned out over hundreds of
//!   models with Zipf-skewed popularity, for serverless cold-start
//!   studies.
//!
//! Generators emit [`ReqSpec`]s — content is named by `(seed, len)` so the
//! platform can materialize identical token streams deterministically
//! without this crate depending on any tokenizer.

#![forbid(unsafe_code)]

pub mod fleet;
pub mod traces;

pub use fleet::{FleetReqSpec, FleetTrace};
pub use traces::{
    BurstLoad, BurstStream, ChatStream, ChatTrace, CodeGenStream, CodeGenTrace, FixedShape,
    FixedShapeStream, ReqSpec, ScaleStream, ScaleTrace, SharedPrefixChat, SharedPrefixStream,
};

use simcore::{SimRng, SimTime};

/// Poisson arrival process: `count` arrivals at `rps` starting at `start`.
pub fn poisson_arrivals(rng: &mut SimRng, start: SimTime, rps: f64, count: usize) -> Vec<SimTime> {
    assert!(rps > 0.0, "rps must be positive");
    let mut out = Vec::with_capacity(count);
    let mut t = start;
    for _ in 0..count {
        let gap = rng.exp(rps);
        t += simcore::SimDuration::from_secs_f64(gap);
        out.push(t);
    }
    out
}

/// Markov-modulated Poisson process with two phases (calm/burst), for
/// "LLM serving is highly variable" (§3, Challenge 3).
pub fn mmpp_arrivals(
    rng: &mut SimRng,
    start: SimTime,
    calm_rps: f64,
    burst_rps: f64,
    mean_phase_secs: f64,
    count: usize,
) -> Vec<SimTime> {
    assert!(calm_rps > 0.0 && burst_rps > 0.0 && mean_phase_secs > 0.0);
    let mut out = Vec::with_capacity(count);
    let mut t = start;
    let mut in_burst = false;
    let mut phase_left = rng.exp(1.0 / mean_phase_secs);
    while out.len() < count {
        let rate = if in_burst { burst_rps } else { calm_rps };
        let gap = rng.exp(rate);
        if gap > phase_left {
            t += simcore::SimDuration::from_secs_f64(phase_left);
            in_burst = !in_burst;
            phase_left = rng.exp(1.0 / mean_phase_secs);
            continue;
        }
        phase_left -= gap;
        t += simcore::SimDuration::from_secs_f64(gap);
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_close() {
        let mut rng = SimRng::seed_from_u64(1);
        let arr = poisson_arrivals(&mut rng, SimTime::ZERO, 10.0, 20_000);
        let span = arr.last().unwrap().as_secs_f64();
        let rate = arr.len() as f64 / span;
        assert!((rate - 10.0).abs() < 0.3, "rate {rate}");
    }

    #[test]
    fn poisson_is_sorted_and_deterministic() {
        let gen = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            poisson_arrivals(&mut rng, SimTime::from_secs(5), 2.0, 100)
        };
        let a = gen(7);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a[0] >= SimTime::from_secs(5));
        assert_eq!(a, gen(7));
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare squared-CV of inter-arrival gaps; MMPP must exceed the
        // Poisson value of ~1.
        let mut rng = SimRng::seed_from_u64(3);
        let arr = mmpp_arrivals(&mut rng, SimTime::ZERO, 1.0, 50.0, 5.0, 20_000);
        let gaps: Vec<f64> = arr
            .windows(2)
            .map(|w| w[1].since(w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 1.5, "MMPP cv^2 {cv2} should exceed Poisson's 1.0");
    }
}
