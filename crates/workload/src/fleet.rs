//! Multi-model fleet traces: one Poisson arrival process fanned out over
//! hundreds of registered models with Zipf-skewed popularity.
//!
//! The serverless fleet story (ROADMAP item 2) needs a workload where a
//! handful of head models stay hot while a long tail of cold models
//! arrives rarely — exactly the regime where cold-start economics
//! (storage tiers, multicast scale-out) separate from the pre-warmed
//! single-model world. The Zipf exponent controls how long that tail is.

use crate::poisson_arrivals;
use crate::traces::ReqSpec;
use serde::Serialize;
use simcore::{SimRng, SimTime};

fn clamp_len(x: f64, lo: usize, hi: usize) -> usize {
    (x.round() as i64).clamp(lo as i64, hi as i64) as usize
}

/// One fleet request: a plain [`ReqSpec`] tagged with the model it wants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetReqSpec {
    /// Index of the target model in the fleet registry.
    pub model: u32,
    /// The request body (arrival, prompt, output).
    pub spec: ReqSpec,
}

/// A skewed multi-model request stream.
#[derive(Debug, Clone, Copy)]
pub struct FleetTrace {
    /// Total requests per second across all models.
    pub rps: f64,
    /// Number of registered models in the fleet.
    pub models: usize,
    /// Zipf exponent of model popularity (1.0 ≈ classic head/tail skew).
    pub zipf_s: f64,
    /// Mean prompt length (tokens).
    pub mean_input: f64,
    /// Coefficient of variation of prompt length.
    pub input_cv: f64,
    /// Mean output length (tokens).
    pub mean_output: f64,
    /// Coefficient of variation of output length.
    pub output_cv: f64,
}

impl FleetTrace {
    /// The fleet-sweep configuration: `models` registered endpoints with
    /// classic Zipf(1.0) popularity and chat-shaped bodies short enough
    /// that cold-start latency, not decode, dominates the tail.
    pub fn skewed(models: usize, rps: f64) -> Self {
        FleetTrace {
            rps,
            models,
            zipf_s: 1.0,
            mean_input: 512.0,
            input_cv: 0.25,
            mean_output: 48.0,
            output_cv: 0.35,
        }
    }

    /// Generates `count` requests in arrival order.
    pub fn generate(&self, rng: &mut SimRng, count: usize) -> Vec<FleetReqSpec> {
        let arrivals = poisson_arrivals(rng, SimTime::ZERO, self.rps, count);
        arrivals
            .into_iter()
            .map(|arrival| FleetReqSpec {
                model: rng.zipf(self.models.max(1), self.zipf_s) as u32,
                spec: ReqSpec {
                    arrival,
                    prompt_seed: rng.next_u64(),
                    prompt_len: clamp_len(
                        rng.lognormal_mean_cv(self.mean_input, self.input_cv),
                        16,
                        16_000,
                    ),
                    shared_prefix: None,
                    output_len: clamp_len(
                        rng.lognormal_mean_cv(self.mean_output, self.output_cv),
                        1,
                        4_000,
                    ) as u32,
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_ordered() {
        let t = FleetTrace::skewed(128, 4.0);
        let a = t.generate(&mut SimRng::seed_from_u64(9), 200);
        let b = t.generate(&mut SimRng::seed_from_u64(9), 200);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].spec.arrival <= w[1].spec.arrival));
        assert!(a.iter().all(|r| (r.model as usize) < 128));
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let t = FleetTrace::skewed(100, 8.0);
        let reqs = t.generate(&mut SimRng::seed_from_u64(3), 4_000);
        let mut counts = vec![0usize; 100];
        for r in &reqs {
            counts[r.model as usize] += 1;
        }
        let head: usize = counts[..5].iter().sum();
        let tail: usize = counts[50..].iter().sum();
        assert!(
            head > reqs.len() / 3,
            "top-5 models should dominate: head={head}"
        );
        assert!(head > tail, "head must outweigh the entire tail half");
        // The tail is still populated: a fleet trace must actually visit
        // cold models, or there is nothing serverless to measure.
        let touched = counts.iter().filter(|&&c| c > 0).count();
        assert!(touched > 50, "only {touched} of 100 models ever requested");
    }
}
