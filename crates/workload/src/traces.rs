//! Trace generators matched to the paper's published workload statistics.
//!
//! Every generator exists in two forms with byte-identical output:
//! `generate` materializes a `Vec<ReqSpec>`, and `stream` returns a seeded
//! lazy iterator that draws one request at a time (arrival gap first, then
//! the body). `generate` is implemented as `stream(..).collect()`, so a
//! million-request trace can be fed to the simulator in O(1) memory via
//! `stream` without changing a single byte of the workload.

use serde::Serialize;
use simcore::{SimDuration, SimRng, SimTime};

/// One request specification. Prompt content is `(shared prefix tokens) ++
/// (unique tokens)`, both named by `(seed, len)` pairs the platform
/// materializes deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReqSpec {
    /// Arrival time at the frontend.
    pub arrival: SimTime,
    /// Seed of the unique portion of the prompt.
    pub prompt_seed: u64,
    /// Total prompt length in tokens (prefix + unique).
    pub prompt_len: usize,
    /// Optional shared prefix: `(seed, tokens)`; `tokens <= prompt_len`.
    pub shared_prefix: Option<(u64, usize)>,
    /// Decode length (ground truth; schedulers only see predictions).
    pub output_len: u32,
}

impl ReqSpec {
    /// Length of the unique (non-shared) prompt portion.
    pub fn unique_len(&self) -> usize {
        self.prompt_len - self.shared_prefix.map_or(0, |(_, l)| l)
    }
}

fn clamp_len(x: f64, lo: usize, hi: usize) -> usize {
    (x.round() as i64).clamp(lo as i64, hi as i64) as usize
}

/// The internal chat trace (Figure 4): "roughly 2K input with 200 output",
/// Poisson arrivals.
#[derive(Debug, Clone, Copy)]
pub struct ChatTrace {
    /// Requests per second.
    pub rps: f64,
    /// Mean prompt length (tokens).
    pub mean_input: f64,
    /// Coefficient of variation of prompt length.
    pub input_cv: f64,
    /// Mean output length (tokens).
    pub mean_output: f64,
    /// Coefficient of variation of output length.
    pub output_cv: f64,
}

impl ChatTrace {
    /// The Figure 4 configuration at a given RPS.
    pub fn paper(rps: f64) -> Self {
        ChatTrace {
            rps,
            mean_input: 2048.0,
            input_cv: 0.25,
            mean_output: 200.0,
            output_cv: 0.35,
        }
    }

    /// Seeded lazy iterator over `count` requests; one `next()` draws one
    /// arrival gap and one request body.
    pub fn stream(&self, rng: SimRng, count: usize) -> ChatStream {
        ChatStream {
            cfg: *self,
            rng,
            t: SimTime::ZERO,
            remaining: count,
        }
    }

    /// Generates `count` requests (materialized [`ChatTrace::stream`]).
    pub fn generate(&self, rng: &mut SimRng, count: usize) -> Vec<ReqSpec> {
        self.stream(rng.fork(), count).collect()
    }
}

/// Lazy iterator form of [`ChatTrace`].
pub struct ChatStream {
    cfg: ChatTrace,
    rng: SimRng,
    t: SimTime,
    remaining: usize,
}

impl Iterator for ChatStream {
    type Item = ReqSpec;

    fn next(&mut self) -> Option<ReqSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += SimDuration::from_secs_f64(self.rng.exp(self.cfg.rps));
        Some(ReqSpec {
            arrival: self.t,
            prompt_seed: self.rng.next_u64(),
            prompt_len: clamp_len(
                self.rng
                    .lognormal_mean_cv(self.cfg.mean_input, self.cfg.input_cv),
                16,
                16_000,
            ),
            shared_prefix: None,
            output_len: clamp_len(
                self.rng
                    .lognormal_mean_cv(self.cfg.mean_output, self.cfg.output_cv),
                1,
                4_000,
            ) as u32,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// The code-generation service trace (Figure 6): long prompts dominated by
/// shared repository/file contexts, short completions. Shared contexts are
/// Zipf-popular, so locality-aware scheduling has real structure to exploit.
#[derive(Debug, Clone, Copy)]
pub struct CodeGenTrace {
    /// Requests per second.
    pub rps: f64,
    /// Number of distinct shared contexts (repos/sessions).
    pub contexts: usize,
    /// Zipf exponent of context popularity.
    pub zipf_s: f64,
    /// Shared context length (tokens).
    pub context_len: usize,
    /// Mean unique suffix length.
    pub mean_suffix: f64,
    /// Mean completion length.
    pub mean_output: f64,
    /// Fraction of requests that reuse a shared context at all.
    pub shared_fraction: f64,
}

impl CodeGenTrace {
    /// The Figure 6 configuration at a given RPS.
    pub fn paper(rps: f64) -> Self {
        CodeGenTrace {
            rps,
            contexts: 32,
            zipf_s: 1.0,
            context_len: 3072,
            mean_suffix: 512.0,
            mean_output: 256.0,
            shared_fraction: 0.7,
        }
    }

    /// Seeded lazy iterator over `count` requests.
    pub fn stream(&self, rng: SimRng, count: usize) -> CodeGenStream {
        CodeGenStream {
            cfg: *self,
            rng,
            t: SimTime::ZERO,
            remaining: count,
        }
    }

    /// Generates `count` requests (materialized [`CodeGenTrace::stream`]).
    pub fn generate(&self, rng: &mut SimRng, count: usize) -> Vec<ReqSpec> {
        self.stream(rng.fork(), count).collect()
    }
}

/// Lazy iterator form of [`CodeGenTrace`].
pub struct CodeGenStream {
    cfg: CodeGenTrace,
    rng: SimRng,
    t: SimTime,
    remaining: usize,
}

impl Iterator for CodeGenStream {
    type Item = ReqSpec;

    fn next(&mut self) -> Option<ReqSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += SimDuration::from_secs_f64(self.rng.exp(self.cfg.rps));
        let shared = self.rng.chance(self.cfg.shared_fraction);
        let prefix = if shared {
            let ctx = self.rng.zipf(self.cfg.contexts, self.cfg.zipf_s);
            // Context seeds are stable across the trace.
            Some((0xC0DE_0000 + ctx as u64, self.cfg.context_len))
        } else {
            None
        };
        let suffix = clamp_len(
            self.rng.lognormal_mean_cv(self.cfg.mean_suffix, 0.6),
            16,
            8_000,
        );
        let prompt_len = prefix.map_or(0, |(_, l)| l) + suffix;
        Some(ReqSpec {
            arrival: self.t,
            prompt_seed: self.rng.next_u64(),
            prompt_len,
            shared_prefix: prefix,
            output_len: clamp_len(
                self.rng.lognormal_mean_cv(self.cfg.mean_output, 0.5),
                1,
                2_000,
            ) as u32,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Fixed-shape batches for the Figure 5 heatmap: identical requests at a
/// fixed RPS, one batch per heatmap cell.
#[derive(Debug, Clone, Copy)]
pub struct FixedShape {
    /// Prompt length.
    pub prefill: usize,
    /// Decode length.
    pub decode: u32,
    /// Requests per second.
    pub rps: f64,
    /// Batch size (requests in the cell's run).
    pub count: usize,
}

impl FixedShape {
    /// Seeded lazy iterator over the batch.
    pub fn stream(&self, rng: SimRng) -> FixedShapeStream {
        FixedShapeStream {
            cfg: *self,
            rng,
            t: SimTime::ZERO,
            remaining: self.count,
        }
    }

    /// Generates the batch (materialized [`FixedShape::stream`]); prompts
    /// are mutually distinct (no accidental prefix-cache interference
    /// inside a cell).
    pub fn generate(&self, rng: &mut SimRng) -> Vec<ReqSpec> {
        self.stream(rng.fork()).collect()
    }
}

/// Lazy iterator form of [`FixedShape`].
pub struct FixedShapeStream {
    cfg: FixedShape,
    rng: SimRng,
    t: SimTime,
    remaining: usize,
}

impl Iterator for FixedShapeStream {
    type Item = ReqSpec;

    fn next(&mut self) -> Option<ReqSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += SimDuration::from_secs_f64(self.rng.exp(self.cfg.rps));
        Some(ReqSpec {
            arrival: self.t,
            prompt_seed: self.rng.next_u64(),
            prompt_len: self.cfg.prefill,
            shared_prefix: None,
            output_len: self.cfg.decode,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// A scale-study workload: fixed request shape at a given RPS across a
/// population of `users`, each with a stable prompt seed — so repeat
/// requests from one user are prefix-cacheable, as in production, while
/// distinct users never collide. Designed for million-request sweeps: use
/// [`ScaleTrace::stream`] and the cluster's streaming injection so the
/// trace never materializes.
#[derive(Debug, Clone, Copy)]
pub struct ScaleTrace {
    /// Prompt length.
    pub prefill: usize,
    /// Decode length.
    pub decode: u32,
    /// Requests per second.
    pub rps: f64,
    /// Total requests.
    pub count: usize,
    /// Distinct users (each drawn uniformly per request).
    pub users: usize,
}

impl ScaleTrace {
    /// Seeded lazy iterator over the trace.
    pub fn stream(&self, rng: SimRng) -> ScaleStream {
        assert!(self.users > 0, "users must be positive");
        ScaleStream {
            cfg: *self,
            rng,
            t: SimTime::ZERO,
            remaining: self.count,
        }
    }

    /// Generates the trace (materialized [`ScaleTrace::stream`]) — for
    /// A/B-testing streaming injection; prefer `stream` at scale.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<ReqSpec> {
        self.stream(rng.fork()).collect()
    }
}

/// Lazy iterator form of [`ScaleTrace`].
pub struct ScaleStream {
    cfg: ScaleTrace,
    rng: SimRng,
    t: SimTime,
    remaining: usize,
}

impl Iterator for ScaleStream {
    type Item = ReqSpec;

    fn next(&mut self) -> Option<ReqSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += SimDuration::from_secs_f64(self.rng.exp(self.cfg.rps));
        let user = self.rng.index(self.cfg.users) as u64;
        Some(ReqSpec {
            arrival: self.t,
            prompt_seed: 0x5CA1_E000_0000 ^ user,
            prompt_len: self.cfg.prefill,
            shared_prefix: None,
            output_len: self.cfg.decode,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Multi-turn chat with shared conversation prefixes (locality studies):
/// each conversation's next turn extends its previous prompt.
#[derive(Debug, Clone, Copy)]
pub struct SharedPrefixChat {
    /// Requests per second (across all conversations).
    pub rps: f64,
    /// Concurrent conversations.
    pub conversations: usize,
    /// Zipf exponent of conversation activity.
    pub zipf_s: f64,
    /// First-turn prompt length.
    pub first_turn_len: usize,
    /// Tokens added per turn (user message + previous reply).
    pub turn_growth: usize,
    /// Mean reply length.
    pub mean_output: f64,
}

impl SharedPrefixChat {
    /// A typical interactive configuration.
    pub fn standard(rps: f64) -> Self {
        SharedPrefixChat {
            rps,
            conversations: 24,
            zipf_s: 0.8,
            first_turn_len: 512,
            turn_growth: 256,
            mean_output: 180.0,
        }
    }

    /// Seeded lazy iterator over `count` turns.
    pub fn stream(&self, rng: SimRng, count: usize) -> SharedPrefixStream {
        SharedPrefixStream {
            cfg: *self,
            rng,
            t: SimTime::ZERO,
            remaining: count,
            turn_of: vec![0; self.conversations],
        }
    }

    /// Generates `count` turns (materialized [`SharedPrefixChat::stream`]).
    /// Turn `k` of conversation `c` shares its entire prompt-prefix with
    /// turn `k+1`.
    pub fn generate(&self, rng: &mut SimRng, count: usize) -> Vec<ReqSpec> {
        self.stream(rng.fork(), count).collect()
    }
}

/// Lazy iterator form of [`SharedPrefixChat`]. Holds one counter per
/// conversation — O(conversations), independent of trace length.
pub struct SharedPrefixStream {
    cfg: SharedPrefixChat,
    rng: SimRng,
    t: SimTime,
    remaining: usize,
    turn_of: Vec<usize>,
}

impl Iterator for SharedPrefixStream {
    type Item = ReqSpec;

    fn next(&mut self) -> Option<ReqSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += SimDuration::from_secs_f64(self.rng.exp(self.cfg.rps));
        let c = self.rng.zipf(self.cfg.conversations, self.cfg.zipf_s);
        let turn = self.turn_of[c];
        self.turn_of[c] += 1;
        let prefix_len = self.cfg.first_turn_len + turn * self.cfg.turn_growth;
        Some(ReqSpec {
            arrival: self.t,
            // The "unique" part is the latest user message; its seed is
            // derived so that the *next* turn reproduces it as part of
            // its prefix.
            prompt_seed: conversation_seed(c as u64, turn as u64),
            prompt_len: prefix_len + self.cfg.turn_growth,
            shared_prefix: Some((conversation_prefix_seed(c as u64), prefix_len)),
            output_len: clamp_len(
                self.rng.lognormal_mean_cv(self.cfg.mean_output, 0.4),
                1,
                1_000,
            ) as u32,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Seed of a conversation's growing shared prefix. All turns of one
/// conversation share it, so turn k's prompt is a strict prefix of turn
/// k+1's.
pub fn conversation_prefix_seed(conversation: u64) -> u64 {
    0xCAFE_0000_0000 ^ conversation
}

fn conversation_seed(conversation: u64, turn: u64) -> u64 {
    0xBEEF_0000 ^ (conversation << 20) ^ turn
}

/// A step-burst load for autoscaling studies: `base_rps` until
/// `burst_at`, then `burst_rps` for `burst_secs`, then back.
#[derive(Debug, Clone, Copy)]
pub struct BurstLoad {
    /// Baseline request rate.
    pub base_rps: f64,
    /// Burst request rate.
    pub burst_rps: f64,
    /// Burst start.
    pub burst_at: SimTime,
    /// Burst duration in seconds.
    pub burst_secs: f64,
    /// Chat-shaped request bodies.
    pub shape: ChatTrace,
}

impl BurstLoad {
    /// Seeded lazy iterator over requests covering `total_secs` of wall
    /// time.
    pub fn stream(&self, rng: SimRng, total_secs: f64) -> BurstStream {
        BurstStream {
            cfg: *self,
            rng,
            t: SimTime::ZERO,
            end: SimTime::ZERO + SimDuration::from_secs_f64(total_secs),
        }
    }

    /// Generates requests covering `total_secs` of wall time (materialized
    /// [`BurstLoad::stream`]).
    pub fn generate(&self, rng: &mut SimRng, total_secs: f64) -> Vec<ReqSpec> {
        self.stream(rng.fork(), total_secs).collect()
    }
}

/// Lazy iterator form of [`BurstLoad`].
pub struct BurstStream {
    cfg: BurstLoad,
    rng: SimRng,
    t: SimTime,
    end: SimTime,
}

impl Iterator for BurstStream {
    type Item = ReqSpec;

    fn next(&mut self) -> Option<ReqSpec> {
        if self.t >= self.end {
            return None;
        }
        let burst_end = self.cfg.burst_at + SimDuration::from_secs_f64(self.cfg.burst_secs);
        let rate = if self.t >= self.cfg.burst_at && self.t < burst_end {
            self.cfg.burst_rps
        } else {
            self.cfg.base_rps
        };
        self.t += SimDuration::from_secs_f64(self.rng.exp(rate));
        if self.t >= self.end {
            return None;
        }
        Some(ReqSpec {
            arrival: self.t,
            prompt_seed: self.rng.next_u64(),
            prompt_len: clamp_len(
                self.rng
                    .lognormal_mean_cv(self.cfg.shape.mean_input, self.cfg.shape.input_cv),
                16,
                16_000,
            ),
            shared_prefix: None,
            output_len: clamp_len(
                self.rng
                    .lognormal_mean_cv(self.cfg.shape.mean_output, self.cfg.shape.output_cv),
                1,
                4_000,
            ) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(11)
    }

    #[test]
    fn chat_trace_matches_published_stats() {
        let reqs = ChatTrace::paper(1.0).generate(&mut rng(), 5_000);
        let mean_in: f64 =
            reqs.iter().map(|r| r.prompt_len as f64).sum::<f64>() / reqs.len() as f64;
        let mean_out: f64 =
            reqs.iter().map(|r| r.output_len as f64).sum::<f64>() / reqs.len() as f64;
        assert!((mean_in - 2048.0).abs() < 60.0, "mean input {mean_in}");
        assert!((mean_out - 200.0).abs() < 8.0, "mean output {mean_out}");
    }

    #[test]
    fn codegen_trace_reuses_popular_contexts() {
        let reqs = CodeGenTrace::paper(10.0).generate(&mut rng(), 5_000);
        let shared = reqs.iter().filter(|r| r.shared_prefix.is_some()).count();
        let frac = shared as f64 / reqs.len() as f64;
        assert!((frac - 0.7).abs() < 0.03, "shared fraction {frac}");
        // Context popularity must be skewed: the most common context
        // should appear far more often than 1/contexts.
        let mut counts = std::collections::HashMap::new();
        for r in &reqs {
            if let Some((seed, _)) = r.shared_prefix {
                *counts.entry(seed).or_insert(0usize) += 1;
            }
        }
        let max = *counts.values().max().unwrap();
        assert!(max as f64 / shared as f64 > 2.0 / 32.0 * 3.0);
    }

    #[test]
    fn fixed_shape_is_uniform() {
        let w = FixedShape {
            prefill: 2048,
            decode: 128,
            rps: 0.5,
            count: 64,
        };
        let reqs = w.generate(&mut rng());
        assert_eq!(reqs.len(), 64);
        assert!(reqs
            .iter()
            .all(|r| r.prompt_len == 2048 && r.output_len == 128));
        // Distinct seeds: no accidental prefix sharing.
        let mut seeds: Vec<u64> = reqs.iter().map(|r| r.prompt_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn multi_turn_prompts_grow_within_conversation() {
        let w = SharedPrefixChat::standard(5.0);
        let reqs = w.generate(&mut rng(), 2_000);
        // Group by conversation prefix seed; lengths must increase with
        // turn order.
        let mut by_conv: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for r in &reqs {
            let (seed, len) = r.shared_prefix.unwrap();
            by_conv.entry(seed).or_default().push(len);
        }
        assert!(by_conv.len() > 4, "several conversations active");
        for lens in by_conv.values() {
            for w in lens.windows(2) {
                assert!(w[1] >= w[0], "prefix grows monotonically per turn");
            }
        }
    }

    #[test]
    fn burst_load_changes_rate() {
        let w = BurstLoad {
            base_rps: 1.0,
            burst_rps: 30.0,
            burst_at: SimTime::from_secs(100),
            burst_secs: 50.0,
            shape: ChatTrace::paper(1.0),
        };
        let reqs = w.generate(&mut rng(), 300.0);
        let in_burst = reqs
            .iter()
            .filter(|r| r.arrival >= SimTime::from_secs(100) && r.arrival < SimTime::from_secs(150))
            .count();
        let before = reqs
            .iter()
            .filter(|r| r.arrival < SimTime::from_secs(100))
            .count();
        // 50 s of 30 rps vs 100 s of 1 rps.
        assert!(in_burst > 1_000, "burst count {in_burst}");
        assert!(before < 150, "calm count {before}");
    }

    #[test]
    fn specs_are_deterministic_per_seed() {
        let a = ChatTrace::paper(2.0).generate(&mut SimRng::seed_from_u64(5), 100);
        let b = ChatTrace::paper(2.0).generate(&mut SimRng::seed_from_u64(5), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn streams_match_generate_byte_for_byte() {
        // Every generator's lazy stream must reproduce its materialized
        // form exactly — `generate` is defined as `stream(..).collect()`,
        // and this pins that the fork seeding stays aligned.
        let chat = ChatTrace::paper(3.0);
        assert_eq!(
            chat.generate(&mut SimRng::seed_from_u64(9), 500),
            chat.stream(SimRng::seed_from_u64(9).fork(), 500)
                .collect::<Vec<_>>()
        );
        let code = CodeGenTrace::paper(8.0);
        assert_eq!(
            code.generate(&mut SimRng::seed_from_u64(9), 500),
            code.stream(SimRng::seed_from_u64(9).fork(), 500)
                .collect::<Vec<_>>()
        );
        let fixed = FixedShape {
            prefill: 1024,
            decode: 64,
            rps: 2.0,
            count: 200,
        };
        assert_eq!(
            fixed.generate(&mut SimRng::seed_from_u64(9)),
            fixed
                .stream(SimRng::seed_from_u64(9).fork())
                .collect::<Vec<_>>()
        );
        let multi = SharedPrefixChat::standard(4.0);
        assert_eq!(
            multi.generate(&mut SimRng::seed_from_u64(9), 500),
            multi
                .stream(SimRng::seed_from_u64(9).fork(), 500)
                .collect::<Vec<_>>()
        );
        let burst = BurstLoad {
            base_rps: 1.0,
            burst_rps: 20.0,
            burst_at: SimTime::from_secs(30),
            burst_secs: 10.0,
            shape: ChatTrace::paper(1.0),
        };
        assert_eq!(
            burst.generate(&mut SimRng::seed_from_u64(9), 90.0),
            burst
                .stream(SimRng::seed_from_u64(9).fork(), 90.0)
                .collect::<Vec<_>>()
        );
        let scale = ScaleTrace {
            prefill: 512,
            decode: 32,
            rps: 50.0,
            count: 1_000,
            users: 64,
        };
        assert_eq!(
            scale.generate(&mut SimRng::seed_from_u64(9)),
            scale
                .stream(SimRng::seed_from_u64(9).fork())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn scale_trace_users_bound_seed_population() {
        let scale = ScaleTrace {
            prefill: 256,
            decode: 16,
            rps: 100.0,
            count: 5_000,
            users: 32,
        };
        let reqs = scale.generate(&mut rng());
        let mut seeds: Vec<u64> = reqs.iter().map(|r| r.prompt_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert!(seeds.len() <= 32, "at most one seed per user");
        assert!(seeds.len() > 16, "most users active at this volume");
    }

    #[test]
    fn unique_len_subtracts_prefix() {
        let r = ReqSpec {
            arrival: SimTime::ZERO,
            prompt_seed: 1,
            prompt_len: 1000,
            shared_prefix: Some((9, 600)),
            output_len: 10,
        };
        assert_eq!(r.unique_len(), 400);
    }
}
