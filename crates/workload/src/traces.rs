//! Trace generators matched to the paper's published workload statistics.

use crate::poisson_arrivals;
use serde::Serialize;
use simcore::{SimRng, SimTime};

/// One request specification. Prompt content is `(shared prefix tokens) ++
/// (unique tokens)`, both named by `(seed, len)` pairs the platform
/// materializes deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReqSpec {
    /// Arrival time at the frontend.
    pub arrival: SimTime,
    /// Seed of the unique portion of the prompt.
    pub prompt_seed: u64,
    /// Total prompt length in tokens (prefix + unique).
    pub prompt_len: usize,
    /// Optional shared prefix: `(seed, tokens)`; `tokens <= prompt_len`.
    pub shared_prefix: Option<(u64, usize)>,
    /// Decode length (ground truth; schedulers only see predictions).
    pub output_len: u32,
}

impl ReqSpec {
    /// Length of the unique (non-shared) prompt portion.
    pub fn unique_len(&self) -> usize {
        self.prompt_len - self.shared_prefix.map_or(0, |(_, l)| l)
    }
}

fn clamp_len(x: f64, lo: usize, hi: usize) -> usize {
    (x.round() as i64).clamp(lo as i64, hi as i64) as usize
}

/// The internal chat trace (Figure 4): "roughly 2K input with 200 output",
/// Poisson arrivals.
#[derive(Debug, Clone, Copy)]
pub struct ChatTrace {
    /// Requests per second.
    pub rps: f64,
    /// Mean prompt length (tokens).
    pub mean_input: f64,
    /// Coefficient of variation of prompt length.
    pub input_cv: f64,
    /// Mean output length (tokens).
    pub mean_output: f64,
    /// Coefficient of variation of output length.
    pub output_cv: f64,
}

impl ChatTrace {
    /// The Figure 4 configuration at a given RPS.
    pub fn paper(rps: f64) -> Self {
        ChatTrace {
            rps,
            mean_input: 2048.0,
            input_cv: 0.25,
            mean_output: 200.0,
            output_cv: 0.35,
        }
    }

    /// Generates `count` requests.
    pub fn generate(&self, rng: &mut SimRng, count: usize) -> Vec<ReqSpec> {
        let arrivals = poisson_arrivals(rng, SimTime::ZERO, self.rps, count);
        arrivals
            .into_iter()
            .map(|arrival| ReqSpec {
                arrival,
                prompt_seed: rng.next_u64(),
                prompt_len: clamp_len(
                    rng.lognormal_mean_cv(self.mean_input, self.input_cv),
                    16,
                    16_000,
                ),
                shared_prefix: None,
                output_len: clamp_len(
                    rng.lognormal_mean_cv(self.mean_output, self.output_cv),
                    1,
                    4_000,
                ) as u32,
            })
            .collect()
    }
}

/// The code-generation service trace (Figure 6): long prompts dominated by
/// shared repository/file contexts, short completions. Shared contexts are
/// Zipf-popular, so locality-aware scheduling has real structure to exploit.
#[derive(Debug, Clone, Copy)]
pub struct CodeGenTrace {
    /// Requests per second.
    pub rps: f64,
    /// Number of distinct shared contexts (repos/sessions).
    pub contexts: usize,
    /// Zipf exponent of context popularity.
    pub zipf_s: f64,
    /// Shared context length (tokens).
    pub context_len: usize,
    /// Mean unique suffix length.
    pub mean_suffix: f64,
    /// Mean completion length.
    pub mean_output: f64,
    /// Fraction of requests that reuse a shared context at all.
    pub shared_fraction: f64,
}

impl CodeGenTrace {
    /// The Figure 6 configuration at a given RPS.
    pub fn paper(rps: f64) -> Self {
        CodeGenTrace {
            rps,
            contexts: 32,
            zipf_s: 1.0,
            context_len: 3072,
            mean_suffix: 512.0,
            mean_output: 256.0,
            shared_fraction: 0.7,
        }
    }

    /// Generates `count` requests.
    pub fn generate(&self, rng: &mut SimRng, count: usize) -> Vec<ReqSpec> {
        let arrivals = poisson_arrivals(rng, SimTime::ZERO, self.rps, count);
        arrivals
            .into_iter()
            .map(|arrival| {
                let shared = rng.chance(self.shared_fraction);
                let prefix = if shared {
                    let ctx = rng.zipf(self.contexts, self.zipf_s);
                    // Context seeds are stable across the trace.
                    Some((0xC0DE_0000 + ctx as u64, self.context_len))
                } else {
                    None
                };
                let suffix = clamp_len(rng.lognormal_mean_cv(self.mean_suffix, 0.6), 16, 8_000);
                let prompt_len = prefix.map_or(0, |(_, l)| l) + suffix;
                ReqSpec {
                    arrival,
                    prompt_seed: rng.next_u64(),
                    prompt_len,
                    shared_prefix: prefix,
                    output_len: clamp_len(rng.lognormal_mean_cv(self.mean_output, 0.5), 1, 2_000)
                        as u32,
                }
            })
            .collect()
    }
}

/// Fixed-shape batches for the Figure 5 heatmap: identical requests at a
/// fixed RPS, one batch per heatmap cell.
#[derive(Debug, Clone, Copy)]
pub struct FixedShape {
    /// Prompt length.
    pub prefill: usize,
    /// Decode length.
    pub decode: u32,
    /// Requests per second.
    pub rps: f64,
    /// Batch size (requests in the cell's run).
    pub count: usize,
}

impl FixedShape {
    /// Generates the batch; prompts are mutually distinct (no accidental
    /// prefix-cache interference inside a cell).
    pub fn generate(&self, rng: &mut SimRng) -> Vec<ReqSpec> {
        let arrivals = poisson_arrivals(rng, SimTime::ZERO, self.rps, self.count);
        arrivals
            .into_iter()
            .map(|arrival| ReqSpec {
                arrival,
                prompt_seed: rng.next_u64(),
                prompt_len: self.prefill,
                shared_prefix: None,
                output_len: self.decode,
            })
            .collect()
    }
}

/// Multi-turn chat with shared conversation prefixes (locality studies):
/// each conversation's next turn extends its previous prompt.
#[derive(Debug, Clone, Copy)]
pub struct SharedPrefixChat {
    /// Requests per second (across all conversations).
    pub rps: f64,
    /// Concurrent conversations.
    pub conversations: usize,
    /// Zipf exponent of conversation activity.
    pub zipf_s: f64,
    /// First-turn prompt length.
    pub first_turn_len: usize,
    /// Tokens added per turn (user message + previous reply).
    pub turn_growth: usize,
    /// Mean reply length.
    pub mean_output: f64,
}

impl SharedPrefixChat {
    /// A typical interactive configuration.
    pub fn standard(rps: f64) -> Self {
        SharedPrefixChat {
            rps,
            conversations: 24,
            zipf_s: 0.8,
            first_turn_len: 512,
            turn_growth: 256,
            mean_output: 180.0,
        }
    }

    /// Generates `count` turns. Turn `k` of conversation `c` shares its
    /// entire prompt-prefix with turn `k+1`.
    pub fn generate(&self, rng: &mut SimRng, count: usize) -> Vec<ReqSpec> {
        let arrivals = poisson_arrivals(rng, SimTime::ZERO, self.rps, count);
        let mut turn_of: Vec<usize> = vec![0; self.conversations];
        arrivals
            .into_iter()
            .map(|arrival| {
                let c = rng.zipf(self.conversations, self.zipf_s);
                let turn = turn_of[c];
                turn_of[c] += 1;
                let prefix_len = self.first_turn_len + turn * self.turn_growth;
                ReqSpec {
                    arrival,
                    // The "unique" part is the latest user message; its seed
                    // is derived so that the *next* turn reproduces it as
                    // part of its prefix.
                    prompt_seed: conversation_seed(c as u64, turn as u64),
                    prompt_len: prefix_len + self.turn_growth,
                    shared_prefix: Some((conversation_prefix_seed(c as u64), prefix_len)),
                    output_len: clamp_len(rng.lognormal_mean_cv(self.mean_output, 0.4), 1, 1_000)
                        as u32,
                }
            })
            .collect()
    }
}

/// Seed of a conversation's growing shared prefix. All turns of one
/// conversation share it, so turn k's prompt is a strict prefix of turn
/// k+1's.
pub fn conversation_prefix_seed(conversation: u64) -> u64 {
    0xCAFE_0000_0000 ^ conversation
}

fn conversation_seed(conversation: u64, turn: u64) -> u64 {
    0xBEEF_0000 ^ (conversation << 20) ^ turn
}

/// A step-burst load for autoscaling studies: `base_rps` until
/// `burst_at`, then `burst_rps` for `burst_secs`, then back.
#[derive(Debug, Clone, Copy)]
pub struct BurstLoad {
    /// Baseline request rate.
    pub base_rps: f64,
    /// Burst request rate.
    pub burst_rps: f64,
    /// Burst start.
    pub burst_at: SimTime,
    /// Burst duration in seconds.
    pub burst_secs: f64,
    /// Chat-shaped request bodies.
    pub shape: ChatTrace,
}

impl BurstLoad {
    /// Generates requests covering `total_secs` of wall time.
    pub fn generate(&self, rng: &mut SimRng, total_secs: f64) -> Vec<ReqSpec> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + simcore::SimDuration::from_secs_f64(total_secs);
        let burst_end = self.burst_at + simcore::SimDuration::from_secs_f64(self.burst_secs);
        while t < end {
            let rate = if t >= self.burst_at && t < burst_end {
                self.burst_rps
            } else {
                self.base_rps
            };
            t += simcore::SimDuration::from_secs_f64(rng.exp(rate));
            if t >= end {
                break;
            }
            out.push(ReqSpec {
                arrival: t,
                prompt_seed: rng.next_u64(),
                prompt_len: clamp_len(
                    rng.lognormal_mean_cv(self.shape.mean_input, self.shape.input_cv),
                    16,
                    16_000,
                ),
                shared_prefix: None,
                output_len: clamp_len(
                    rng.lognormal_mean_cv(self.shape.mean_output, self.shape.output_cv),
                    1,
                    4_000,
                ) as u32,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(11)
    }

    #[test]
    fn chat_trace_matches_published_stats() {
        let reqs = ChatTrace::paper(1.0).generate(&mut rng(), 5_000);
        let mean_in: f64 =
            reqs.iter().map(|r| r.prompt_len as f64).sum::<f64>() / reqs.len() as f64;
        let mean_out: f64 =
            reqs.iter().map(|r| r.output_len as f64).sum::<f64>() / reqs.len() as f64;
        assert!((mean_in - 2048.0).abs() < 60.0, "mean input {mean_in}");
        assert!((mean_out - 200.0).abs() < 8.0, "mean output {mean_out}");
    }

    #[test]
    fn codegen_trace_reuses_popular_contexts() {
        let reqs = CodeGenTrace::paper(10.0).generate(&mut rng(), 5_000);
        let shared = reqs.iter().filter(|r| r.shared_prefix.is_some()).count();
        let frac = shared as f64 / reqs.len() as f64;
        assert!((frac - 0.7).abs() < 0.03, "shared fraction {frac}");
        // Context popularity must be skewed: the most common context
        // should appear far more often than 1/contexts.
        let mut counts = std::collections::HashMap::new();
        for r in &reqs {
            if let Some((seed, _)) = r.shared_prefix {
                *counts.entry(seed).or_insert(0usize) += 1;
            }
        }
        let max = *counts.values().max().unwrap();
        assert!(max as f64 / shared as f64 > 2.0 / 32.0 * 3.0);
    }

    #[test]
    fn fixed_shape_is_uniform() {
        let w = FixedShape {
            prefill: 2048,
            decode: 128,
            rps: 0.5,
            count: 64,
        };
        let reqs = w.generate(&mut rng());
        assert_eq!(reqs.len(), 64);
        assert!(reqs
            .iter()
            .all(|r| r.prompt_len == 2048 && r.output_len == 128));
        // Distinct seeds: no accidental prefix sharing.
        let mut seeds: Vec<u64> = reqs.iter().map(|r| r.prompt_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn multi_turn_prompts_grow_within_conversation() {
        let w = SharedPrefixChat::standard(5.0);
        let reqs = w.generate(&mut rng(), 2_000);
        // Group by conversation prefix seed; lengths must increase with
        // turn order.
        let mut by_conv: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for r in &reqs {
            let (seed, len) = r.shared_prefix.unwrap();
            by_conv.entry(seed).or_default().push(len);
        }
        assert!(by_conv.len() > 4, "several conversations active");
        for lens in by_conv.values() {
            for w in lens.windows(2) {
                assert!(w[1] >= w[0], "prefix grows monotonically per turn");
            }
        }
    }

    #[test]
    fn burst_load_changes_rate() {
        let w = BurstLoad {
            base_rps: 1.0,
            burst_rps: 30.0,
            burst_at: SimTime::from_secs(100),
            burst_secs: 50.0,
            shape: ChatTrace::paper(1.0),
        };
        let reqs = w.generate(&mut rng(), 300.0);
        let in_burst = reqs
            .iter()
            .filter(|r| r.arrival >= SimTime::from_secs(100) && r.arrival < SimTime::from_secs(150))
            .count();
        let before = reqs
            .iter()
            .filter(|r| r.arrival < SimTime::from_secs(100))
            .count();
        // 50 s of 30 rps vs 100 s of 1 rps.
        assert!(in_burst > 1_000, "burst count {in_burst}");
        assert!(before < 150, "calm count {before}");
    }

    #[test]
    fn specs_are_deterministic_per_seed() {
        let a = ChatTrace::paper(2.0).generate(&mut SimRng::seed_from_u64(5), 100);
        let b = ChatTrace::paper(2.0).generate(&mut SimRng::seed_from_u64(5), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn unique_len_subtracts_prefix() {
        let r = ReqSpec {
            arrival: SimTime::ZERO,
            prompt_seed: 1,
            prompt_len: 1000,
            shared_prefix: Some((9, 600)),
            output_len: 10,
        };
        assert_eq!(r.unique_len(), 400);
    }
}
