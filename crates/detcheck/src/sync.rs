//! Shim synchronization primitives with std-compatible APIs.
//!
//! Each type wraps its `std::sync` counterpart and adds a mode switch:
//! when the calling thread is a registered model thread (it was spawned
//! under [`crate::explore`]), every operation first reports to the
//! controlled scheduler as a yield point and obeys the model semantics
//! (locks are granted by the scheduler, condvar parking is atomic with
//! the unlock, notifies move parked threads to a lock-reacquire state);
//! when it is not — a normal build, or another test in the same binary —
//! every operation passes straight through to std. This is what makes
//! the feature-flag swap in `simcore::sync` and `deepserve::pool` safe
//! under cargo feature unification: compiling against the shims changes
//! nothing outside an active model run.
//!
//! Two invariants keep the two layers consistent:
//!
//! 1. A model thread never holds a *real* inner lock while parked — the
//!    real guard is dropped before the model park, and re-acquired only
//!    after the scheduler has granted the model lock — so inner locks
//!    are never contended between model threads.
//! 2. Once an execution aborts (failure found) or the calling thread is
//!    unwinding, operations revert to passthrough (with condvar waits
//!    degraded to short timed waits) so `Drop` impls such as
//!    `WorkerPool::drop` can tear down without touching dead scheduler
//!    state. The first shim operation that runs *while unwinding from an
//!    uncaught panic* is also what converts that panic into a model
//!    failure — a panic fully contained by `catch_unwind` never executes
//!    a shim op mid-unwind, so deliberate panics (poisoned-round
//!    injection) stay transparent.

use crate::sched::{self, caller_loc as caller, healthy_ctx as model_ctx, Controller};
use core::time::Duration;
use std::sync::{Arc, LockResult, PoisonError};

/// A mutual-exclusion lock with the [`std::sync::Mutex`] API, scheduled
/// by the model checker inside model runs.
pub struct Mutex<T> {
    /// Boxed so the primitive's heap address is a stable identity even if
    /// the `Mutex` itself is moved.
    inner: Box<std::sync::Mutex<T>>,
    poisoned: Box<std::sync::atomic::AtomicBool>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: Box::new(std::sync::Mutex::new(value)),
            poisoned: Box::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    fn id(&self) -> usize {
        std::ptr::from_ref::<std::sync::Mutex<T>>(&*self.inner) as usize
    }

    /// Mirrors std's poisoning contract: a guard dropped during a panic
    /// poisons the lock, and later acquisitions get `Err` with the guard
    /// inside.
    fn wrap<'a>(&'a self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if self.poisoned.load(std::sync::atomic::Ordering::Relaxed) {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Acquires the lock, blocking the calling thread (or, in a model
    /// run, parking it in the scheduler) until it is available.
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let loc = caller();
        match model_ctx() {
            Some((ctl, me)) => {
                ctl.op_acquire(me, self.id(), loc);
                // Invariant 1: the model holder is unique, so the real
                // acquire below cannot block on another model thread.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                self.wrap(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: Some((ctl, me)),
                })
            }
            None => {
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                self.wrap(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                })
            }
        }
    }
}

/// RAII guard for [`Mutex`]; releasing it is *not* a model yield point
/// (the releasing thread keeps running until its next operation), which
/// matches how a real unlock never deschedules the caller.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<Controller>, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("detcheck guard used after wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("detcheck guard used after wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.lock
                .poisoned
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
        // Free the real lock before releasing the model hold: no other
        // model thread is scheduled until this thread's next yield point,
        // and any aborting passthrough acquirer needs the real lock free.
        drop(self.inner.take());
        if let Some((ctl, me)) = self.model.take() {
            if std::thread::panicking() {
                // First shim touch during an uncaught unwind: fail the
                // execution (no-op if it is already aborting).
                ctl.abort_from_unwind(me);
            } else if !ctl.is_aborting() {
                ctl.op_release(me, self.lock.id());
            }
        }
    }
}

/// A condition variable with the [`std::sync::Condvar`] API. In model
/// runs, `wait` atomically releases the mutex and parks in the scheduler
/// (a lost wakeup therefore shows up as a detected deadlock, exactly as
/// it would on real hardware), and notifies transfer parked threads to a
/// lock-reacquire state.
pub struct Condvar {
    inner: Box<std::sync::Condvar>,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: Box::new(std::sync::Condvar::new()),
        }
    }

    fn id(&self) -> usize {
        std::ptr::from_ref::<std::sync::Condvar>(&*self.inner) as usize
    }

    /// Releases `guard`'s mutex and blocks until notified (or, per the
    /// std contract, spuriously — the model explores spurious wakeups
    /// only when [`crate::Config::spurious_wakeups`] is set). Re-acquires
    /// the mutex before returning.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let loc = caller();
        let lock = guard.lock;
        match guard.model.take() {
            Some((ctl, me)) if !std::thread::panicking() && !ctl.is_aborting() => {
                // Park atomically: drop the real guard here, and let the
                // scheduler release the model hold as part of the park so
                // no notify can slip between the two.
                drop(guard.inner.take());
                drop(guard);
                ctl.op_cv_wait(me, self.id(), lock.id(), loc);
                // Scheduled again holding the model lock; take the real one.
                let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                lock.wrap(MutexGuard {
                    lock,
                    inner: Some(inner),
                    model: Some((ctl, me)),
                })
            }
            model => {
                let std_guard = guard.inner.take().expect("detcheck guard used after wait");
                let inner = if model.is_some() || sched::current().is_some() {
                    // Aborting / unwinding teardown: degrade to a short
                    // timed wait so close-flag loops re-check their
                    // condition instead of blocking on a condvar whose
                    // model waiter list is dead. Callers treat an empty
                    // wakeup as spurious, which the std contract allows.
                    let (g, _) = self
                        .inner
                        .wait_timeout(std_guard, Duration::from_millis(1))
                        .unwrap_or_else(PoisonError::into_inner);
                    g
                } else {
                    self.inner
                        .wait(std_guard)
                        .unwrap_or_else(PoisonError::into_inner)
                };
                guard.model = model;
                guard.inner = Some(inner);
                lock.wrap(guard)
            }
        }
    }

    /// Wakes one thread parked on this condition variable.
    #[track_caller]
    pub fn notify_one(&self) {
        let loc = caller();
        if let Some((ctl, me)) = model_ctx() {
            ctl.op_notify(me, self.id(), false, loc);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes every thread parked on this condition variable.
    #[track_caller]
    pub fn notify_all(&self) {
        let loc = caller();
        if let Some((ctl, me)) = model_ctx() {
            ctl.op_notify(me, self.id(), true, loc);
        } else {
            self.inner.notify_all();
        }
    }
}

pub use std::sync::atomic::Ordering;

macro_rules! shim_atomic {
    ($name:ident, $std:ty, $value:ty) => {
        /// Atomic with the std API; every access is a model yield point.
        /// The model serializes all accesses, so every ordering behaves
        /// as `SeqCst` inside a model run.
        pub struct $name {
            inner: Box<$std>,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub fn new(v: $value) -> Self {
                $name {
                    inner: Box::new(<$std>::new(v)),
                }
            }

            /// Loads the current value.
            #[track_caller]
            pub fn load(&self, order: Ordering) -> $value {
                let loc = caller();
                if let Some((ctl, me)) = model_ctx() {
                    ctl.op_atomic(me, "atomic-load", loc);
                }
                self.inner.load(order)
            }

            /// Stores a new value.
            #[track_caller]
            pub fn store(&self, v: $value, order: Ordering) {
                let loc = caller();
                if let Some((ctl, me)) = model_ctx() {
                    ctl.op_atomic(me, "atomic-store", loc);
                }
                self.inner.store(v, order);
            }

            /// Replaces the value, returning the previous one.
            #[track_caller]
            pub fn swap(&self, v: $value, order: Ordering) -> $value {
                let loc = caller();
                if let Some((ctl, me)) = model_ctx() {
                    ctl.op_atomic(me, "atomic-swap", loc);
                }
                self.inner.swap(v, order)
            }
        }
    };
}

shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

impl AtomicUsize {
    /// Adds to the value, returning the previous one.
    #[track_caller]
    pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        let loc = caller();
        if let Some((ctl, me)) = model_ctx() {
            ctl.op_atomic(me, "atomic-fetch-add", loc);
        }
        self.inner.fetch_add(v, order)
    }

    /// Subtracts from the value, returning the previous one.
    #[track_caller]
    pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
        let loc = caller();
        if let Some((ctl, me)) = model_ctx() {
            ctl.op_atomic(me, "atomic-fetch-sub", loc);
        }
        self.inner.fetch_sub(v, order)
    }
}

/// Multi-producer single-consumer channel with the `std::sync::mpsc`
/// API surface the worker pool uses (`channel`/`send`/`recv`/`try_recv`),
/// built on the shim [`Mutex`] + [`Condvar`] so every channel operation
/// is a model yield point for free.
pub mod mpsc {
    use super::{Arc, Condvar, Mutex, PoisonError};
    use std::collections::VecDeque;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        state: Mutex<ChanState<T>>,
        ready: Condvar,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value; `Err` returns it if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // The receiver may be parked waiting for a value that will
                // never come; wake it so it observes disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Pops a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receiver_alive = false;
        }
    }
}
