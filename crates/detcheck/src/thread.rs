//! Shim thread spawn/join with the `std::thread` API surface the worker
//! pool uses.
//!
//! In a model run, `spawn` registers a new model thread with the
//! scheduler (the spawn itself is a yield point, so the child's first
//! step can be interleaved anywhere after it) and `join` is a blocking
//! operation that is only enabled once the child finished — a join on a
//! child that can never finish is reported as a deadlock. Outside a
//! model run both delegate to std. The raw `std::thread::spawn` call
//! sites live in `sched.rs` (the controller owns every OS thread),
//! keeping the detlint `thread` containment surface to a single file.

use crate::sched::{self, Controller};
use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

/// Owned permission to join on a thread, mirroring
/// [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        ctl: Arc<Controller>,
        tid: usize,
        _result: PhantomData<fn() -> T>,
    },
}

/// Spawns a new thread, returning a [`JoinHandle`] for it.
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let loc = sched::caller_loc();
    match sched::healthy_ctx() {
        Some((ctl, me)) => {
            let tid = ctl.op_spawn(me, loc);
            sched::spawn_model_os_thread(&ctl, tid, move || {
                Ok(Box::new(f()) as Box<dyn Any + Send>)
            });
            JoinHandle {
                inner: Inner::Model {
                    ctl,
                    tid,
                    _result: PhantomData,
                },
            }
        }
        None => JoinHandle {
            inner: Inner::Std(sched::os_spawn(f)),
        },
    }
}

impl<T: 'static> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (or the
    /// panic payload if it panicked, exactly like std).
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        let loc = sched::caller_loc();
        match self.inner {
            Inner::Std(handle) => handle.join(),
            Inner::Model { ctl, tid, .. } => {
                let res = match sched::healthy_ctx() {
                    // Same execution, healthy: a real scheduled join.
                    Some((c, me)) if Arc::ptr_eq(&c, &ctl) => ctl.op_join(me, tid, loc),
                    // Aborting teardown (or a foreign thread): wait only
                    // for the child's finished flag — every model thread
                    // sets it even when unwinding.
                    _ => ctl.join_aborting(tid),
                };
                match res {
                    Ok(boxed) => match boxed.downcast::<T>() {
                        Ok(v) => Ok(*v),
                        Err(payload) => Err(payload),
                    },
                    Err(payload) => Err(payload),
                }
            }
        }
    }
}
