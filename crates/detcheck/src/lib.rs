//! detcheck — a loom-style concurrency model checker for the worker-pool
//! protocols. Dependency-free: the offline build vendors neither loom nor
//! any test-support crate.
//!
//! ## How it works
//!
//! [`explore`] runs a test closure repeatedly, each time under a
//! different thread interleaving chosen by a controlled scheduler, until
//! every schedule within a bounded number of preemptions has been tried
//! (depth-first, deterministic). The closure must do its concurrency
//! through the shim primitives in [`sync`] and [`thread`] — in practice
//! through `simcore::sync` and `deepserve::pool` compiled with their
//! `detcheck` features, which alias those modules' `Mutex`, `Condvar`,
//! `mpsc`, `spawn` and `JoinHandle` to the shims. Every lock acquire,
//! condvar wait/notify, atomic access, channel operation, spawn and join
//! is a yield point.
//!
//! The explorer detects:
//! - **deadlocks** — no thread can run and not all have finished; this is
//!   also how *lost wakeups* surface (the waiter is parked forever);
//! - **assertion failures / panics** on any model thread;
//! - **livelock suspects** — executions exceeding the op budget.
//!
//! On failure it reports the *schedule* (the thread chosen at each branch
//! point) and the full `(thread, op, location)` trace; [`replay`] re-runs
//! the exact interleaving from the schedule alone.
//!
//! ## Passthrough outside model runs
//!
//! Cargo feature unification means that in a workspace test build the
//! `detcheck` features of simcore/deepserve are active for *every* test
//! binary, not just this crate's. The shims therefore dispatch per
//! operation: threads registered with a running exploration get model
//! semantics; all others get the real `std::sync` behavior. Normal
//! (`cargo build`) artifacts never enable the feature at all.

#![forbid(unsafe_code)]

pub mod fixtures;
mod sched;
pub mod sync;
pub mod thread;

pub use sched::{explore, replay, Config, Failure, FailureKind, Outcome, TraceEvent};

/// Summary of a completed (non-failing) exploration.
#[derive(Debug, Clone, Copy)]
pub struct Exploration {
    /// Interleavings explored.
    pub executions: usize,
    /// True when the schedule tree was exhausted (vs. hitting
    /// [`Config::max_executions`]).
    pub exhausted: bool,
}

/// Explores `f` under `cfg`; on failure, writes the replayable schedule
/// trace to `target/detcheck/<name>.trace.txt` and panics with the full
/// report (this is the `#[test]` entry point — CI uploads the trace files
/// as artifacts).
pub fn check_named<F>(name: &str, cfg: Config, f: F) -> Exploration
where
    F: Fn() + Send + Sync + 'static,
{
    match explore(cfg, f) {
        Outcome::Pass { executions } => Exploration {
            executions,
            exhausted: true,
        },
        Outcome::Capped { executions } => Exploration {
            executions,
            exhausted: false,
        },
        Outcome::Failed(failure) => {
            let written = write_trace(name, &failure);
            let dest = written.unwrap_or_else(|e| format!("<trace file not written: {e}>"));
            panic!(
                "detcheck[{name}] found a failing interleaving:\n{failure}schedule trace: {dest}"
            );
        }
    }
}

/// Writes a failure's schedule trace under `target/detcheck/`.
fn write_trace(name: &str, failure: &Failure) -> Result<String, std::io::Error> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/detcheck");
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/{name}.trace.txt");
    let body = format!(
        "detcheck failing-schedule trace: {name}\n\
         replay with: detcheck::replay(cfg, &{:?}, || ...)\n\n{failure}",
        failure.schedule
    );
    std::fs::write(&path, body)?;
    Ok(path)
}
