//! The controlled scheduler and DFS interleaving explorer.
//!
//! A model-checked execution runs every "model thread" on a real OS
//! thread, but only one of them is ever *runnable* at a time: each shim
//! operation (lock acquire, condvar wait/notify, atomic access, channel
//! op, spawn, join) is a yield point where the running thread declares
//! its intended operation and hands control to the scheduler, which picks
//! the next thread to execute from the set whose declared operations are
//! *enabled* (a lock acquire is enabled iff the mutex is free, a join iff
//! the target finished, and so on). Every point where more than one
//! choice exists becomes a branch in a depth-first exploration: the test
//! body is re-executed once per schedule until the tree is exhausted,
//! with the number of *preemptions* (switching away from a thread that
//! could have continued) bounded to keep the state space tractable —
//! forced switches (the running thread blocked or finished) are free, so
//! every schedule needed to expose a blocking bug stays reachable.
//!
//! Deadlocks are detected exactly: if no declared operation is enabled
//! and not every thread has finished, the remaining threads can never run
//! again — this is also how lost wakeups manifest (a notify that fired
//! before the waiter parked leaves the waiter ineligible forever). On any
//! failure (deadlock, panic/assertion in a model thread, or the
//! per-execution op budget tripping on a livelock) the explorer stops and
//! reports the *schedule* — the ordered list of thread choices at each
//! branch — plus the full operation trace `(thread, op, location)`.
//! Feeding the schedule to [`replay`] re-runs that exact interleaving.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once, PoisonError};

/// Panic payload used to unwind model threads when an execution aborts
/// (failure found, or exploration torn down). Never user-visible: the
/// thread wrapper catches it and the global panic hook stays silent on it.
pub(crate) struct Abort;

/// Exploration limits and semantic knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum preemptive context switches per execution (switching away
    /// from a thread whose next operation was enabled). Forced switches —
    /// the running thread blocked, parked, or finished — are always free.
    pub max_preemptions: usize,
    /// Hard cap on explored interleavings; hitting it yields
    /// [`Outcome::Capped`] instead of a completeness claim.
    pub max_executions: usize,
    /// Per-execution operation budget; exceeding it is reported as a
    /// suspected livelock.
    pub max_ops: usize,
    /// Also explore spurious condvar wakeups (a parked waiter may resume
    /// without a notify, as the std contract allows). Off by default —
    /// it multiplies the state space and only matters for
    /// `if`-instead-of-`while` wait loops.
    pub spurious_wakeups: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_preemptions: 2,
            max_executions: 1_000_000,
            max_ops: 50_000,
            spurious_wakeups: false,
        }
    }
}

/// One recorded shim operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Model thread index (0 is the test body).
    pub thread: usize,
    /// Operation name (`lock`, `unlock`, `cv-wait-park`, `notify-all`, …).
    pub op: String,
    /// `file:line` of the shim call site ([`std::panic::Location`]).
    pub location: String,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}  {:<18} {}", self.thread, self.op, self.location)
    }
}

/// What went wrong on the failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// No runnable thread and not all finished; `blocked` describes each
    /// stuck thread.
    Deadlock { blocked: Vec<(usize, String)> },
    /// A model thread panicked (assertion failure or unexpected unwind).
    Panic { thread: usize, message: String },
    /// The per-execution op budget tripped — a livelock suspect.
    OpBudget { ops: usize },
}

/// A failing exploration result: the kind, the replayable schedule, and
/// the full operation trace of the failing execution.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What failed.
    pub kind: FailureKind,
    /// Thread chosen at each branch point — feed to [`replay`] to re-run
    /// this exact interleaving.
    pub schedule: Vec<usize>,
    /// Ordered `(thread, op, location)` operation log of the failing run.
    pub trace: Vec<TraceEvent>,
    /// Interleavings explored before this one failed (inclusive).
    pub executions: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Deadlock { blocked } => {
                writeln!(f, "deadlock after {} interleaving(s):", self.executions)?;
                for (tid, why) in blocked {
                    writeln!(f, "  t{tid}: {why}")?;
                }
            }
            FailureKind::Panic { thread, message } => {
                writeln!(
                    f,
                    "model thread t{thread} panicked after {} interleaving(s): {message}",
                    self.executions
                )?;
            }
            FailureKind::OpBudget { ops } => {
                writeln!(
                    f,
                    "op budget exceeded ({ops} ops) after {} interleaving(s) — livelock suspect",
                    self.executions
                )?;
            }
        }
        writeln!(f, "schedule (replayable): {:?}", self.schedule)?;
        writeln!(f, "trace ({} ops):", self.trace.len())?;
        for ev in &self.trace {
            writeln!(f, "  {ev}")?;
        }
        Ok(())
    }
}

/// The result of an exploration.
#[derive(Debug)]
pub enum Outcome {
    /// Every interleaving within the preemption bound passed.
    Pass {
        /// Interleavings explored.
        executions: usize,
    },
    /// The execution cap was hit before the tree was exhausted; no
    /// failure found in the explored prefix.
    Capped {
        /// Interleavings explored.
        executions: usize,
    },
    /// A failing interleaving was found.
    Failed(Box<Failure>),
}

impl Outcome {
    /// Interleavings explored, whatever the outcome.
    pub fn executions(&self) -> usize {
        match self {
            Outcome::Pass { executions } | Outcome::Capped { executions } => *executions,
            Outcome::Failed(fail) => fail.executions,
        }
    }

    /// The failure, if one was found.
    pub fn failure(&self) -> Option<&Failure> {
        match self {
            Outcome::Failed(fail) => Some(fail),
            _ => None,
        }
    }
}

/// What a thread has declared it will do next; the scheduler only runs
/// threads whose intent is currently enabled.
#[derive(Debug)]
enum Intent {
    /// First activation of a freshly spawned thread (always enabled).
    Start,
    /// Acquire the mutex with this id (enabled iff free).
    Lock(usize),
    /// Atomically release the mutex and park on the condvar (always
    /// enabled; executing it parks the thread).
    CvPark { cv: usize, mutex: usize },
    /// Notify a condvar (always enabled).
    Notify { cv: usize, all: bool },
    /// A sequentially-consistent atomic access (always enabled).
    Atomic,
    /// Make a previously registered child schedulable (always enabled).
    Spawn { child: usize },
    /// Join a thread (enabled iff it finished).
    Join(usize),
}

#[derive(Debug)]
enum TState {
    /// Currently executing user code (at most one thread).
    Running,
    /// At a yield point with a declared intent; `op`/`loc` label the
    /// trace event recorded when the intent executes.
    Ready {
        intent: Intent,
        op: &'static str,
        loc: String,
    },
    /// Parked on a condvar until notified (or spuriously woken).
    CvWaiting { cv: usize, mutex: usize },
    /// Registered by a spawn op but not schedulable until the spawn
    /// executes.
    Embryo,
    /// Done; `join` is enabled on it.
    Finished,
}

type ThreadResult = Result<Box<dyn std::any::Any + Send>, Box<dyn std::any::Any + Send>>;

struct ModelThread {
    state: TState,
    result: Option<ThreadResult>,
}

/// Persistent-across-executions DFS state: the branch stack.
struct Explorer {
    /// `(candidates, index of the choice taken)` per branch point.
    stack: Vec<(Vec<usize>, usize)>,
    /// When `Some`, replay this fixed schedule instead of exploring.
    replay: Option<Vec<usize>>,
}

impl Explorer {
    /// Picks a thread at branch `depth` among `candidates`.
    fn choose(&mut self, depth: usize, candidates: &[usize]) -> usize {
        if let Some(sched) = &self.replay {
            return sched
                .get(depth)
                .copied()
                .filter(|t| candidates.contains(t))
                .unwrap_or(candidates[0]);
        }
        if depth < self.stack.len() {
            let (stored, idx) = &self.stack[depth];
            assert_eq!(
                stored, candidates,
                "detcheck: test body is not deterministic — branch {depth} diverged on replay"
            );
            stored[*idx]
        } else {
            self.stack.push((candidates.to_vec(), 0));
            candidates[0]
        }
    }

    /// Advances to the next unexplored schedule; false when exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some((candidates, idx)) = self.stack.last_mut() {
            *idx += 1;
            if *idx < candidates.len() {
                return true;
            }
            self.stack.pop();
        }
        false
    }

    /// The schedule of the current (just-run) execution.
    fn schedule(&self) -> Vec<usize> {
        if let Some(sched) = &self.replay {
            return sched.clone();
        }
        self.stack.iter().map(|(c, i)| c[*i]).collect()
    }
}

/// Per-execution shared state, guarded by the controller mutex.
struct Exec {
    threads: Vec<ModelThread>,
    /// Mutex id -> holding thread.
    mutex_holders: BTreeMap<usize, usize>,
    /// Condvar id -> parked `(thread, mutex)` waiters in park order.
    cv_waiters: BTreeMap<usize, Vec<(usize, usize)>>,
    trace: Vec<TraceEvent>,
    /// Branch counter this execution.
    depth: usize,
    ops: usize,
    preemptions: usize,
    done: bool,
    aborting: bool,
    failure: Option<FailureKind>,
    explorer: Explorer,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// The per-execution coordinator every shim op talks to (via TLS).
pub(crate) struct Controller {
    cfg: Config,
    ex: Mutex<Exec>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Controller>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Message of the last user panic raised on a model thread; consumed
    /// by [`Controller::abort_from_unwind`] so a panic that unwinds into
    /// a shim operation keeps its original message in the report.
    static LAST_PANIC: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// The active model run for the calling thread, if any. `None` means the
/// shim types pass straight through to the real std primitives.
pub(crate) fn current() -> Option<(Arc<Controller>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Controller>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Model context for a shim operation: `Some` only when the calling
/// thread is a model thread in a healthy (non-aborting, non-unwinding)
/// execution. As a side effect, the first call made while unwinding from
/// an uncaught panic converts that panic into a model failure so every
/// other thread tears down — a panic fully contained by `catch_unwind`
/// never runs a shim op mid-unwind, so deliberate panics stay invisible.
pub(crate) fn healthy_ctx() -> Option<(Arc<Controller>, usize)> {
    let (ctl, me) = current()?;
    if std::thread::panicking() {
        ctl.abort_from_unwind(me);
        return None;
    }
    if ctl.is_aborting() {
        return None;
    }
    Some((ctl, me))
}

/// `file:line` of the shim call site; `#[track_caller]` all the way down
/// so the recorded location is in simcore/pool code, not in the shims.
#[track_caller]
pub(crate) fn caller_loc() -> String {
    let loc = std::panic::Location::caller();
    format!("{}:{}", loc.file(), loc.line())
}

/// The one raw OS-thread spawn site in the crate: both model threads and
/// passthrough shim spawns route through here (see the detlint `thread`
/// containment rule).
pub(crate) fn os_spawn<F, T>(f: F) -> std::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::spawn(f)
}

fn abort_unwind() -> ! {
    std::panic::panic_any(Abort)
}

/// Installs (once, process-wide) a panic hook that silences the internal
/// [`Abort`] unwind payload and delegates everything else.
fn install_quiet_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Abort>().is_some() {
                return;
            }
            if current().is_some() {
                // A user panic on a model thread: record the message for
                // the failure report instead of printing — an exploration
                // can hit the same expected panic thousands of times.
                let msg = panic_message(info.payload());
                LAST_PANIC.with(|p| *p.borrow_mut() = Some(msg));
                return;
            }
            prev(info);
        }));
    });
}

impl Controller {
    fn new(cfg: Config, explorer: Explorer) -> Controller {
        Controller {
            cfg,
            ex: Mutex::new(Exec {
                threads: Vec::new(),
                mutex_holders: BTreeMap::new(),
                cv_waiters: BTreeMap::new(),
                trace: Vec::new(),
                depth: 0,
                ops: 0,
                preemptions: 0,
                done: false,
                aborting: false,
                failure: None,
                explorer,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_ex(&self) -> std::sync::MutexGuard<'_, Exec> {
        // A model thread that panicked between ops can poison this lock
        // mid-teardown; the state is still consistent (every critical
        // section below is transactional), so keep going.
        self.ex.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Racy aborting check for shim fast paths.
    pub(crate) fn is_aborting(&self) -> bool {
        self.lock_ex().aborting
    }

    /// Converts an uncaught user panic (detected because it unwound into
    /// a shim operation) into a model failure, waking every thread for
    /// teardown. No-op when the execution is already aborting.
    pub(crate) fn abort_from_unwind(&self, me: usize) {
        let mut ex = self.lock_ex();
        if ex.aborting {
            return;
        }
        let message = LAST_PANIC
            .with(|p| p.borrow_mut().take())
            .unwrap_or_else(|| "panic unwound into a shim operation".to_string());
        self.fail(
            &mut ex,
            FailureKind::Panic {
                thread: me,
                message,
            },
        );
    }

    /// Records a failure and wakes everyone so the execution unwinds.
    fn fail(&self, ex: &mut Exec, kind: FailureKind) {
        if ex.failure.is_none() {
            ex.failure = Some(kind);
        }
        ex.aborting = true;
        ex.done = true;
        self.cv.notify_all();
    }

    /// Whether a declared intent can execute right now.
    fn enabled(ex: &Exec, intent: &Intent) -> bool {
        match intent {
            Intent::Lock(m) => !ex.mutex_holders.contains_key(m),
            Intent::Join(t) => matches!(ex.threads[*t].state, TState::Finished),
            Intent::Start
            | Intent::CvPark { .. }
            | Intent::Notify { .. }
            | Intent::Atomic
            | Intent::Spawn { .. } => true,
        }
    }

    /// The scheduling core: picks and executes intents until some thread
    /// transitions to `Running` (or the execution completes / fails).
    ///
    /// `from` is the thread that just yielded (None for forced entry
    /// points like kickoff and thread exit).
    fn pick_next(&self, ex: &mut Exec, from: Option<usize>) {
        let mut from = from;
        loop {
            if ex.aborting {
                return;
            }
            let enabled: Vec<usize> = (0..ex.threads.len())
                .filter(|&t| match &ex.threads[t].state {
                    TState::Ready { intent, .. } => Self::enabled(ex, intent),
                    _ => false,
                })
                .collect();
            let budget_left = ex.preemptions < self.cfg.max_preemptions;
            let spurious: Vec<usize> = if self.cfg.spurious_wakeups && budget_left {
                (0..ex.threads.len())
                    .filter(|&t| matches!(ex.threads[t].state, TState::CvWaiting { .. }))
                    .collect()
            } else {
                Vec::new()
            };
            if enabled.is_empty() && spurious.is_empty() {
                if ex
                    .threads
                    .iter()
                    .all(|t| matches!(t.state, TState::Finished))
                {
                    ex.done = true;
                    self.cv.notify_all();
                } else {
                    let blocked = ex
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| !matches!(t.state, TState::Finished))
                        .map(|(tid, t)| (tid, describe_stuck(ex, tid, &t.state)))
                        .collect();
                    self.fail(ex, FailureKind::Deadlock { blocked });
                }
                return;
            }

            let me_enabled = from.is_some_and(|m| enabled.contains(&m));
            let candidates: Vec<usize> = if me_enabled && !budget_left {
                vec![from.unwrap_or_default()]
            } else {
                let mut c = Vec::with_capacity(enabled.len() + spurious.len());
                if let Some(m) = from.filter(|_| me_enabled) {
                    c.push(m);
                }
                c.extend(enabled.iter().copied().filter(|&t| Some(t) != from));
                c.extend(spurious.iter().copied());
                c
            };
            let chosen = if candidates.len() == 1 {
                candidates[0]
            } else {
                let d = ex.depth;
                ex.depth += 1;
                ex.explorer.choose(d, &candidates)
            };
            let charged = me_enabled && Some(chosen) != from;
            if charged {
                ex.preemptions += 1;
            }

            // A spurious wakeup: convert the waiter to a lock re-acquire
            // and keep scheduling. Always costs a preemption, or a
            // park/spurious-wake/re-park cycle would make the DFS tree
            // infinite.
            if let TState::CvWaiting { cv, mutex } = ex.threads[chosen].state {
                if !charged {
                    ex.preemptions += 1;
                }
                if let Some(ws) = ex.cv_waiters.get_mut(&cv) {
                    ws.retain(|(t, _)| *t != chosen);
                }
                ex.trace.push(TraceEvent {
                    thread: chosen,
                    op: "spurious-wakeup".to_string(),
                    location: format!("condvar {:#x}", cv & 0xffff),
                });
                ex.threads[chosen].state = TState::Ready {
                    intent: Intent::Lock(mutex),
                    op: "cv-wait-reacquire",
                    loc: format!("condvar {:#x}", cv & 0xffff),
                };
                from = None;
                continue;
            }

            // Execute the chosen thread's intent.
            let state = std::mem::replace(&mut ex.threads[chosen].state, TState::Running);
            let TState::Ready { intent, op, loc } = state else {
                unreachable!("scheduler chose a non-ready thread");
            };
            ex.trace.push(TraceEvent {
                thread: chosen,
                op: op.to_string(),
                location: loc.clone(),
            });
            match intent {
                Intent::Start | Intent::Atomic | Intent::Join(_) => {
                    self.cv.notify_all();
                    return;
                }
                Intent::Lock(m) => {
                    ex.mutex_holders.insert(m, chosen);
                    self.cv.notify_all();
                    return;
                }
                Intent::Notify { cv, all } => {
                    let woken: Vec<(usize, usize)> = match ex.cv_waiters.get_mut(&cv) {
                        Some(ws) if all => std::mem::take(ws),
                        Some(ws) if !ws.is_empty() => vec![ws.remove(0)],
                        _ => Vec::new(),
                    };
                    for (tid, mutex) in woken {
                        ex.threads[tid].state = TState::Ready {
                            intent: Intent::Lock(mutex),
                            op: "cv-wait-reacquire",
                            loc: loc.clone(),
                        };
                    }
                    self.cv.notify_all();
                    return;
                }
                Intent::Spawn { child } => {
                    ex.threads[child].state = TState::Ready {
                        intent: Intent::Start,
                        op: "thread-start",
                        loc: loc.clone(),
                    };
                    self.cv.notify_all();
                    return;
                }
                Intent::CvPark { cv, mutex } => {
                    // Release the mutex and park; the parker does not get
                    // a turn, so keep scheduling.
                    ex.mutex_holders.remove(&mutex);
                    ex.cv_waiters.entry(cv).or_default().push((chosen, mutex));
                    ex.threads[chosen].state = TState::CvWaiting { cv, mutex };
                    from = None;
                }
            }
        }
    }

    /// Declares `intent` at a yield point and blocks until this thread is
    /// scheduled to run again.
    fn yield_with(&self, me: usize, intent: Intent, op: &'static str, loc: String) {
        let mut ex = self.lock_ex();
        if ex.aborting {
            drop(ex);
            abort_unwind();
        }
        ex.ops += 1;
        if ex.ops > self.cfg.max_ops {
            let ops = ex.ops;
            self.fail(&mut ex, FailureKind::OpBudget { ops });
            drop(ex);
            abort_unwind();
        }
        ex.threads[me].state = TState::Ready { intent, op, loc };
        self.pick_next(&mut ex, Some(me));
        loop {
            if matches!(ex.threads[me].state, TState::Running) {
                return;
            }
            if ex.aborting {
                drop(ex);
                abort_unwind();
            }
            ex = self.cv.wait(ex).unwrap_or_else(PoisonError::into_inner);
        }
    }

    // ---- shim entry points (model mode only) ----

    pub(crate) fn op_acquire(&self, me: usize, mutex: usize, loc: String) {
        self.yield_with(me, Intent::Lock(mutex), "lock", loc);
    }

    /// Mutex release: not a yield point (the releasing thread keeps
    /// running), but recorded and applied so blocked acquirers become
    /// eligible at the next scheduling point.
    pub(crate) fn op_release(&self, me: usize, mutex: usize) {
        let mut ex = self.lock_ex();
        if ex.mutex_holders.get(&mutex) == Some(&me) {
            ex.mutex_holders.remove(&mutex);
        }
        ex.trace.push(TraceEvent {
            thread: me,
            op: "unlock".to_string(),
            location: format!("mutex {:#x}", mutex & 0xffff),
        });
    }

    /// Condvar wait: parks (releasing the mutex) in one atomic step, then
    /// blocks until notified *and* rescheduled holding the mutex again.
    pub(crate) fn op_cv_wait(&self, me: usize, cv: usize, mutex: usize, loc: String) {
        self.yield_with(me, Intent::CvPark { cv, mutex }, "cv-wait-park", loc);
    }

    pub(crate) fn op_notify(&self, me: usize, cv: usize, all: bool, loc: String) {
        let op = if all { "notify-all" } else { "notify-one" };
        self.yield_with(me, Intent::Notify { cv, all }, op, loc);
    }

    pub(crate) fn op_atomic(&self, me: usize, op: &'static str, loc: String) {
        self.yield_with(me, Intent::Atomic, op, loc);
    }

    /// Registers a child thread slot and schedules the spawn; returns the
    /// child's model-thread id. The caller then creates the OS thread and
    /// hands its handle to [`Controller::register_os_handle`].
    pub(crate) fn op_spawn(&self, me: usize, loc: String) -> usize {
        let child = {
            let mut ex = self.lock_ex();
            ex.threads.push(ModelThread {
                state: TState::Embryo,
                result: None,
            });
            ex.threads.len() - 1
        };
        self.yield_with(me, Intent::Spawn { child }, "spawn", loc);
        child
    }

    pub(crate) fn register_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock_ex().os_handles.push(handle);
    }

    /// Joins a model thread: blocks until it finishes, then returns its
    /// result (panic payloads included, mirroring [`std::thread::JoinHandle`]).
    pub(crate) fn op_join(&self, me: usize, target: usize, loc: String) -> ThreadResult {
        self.yield_with(me, Intent::Join(target), "join", loc);
        self.lock_ex().threads[target]
            .result
            .take()
            .unwrap_or_else(|| Err(Box::new(Abort)))
    }

    /// Abort-mode join: waits only for the target's finished flag (every
    /// model thread reaches [`Controller::exit_thread`] even when
    /// unwinding), without touching the scheduler.
    pub(crate) fn join_aborting(&self, target: usize) -> ThreadResult {
        let mut ex = self.lock_ex();
        while !matches!(ex.threads[target].state, TState::Finished) {
            ex = self.cv.wait(ex).unwrap_or_else(PoisonError::into_inner);
        }
        ex.threads[target]
            .result
            .take()
            .unwrap_or_else(|| Err(Box::new(Abort)))
    }

    /// Called by a freshly spawned OS thread: installs the TLS context
    /// and blocks until the scheduler first activates it. Returns false
    /// when the execution aborted before activation — the thread's body
    /// must then be skipped entirely (it was never scheduled).
    fn enter_thread(self: &Arc<Controller>, me: usize) -> bool {
        set_current(Some((Arc::clone(self), me)));
        let mut ex = self.lock_ex();
        loop {
            if matches!(ex.threads[me].state, TState::Running) {
                return true;
            }
            if ex.aborting {
                return false;
            }
            ex = self.cv.wait(ex).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Called by the thread wrapper when the body returns or unwinds.
    fn exit_thread(&self, me: usize, result: ThreadResult, user_panic: Option<String>) {
        let mut ex = self.lock_ex();
        ex.threads[me].state = TState::Finished;
        ex.threads[me].result = Some(result);
        ex.trace.push(TraceEvent {
            thread: me,
            op: "exit".to_string(),
            location: String::new(),
        });
        if let Some(message) = user_panic {
            self.fail(
                &mut ex,
                FailureKind::Panic {
                    thread: me,
                    message,
                },
            );
            return;
        }
        if ex.aborting {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut ex, None);
    }
}

fn describe_stuck(ex: &Exec, _tid: usize, state: &TState) -> String {
    match state {
        TState::Ready {
            intent: Intent::Lock(m),
            ..
        } => {
            let holder = ex.mutex_holders.get(m);
            match holder {
                Some(h) => format!("blocked acquiring mutex {:#x} held by t{h}", m & 0xffff),
                None => "blocked acquiring a free mutex (scheduler bug)".to_string(),
            }
        }
        TState::Ready {
            intent: Intent::Join(t),
            ..
        } => format!("blocked joining t{t}"),
        TState::CvWaiting { cv, .. } => {
            format!(
                "parked on condvar {:#x} with no notify in flight",
                cv & 0xffff
            )
        }
        TState::Ready { op, .. } => format!("blocked at `{op}` (scheduler bug)"),
        TState::Running => "running (scheduler bug)".to_string(),
        TState::Embryo => "spawned but never started".to_string(),
        TState::Finished => "finished".to_string(),
    }
}

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Spawns a model thread's OS thread. Lives here (with the controller);
/// the public spawn shim in [`crate::thread`] routes through it.
pub(crate) fn spawn_model_os_thread<F>(ctl: &Arc<Controller>, tid: usize, body: F)
where
    F: FnOnce() -> ThreadResult + Send + 'static,
{
    let ctl2 = Arc::clone(ctl);
    let handle = os_spawn(move || {
        let (result, user_panic) = if ctl2.enter_thread(tid) {
            match catch_unwind(AssertUnwindSafe(body)) {
                Ok(res) => (res, None),
                Err(payload) => {
                    if payload.downcast_ref::<Abort>().is_some() {
                        (Err(payload), None)
                    } else {
                        let msg = panic_message(payload.as_ref());
                        (Err(payload), Some(msg))
                    }
                }
            }
        } else {
            // Aborted before first activation: the body never ran.
            (Err(Box::new(Abort) as Box<dyn std::any::Any + Send>), None)
        };
        ctl2.exit_thread(tid, result, user_panic);
        set_current(None);
    });
    ctl.register_os_handle(handle);
}

/// Runs one execution of `f` under the controller; returns the explorer,
/// any failure, and the trace.
fn run_once(
    cfg: &Config,
    explorer: Explorer,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> (Explorer, Option<FailureKind>, Vec<TraceEvent>) {
    let ctl = Arc::new(Controller::new(cfg.clone(), explorer));
    {
        let mut ex = ctl.lock_ex();
        ex.threads.push(ModelThread {
            state: TState::Ready {
                intent: Intent::Start,
                op: "thread-start",
                loc: "test body".to_string(),
            },
            result: None,
        });
    }
    let f2 = Arc::clone(f);
    spawn_model_os_thread(&ctl, 0, move || {
        f2();
        Ok(Box::new(()))
    });
    // Kick off: activate thread 0 (the only candidate).
    {
        let mut ex = ctl.lock_ex();
        ctl.pick_next(&mut ex, None);
    }
    // Wait for the execution to complete or fail.
    {
        let mut ex = ctl.lock_ex();
        while !ex.done {
            ex = ctl.cv.wait(ex).unwrap_or_else(PoisonError::into_inner);
        }
    }
    // Join every OS thread this execution created (they all exit: either
    // normally or unwound by the abort).
    loop {
        let handle = ctl.lock_ex().os_handles.pop();
        match handle {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let mut ex = ctl.lock_ex();
    let failure = ex.failure.take();
    let trace = std::mem::take(&mut ex.trace);
    let explorer = std::mem::replace(
        &mut ex.explorer,
        Explorer {
            stack: Vec::new(),
            replay: None,
        },
    );
    drop(ex);
    (explorer, failure, trace)
}

/// Exhaustively explores every interleaving of `f` within the preemption
/// bound. `f` runs as model thread 0 and may spawn more via the shims.
pub fn explore<F>(cfg: Config, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_abort_hook();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut explorer = Explorer {
        stack: Vec::new(),
        replay: None,
    };
    let mut executions = 0usize;
    loop {
        executions += 1;
        let (expl, failure, trace) = run_once(&cfg, explorer, &f);
        explorer = expl;
        if let Some(kind) = failure {
            return Outcome::Failed(Box::new(Failure {
                kind,
                schedule: explorer.schedule(),
                trace,
                executions,
            }));
        }
        if !explorer.backtrack() {
            return Outcome::Pass { executions };
        }
        if executions >= cfg.max_executions {
            return Outcome::Capped { executions };
        }
    }
}

/// Re-runs `f` once under the exact interleaving `schedule` (as reported
/// by a [`Failure`]). Returns that single execution's outcome.
pub fn replay<F>(cfg: Config, schedule: &[usize], f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_abort_hook();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let explorer = Explorer {
        stack: Vec::new(),
        replay: Some(schedule.to_vec()),
    };
    let (explorer, failure, trace) = run_once(&cfg, explorer, &f);
    match failure {
        Some(kind) => Outcome::Failed(Box::new(Failure {
            kind,
            schedule: explorer.schedule(),
            trace,
            executions: 1,
        })),
        None => Outcome::Pass { executions: 1 },
    }
}
