//! Deliberately buggy protocol fixtures.
//!
//! These exist to prove the checker's detection power (and to keep
//! proving it in CI): each type seeds one classic condvar bug that the
//! real `simcore::sync::TaskQueue` avoids, and a test in
//! `tests/detect.rs` asserts the explorer catches it with a replayable
//! schedule. If a refactor ever made these pass, the checker — not the
//! fixtures — would be broken.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::PoisonError;

/// A closable queue whose `close` wakes consumers *before* setting the
/// closed flag, and outside the lock — the textbook lost-wakeup bug.
///
/// The race: a consumer holding the lock observes `(empty, open)` and
/// commits to parking; `close` runs its notify in the window before the
/// park completes (it doesn't need the lock, so nothing stops it); the
/// notify finds no waiters and is lost; the consumer then parks and the
/// flag-set that follows never wakes it. The model checker reports this
/// as a deadlock with the consumer parked and the closer finished.
pub struct LostWakeupQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> Default for LostWakeupQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LostWakeupQueue<T> {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        LostWakeupQueue {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues one job (correctly: mutate under the lock, then notify).
    pub fn push(&self, job: T) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !st.closed {
            st.jobs.push_back(job);
        }
        drop(st);
        self.ready.notify_all();
    }

    /// Blocks until a job arrives or the queue closes (correct wait loop;
    /// the bug is on the close side).
    pub fn pop_wait(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// SEEDED BUG: notifies before the closed flag is set, and without
    /// holding the lock. Compare `simcore::sync::TaskQueue::close`, which
    /// sets the flag under the lock first.
    pub fn close(&self) {
        self.ready.notify_all();
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
    }
}

/// A queue whose consumer gates its wait with `if` instead of `while` —
/// correct only if condvar wakeups are never spurious, which the std
/// contract explicitly does not promise.
///
/// Under [`crate::Config::spurious_wakeups`] the explorer injects a
/// wakeup with no matching notify; the consumer then returns `None` with
/// the queue still open, and a caller assertion ("a pushed job is never
/// lost") fails on a replayable schedule.
pub struct IfGateQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Default for IfGateQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IfGateQueue<T> {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        IfGateQueue {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues one job and wakes a consumer.
    pub fn push(&self, job: T) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !st.closed {
            st.jobs.push_back(job);
        }
        drop(st);
        self.ready.notify_all();
    }

    /// Marks the queue closed (correctly, under the lock) and wakes
    /// everyone.
    pub fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }

    /// SEEDED BUG: waits at most once (`if`, not `while`), so a spurious
    /// wakeup returns `None` even though the queue is open and a job may
    /// still arrive.
    pub fn pop_wait(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.jobs.is_empty() && !st.closed {
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.jobs.pop_front()
    }
}
