//! Model checks for the real `simcore::sync::TaskQueue` protocol.
//!
//! simcore is compiled with its `detcheck` feature here (see this
//! crate's dev-dependencies), so the queue under test is the production
//! Mutex+Condvar implementation running on the shim primitives — every
//! lock, wait and notify is a scheduler yield point, and each test
//! exhaustively explores the interleavings within the preemption bound.

use detcheck::Config;
use simcore::sync::TaskQueue;
use std::sync::Arc;

fn cfg(preemptions: usize) -> Config {
    Config {
        max_preemptions: preemptions,
        ..Config::default()
    }
}

/// Producer and consumer on separate threads: both pushed jobs must come
/// out, in FIFO order, and close-then-drain must observe shutdown.
#[test]
fn push_pop_close_two_threads() {
    let explored = detcheck::check_named("taskqueue-push-pop-close", cfg(2), || {
        let q: Arc<TaskQueue<u32>> = Arc::new(TaskQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            detcheck::thread::spawn(move || {
                q.push_all([1, 2]);
                q.close();
            })
        };
        // pop_wait must deliver both jobs whether it runs before, after,
        // or interleaved with the producer — and then observe shutdown.
        assert_eq!(q.pop_wait(), Some(1), "FIFO order violated");
        assert_eq!(q.pop_wait(), Some(2), "FIFO order violated");
        assert_eq!(q.pop_wait(), None, "close not observed after drain");
        producer.join().unwrap();
        assert!(q.is_closed());
    });
    assert!(explored.exhausted, "schedule tree not exhausted");
    assert!(explored.executions >= 4, "suspiciously few interleavings");
    println!(
        "taskqueue-push-pop-close: explored {} interleavings (exhaustive)",
        explored.executions
    );
}

/// A non-blocking `try_pop` stealer racing a blocking `pop_wait`
/// consumer over a 2-job backlog (3 threads): every job is delivered
/// exactly once, whoever wins each pop.
#[test]
fn try_pop_races_pop_wait_three_threads() {
    let explored = detcheck::check_named("taskqueue-steal-race", cfg(2), || {
        let q: Arc<TaskQueue<u32>> = Arc::new(TaskQueue::new());
        q.push_all([1, 2]);
        let consumer = {
            let q = Arc::clone(&q);
            detcheck::thread::spawn(move || q.pop_wait())
        };
        let stealer = {
            let q = Arc::clone(&q);
            detcheck::thread::spawn(move || q.try_pop())
        };
        // The coordinator steals too, then closes so a consumer that lost
        // every race wakes up and exits instead of parking forever.
        let mine = q.try_pop();
        q.close();
        let got_consumer = consumer.join().unwrap();
        let got_stealer = stealer.join().unwrap();
        let mut got: Vec<u32> = [mine, got_consumer, got_stealer]
            .into_iter()
            .flatten()
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "jobs lost or duplicated under racing pops");
    });
    assert!(explored.exhausted, "schedule tree not exhausted");
    println!(
        "taskqueue-steal-race: explored {} interleavings (exhaustive)",
        explored.executions
    );
}

/// Regression for the lost-wakeup audit of `TaskQueue::close`: a consumer
/// already parked (or about to park) when `close` runs must always wake
/// and observe shutdown. The seeded-buggy variant of this exact scenario
/// (notify before flag set) deadlocks — see `detect.rs`.
#[test]
fn close_wakes_blocked_consumer() {
    let explored = detcheck::check_named("taskqueue-close-wakes", cfg(3), || {
        let q: Arc<TaskQueue<u32>> = Arc::new(TaskQueue::new());
        let consumer = {
            let q = Arc::clone(&q);
            detcheck::thread::spawn(move || q.pop_wait())
        };
        q.close();
        assert_eq!(
            consumer.join().unwrap(),
            None,
            "consumer woke with a job from a closed empty queue"
        );
    });
    assert!(explored.exhausted, "schedule tree not exhausted");
    println!(
        "taskqueue-close-wakes: explored {} interleavings (exhaustive)",
        explored.executions
    );
}

/// `push_all` racing `close`: the push either lands before the close
/// (job is drainable) or after (job silently dropped) — never a panic,
/// a deadlock, or a half-enqueued state.
#[test]
fn push_racing_close_is_atomic() {
    let explored = detcheck::check_named("taskqueue-push-close-race", cfg(3), || {
        let q: Arc<TaskQueue<u32>> = Arc::new(TaskQueue::new());
        let pusher = {
            let q = Arc::clone(&q);
            detcheck::thread::spawn(move || q.push_all([9]))
        };
        q.close();
        pusher.join().unwrap();
        assert!(q.is_closed());
        // Either outcome is linearizable; a second pop after a successful
        // one must observe the drained, closed queue.
        match q.pop_wait() {
            Some(v) => {
                assert_eq!(v, 9);
                assert_eq!(q.pop_wait(), None, "queue held more than was pushed");
            }
            None => assert!(q.is_empty(), "dropped push left residue"),
        }
    });
    assert!(explored.exhausted, "schedule tree not exhausted");
    println!(
        "taskqueue-push-close-race: explored {} interleavings (exhaustive)",
        explored.executions
    );
}
