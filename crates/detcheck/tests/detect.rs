//! Detection-power tests: the checker must catch each seeded bug in
//! `detcheck::fixtures` with a replayable schedule, and must be
//! deterministic run to run.

use detcheck::fixtures::{IfGateQueue, LostWakeupQueue};
use detcheck::{replay, Config, FailureKind, Outcome};
use std::sync::Arc;

/// The scenario every fixture test runs: one consumer blocks on an empty
/// queue while the coordinator closes it.
fn lost_wakeup_scenario() {
    let q: Arc<LostWakeupQueue<u32>> = Arc::new(LostWakeupQueue::new());
    let consumer = {
        let q = Arc::clone(&q);
        detcheck::thread::spawn(move || q.pop_wait())
    };
    q.close();
    assert_eq!(consumer.join().unwrap(), None);
}

/// The seeded notify-before-flag-set `close` must be caught as a
/// deadlock (the lost wakeup leaves the consumer parked forever), and
/// the reported schedule must replay to the same failure.
#[test]
fn lost_wakeup_close_is_caught_and_replayable() {
    let cfg = Config {
        max_preemptions: 2,
        ..Config::default()
    };
    let outcome = detcheck::explore(cfg.clone(), lost_wakeup_scenario);
    let failure = outcome
        .failure()
        .expect("seeded lost-wakeup close must be caught");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected a deadlock, got: {failure}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "failing schedule must be replayable"
    );
    assert!(!failure.trace.is_empty(), "trace must list the ops");
    println!(
        "lost wakeup caught after {} interleavings; schedule {:?}",
        failure.executions, failure.schedule
    );

    // Replay the exact interleaving from the schedule alone: same bug,
    // first try.
    let replayed = replay(cfg, &failure.schedule, lost_wakeup_scenario);
    let again = replayed
        .failure()
        .expect("replaying the failing schedule must reproduce the failure");
    assert!(
        matches!(again.kind, FailureKind::Deadlock { .. }),
        "replay produced a different failure: {again}"
    );
    assert_eq!(again.executions, 1, "replay must be a single execution");
}

/// The `if`-instead-of-`while` wait gate passes under default exploration
/// (no notify is ever early) but is caught once spurious wakeups are
/// explored — documenting both the bug class and the knob that covers it.
#[test]
fn if_gate_caught_only_under_spurious_wakeups() {
    let scenario = || {
        let q: Arc<IfGateQueue<u32>> = Arc::new(IfGateQueue::new());
        let consumer = {
            let q = Arc::clone(&q);
            detcheck::thread::spawn(move || q.pop_wait())
        };
        q.push(7);
        assert_eq!(
            consumer.join().unwrap(),
            Some(7),
            "a pushed job was lost by the consumer"
        );
    };

    let base = Config {
        max_preemptions: 2,
        ..Config::default()
    };
    let without = detcheck::explore(base.clone(), scenario);
    assert!(
        without.failure().is_none(),
        "without spurious wakeups the if-gate looks correct: {:?}",
        without.failure().map(ToString::to_string)
    );

    let with = detcheck::explore(
        Config {
            spurious_wakeups: true,
            ..base
        },
        scenario,
    );
    let failure = with
        .failure()
        .expect("spurious-wakeup exploration must catch the if-gate");
    assert!(
        matches!(failure.kind, FailureKind::Panic { .. }),
        "expected the consumer's assertion to fail, got: {failure}"
    );
    println!(
        "if-gate caught after {} interleavings; schedule {:?}",
        failure.executions, failure.schedule
    );
}

/// A spin-wait on an atomic that nobody sets: every interleaving blows
/// the op budget, reported as a livelock suspect rather than hanging CI.
#[test]
fn spin_livelock_trips_op_budget() {
    let outcome = detcheck::explore(
        Config {
            max_preemptions: 1,
            max_ops: 200,
            ..Config::default()
        },
        || {
            let flag = detcheck::sync::AtomicBool::new(false);
            while !flag.load(detcheck::sync::Ordering::SeqCst) {
                // detcheck models this spin as an infinite op stream.
            }
        },
    );
    let failure = outcome.failure().expect("spin must trip the op budget");
    assert!(
        matches!(failure.kind, FailureKind::OpBudget { .. }),
        "expected an op-budget failure, got: {failure}"
    );
}

/// Exploration is deterministic: the same scenario explores the same
/// number of interleavings and finds the same failing schedule twice.
#[test]
fn exploration_is_deterministic() {
    let cfg = Config {
        max_preemptions: 2,
        ..Config::default()
    };
    let a = detcheck::explore(cfg.clone(), lost_wakeup_scenario);
    let b = detcheck::explore(cfg, lost_wakeup_scenario);
    match (a, b) {
        (Outcome::Failed(fa), Outcome::Failed(fb)) => {
            assert_eq!(fa.executions, fb.executions, "exploration order diverged");
            assert_eq!(fa.schedule, fb.schedule, "failing schedule diverged");
        }
        (a, b) => panic!("expected two identical failures, got {a:?} then {b:?}"),
    }
}
