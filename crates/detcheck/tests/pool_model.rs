//! Model checks for the real `deepserve::pool::WorkerPool` protocol:
//! round dispatch → completion → reassembly with epoch stamping,
//! drop-while-parked teardown, and the panic-poisoning drain.
//!
//! deepserve is compiled with its `detcheck` feature here, so the pool
//! under test runs the production TaskQueue, mpsc completion channel and
//! thread spawn/join on the shim primitives. These scenarios carry many
//! more yield points than the TaskQueue ones (engine advances, channel
//! traffic, teardown), so the preemption bound is kept small and an
//! execution cap guards the CI wall-clock budget; the counts printed per
//! test record how much of the tree each run covered.

use deepserve::{PoolMember, WorkerPool};
use detcheck::Config;
use flowserve::{Engine, EngineConfig, Pacing};
use llm_model::{ExecCostModel, ModelSpec, Parallelism};
use npu::specs::ClusterSpec;
use simcore::SimTime;

fn cfg(preemptions: usize, max_executions: usize) -> Config {
    Config {
        max_preemptions: preemptions,
        max_executions,
        ..Config::default()
    }
}

fn test_engine() -> Engine {
    let cluster = ClusterSpec::gen2_cluster(1);
    let cost = ExecCostModel::new(
        cluster.server.chip.clone(),
        cluster.hccs,
        ModelSpec::internal_34b(),
        Parallelism::tp(4),
    );
    Engine::new(EngineConfig::colocated(), cost)
}

fn members(n: u64) -> Vec<PoolMember> {
    (1..=n)
        .map(|i| PoolMember {
            at: SimTime::from_secs(i),
            engine: test_engine(),
            buf: Vec::new(),
        })
        .collect()
}

/// Two dispatch rounds through a 2-lane pool (coordinator + 1 worker):
/// every chunk must come back stamped with the round's epoch (a stale
/// completion fails the coordinator's assert), and reassembly must
/// restore original member order no matter which lane won each chunk.
#[test]
fn round_dispatch_reassembly_epochs() {
    let explored = detcheck::check_named("pool-round-reassembly", cfg(3, 30_000), || {
        let mut pool = WorkerPool::new(2);
        for _ in 0..2 {
            let mut m = members(3);
            pool.advance(Pacing::SingleStep, &mut m);
            let ats: Vec<SimTime> = m.iter().map(|x| x.at).collect();
            let expect: Vec<SimTime> = (1..=3).map(SimTime::from_secs).collect();
            assert_eq!(ats, expect, "pool reassembly reordered the wave");
        }
    });
    println!(
        "pool-round-reassembly: explored {} interleavings (exhausted: {})",
        explored.executions, explored.exhausted
    );
}

/// Dropping a pool whose workers never received a job: `close` must wake
/// every parked worker and every join must return, under every
/// interleaving of park vs. close (this is the teardown path the
/// lost-wakeup audit is about — a notify-before-flag `close` deadlocks
/// here).
#[test]
fn drop_while_parked_teardown() {
    let explored = detcheck::check_named("pool-drop-while-parked", cfg(2, 30_000), || {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 2);
        drop(pool);
    });
    println!(
        "pool-drop-while-parked: explored {} interleavings (exhausted: {})",
        explored.executions, explored.exhausted
    );
}

/// The panic-poisoning drain: an injected worker panic must come back as
/// a poisoned completion and re-raise on the coordinator — never a
/// deadlocked `recv` — and the poisoned pool must still tear down
/// (close + join) cleanly afterwards, under every explored interleaving.
#[test]
fn panic_poisoning_drain() {
    let explored = detcheck::check_named("pool-panic-drain", cfg(2, 30_000), || {
        let mut pool = WorkerPool::new(2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.inject_worker_panic();
        }))
        .expect_err("injected panic must re-raise on the coordinator");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("worker pool poisoned"),
            "unexpected poison message: {msg}"
        );
        drop(pool);
    });
    println!(
        "pool-panic-drain: explored {} interleavings (exhausted: {})",
        explored.executions, explored.exhausted
    );
}
