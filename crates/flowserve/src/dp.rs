//! Data parallelism within a single TE (§4.2).
//!
//! "FlowServe supports DP within a single TE instance, optimized for
//! DeepSeek's multi-latent attention (MLA) to reduce redundant caching.
//! we define multiple DP groups within FlowServe while retaining its
//! centralized scheduler, different from SGLang's design of running
//! distributed schedulers at each executor. Each DP group is assigned a
//! dedicated RTC replica at the master, ensuring isolated caching and
//! memory management."
//!
//! [`DpEngine`] is that centralized master: one submission surface, `dp`
//! inner engines each owning its own RTC replica. Routing is
//! locality-first (a group that already caches the prompt's prefix keeps
//! it), falling back to least load — the same priorities as the JE-level
//! scheduler, applied within the TE.

use crate::config::EngineConfig;
use crate::engine::{Engine, EngineEvent, SubmitOutcome};
use crate::request::NewRequest;
use crate::rtc::PopulateTicket;
use llm_model::ExecCostModel;
use simcore::SimTime;

/// Identifies a DP group within one TE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DpGroup(pub u32);

/// A TE-internal data-parallel engine: a centralized scheduler over `dp`
/// engine replicas with isolated RTC state.
pub struct DpEngine {
    groups: Vec<Engine>,
}

impl DpEngine {
    /// Builds `dp` replicas. Each replica prices its own forward passes
    /// with the same cost model (they are identical hardware slices) and
    /// owns a dedicated RTC replica.
    ///
    /// # Panics
    ///
    /// Panics if `dp` is zero.
    pub fn new(dp: u32, cfg: EngineConfig, cost: ExecCostModel) -> Self {
        assert!(dp >= 1, "DpEngine: dp must be >= 1");
        let groups = (0..dp)
            .map(|_| Engine::new(cfg.clone(), cost.clone()))
            .collect();
        DpEngine { groups }
    }

    /// Number of DP groups.
    pub fn dp(&self) -> u32 {
        self.groups.len() as u32
    }

    /// Read access to one group's engine (stats, RTC inspection).
    pub fn group(&self, g: DpGroup) -> &Engine {
        &self.groups[g.0 as usize]
    }

    /// Total requests across all groups.
    pub fn load(&self) -> usize {
        self.groups.iter().map(|g| g.load()).sum()
    }

    /// Centralized routing: prefer the group whose RTC replica holds the
    /// longest prefix of the prompt (MLA KV is expensive to recompute and,
    /// being TP-replicated, lives wholly in one group); break ties / cold
    /// prompts by least load. Returns the chosen group and the engine's
    /// outcome.
    pub fn submit(&mut self, now: SimTime, req: NewRequest) -> (DpGroup, SubmitOutcome) {
        let mut best: (usize, usize, usize) = (0, 0, usize::MAX); // (idx, match, load)
        for (i, g) in self.groups.iter_mut().enumerate() {
            let matched = g.rtc_mut().match_by_prefix_token(&req.prompt).tokens;
            let load = g.load();
            let better = matched > best.1 || (matched == best.1 && load < best.2);
            if better {
                best = (i, matched, load);
            }
        }
        let g = DpGroup(best.0 as u32);
        let outcome = self.groups[best.0].submit(now, req);
        (g, outcome)
    }

    /// Forwards a populate completion to the owning group.
    pub fn populate_transfer_done(&mut self, now: SimTime, group: DpGroup, ticket: PopulateTicket) {
        self.groups[group.0 as usize].populate_transfer_done(now, ticket);
    }

    /// Earliest wake across groups.
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        self.groups.iter().filter_map(|g| g.next_wake(now)).min()
    }

    /// Advances every group due at `now`; events are tagged with their
    /// group for the caller's bookkeeping.
    pub fn advance(&mut self, now: SimTime) -> Vec<(DpGroup, EngineEvent)> {
        let mut out = Vec::new();
        for (i, g) in self.groups.iter_mut().enumerate() {
            for ev in g.advance(now) {
                out.push((DpGroup(i as u32), ev));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use crate::tokenizer::synthetic_tokens;
    use llm_model::{ModelSpec, Parallelism};
    use npu::specs::ClusterSpec;

    fn mla_cost() -> ExecCostModel {
        let c = ClusterSpec::gen2_cluster(1);
        ExecCostModel::new(
            c.server.chip.clone(),
            c.hccs,
            ModelSpec::deepseek_mla(),
            Parallelism::tp(4),
        )
    }

    fn req(id: u64, seed: u64, len: usize, out: u32, at: SimTime) -> NewRequest {
        NewRequest {
            id: RequestId(id),
            prompt: synthetic_tokens(seed, len, 64_000).into(),
            target_output: out,
            arrival: at,
            cache_id: None,
        }
    }

    fn drain(dp: &mut DpEngine, mut now: SimTime) -> (SimTime, usize) {
        let mut finished = 0;
        while let Some(w) = dp.next_wake(now) {
            now = w;
            for (_, ev) in dp.advance(now) {
                if matches!(ev, EngineEvent::Finished { .. }) {
                    finished += 1;
                }
            }
        }
        (now, finished)
    }

    #[test]
    fn cold_requests_spread_by_load() {
        let mut dp = DpEngine::new(4, EngineConfig::colocated(), mla_cost());
        let mut groups = std::collections::HashSet::new();
        for i in 0..4 {
            let (g, out) = dp.submit(SimTime::ZERO, req(i, 100 + i, 512, 8, SimTime::ZERO));
            assert!(out.accepted);
            groups.insert(g);
        }
        assert_eq!(groups.len(), 4, "cold prompts must fan out across groups");
        let (_, finished) = drain(&mut dp, SimTime::ZERO);
        assert_eq!(finished, 4);
    }

    #[test]
    fn repeat_prompt_sticks_to_its_cache_group() {
        let mut dp = DpEngine::new(4, EngineConfig::colocated(), mla_cost());
        let (g1, _) = dp.submit(SimTime::ZERO, req(1, 7, 1024, 8, SimTime::ZERO));
        let (now, _) = drain(&mut dp, SimTime::ZERO);
        // Load the *other* groups so least-load would pick one of them.
        let t = now + simcore::SimDuration::from_secs(1);
        for i in 0..3 {
            dp.submit(t, req(10 + i, 200 + i, 512, 400, t));
        }
        // The repeat prompt must still route to its cache-holding group.
        let (g2, _) = dp.submit(t, req(2, 7, 1024, 8, t));
        assert_eq!(g1, g2, "locality must dominate load for cached prompts");
        drain(&mut dp, t);
    }

    #[test]
    fn rtc_replicas_are_isolated() {
        let mut dp = DpEngine::new(2, EngineConfig::colocated(), mla_cost());
        let (g, _) = dp.submit(SimTime::ZERO, req(1, 9, 640, 4, SimTime::ZERO));
        drain(&mut dp, SimTime::ZERO);
        let prompt = synthetic_tokens(9, 640, 64_000);
        let holder = dp.group(g).rtc();
        let other = dp.group(DpGroup(1 - g.0)).rtc();
        assert!(holder.cached_nodes() > 0);
        assert_eq!(
            other.cached_nodes(),
            0,
            "the other replica must not see the insertion"
        );
        let _ = prompt;
    }

    #[test]
    fn wake_aggregation_is_min_over_groups() {
        let mut dp = DpEngine::new(2, EngineConfig::colocated(), mla_cost());
        assert!(dp.next_wake(SimTime::ZERO).is_none());
        dp.submit(SimTime::ZERO, req(1, 1, 256, 4, SimTime::ZERO));
        assert_eq!(dp.next_wake(SimTime::ZERO), Some(SimTime::ZERO));
    }
}
