//! Engine-level request state.

use crate::block::BlockTable;
use crate::rtc::{AcquiredPrefix, CacheId, PopulateTicket};
use crate::tokenizer::Prompt;
use simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// Globally unique request identifier (assigned by the platform frontend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub struct RequestId(pub u64);

/// What a caller hands the engine.
#[derive(Debug, Clone)]
pub struct NewRequest {
    /// Identity.
    pub id: RequestId,
    /// Tokenized prompt (shared by reference; see [`Prompt`]).
    pub prompt: Prompt,
    /// Ground-truth decode length (simulation oracle; the engine stops
    /// there, schedulers may only see a noisy prediction of it).
    pub target_output: u32,
    /// Platform arrival time (for JCT accounting).
    pub arrival: SimTime,
    /// Optional explicit context-cache id to match/register.
    pub cache_id: Option<CacheId>,
}

/// Engine-side lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for an asynchronous KV populate before becoming schedulable.
    WaitingPopulate,
    /// In the admission queue.
    Queued,
    /// Prefill chunks in flight.
    Prefilling,
    /// Generating tokens.
    Decoding,
    /// Prefill done on a prefill-only TE; KV awaiting migration.
    AwaitingMigration,
    /// Done (all tokens emitted, or migrated out).
    Finished,
}

/// One request as the engine tracks it.
#[derive(Debug)]
pub struct EngineRequest {
    /// Immutable submission data.
    pub new: NewRequest,
    /// Current phase.
    pub phase: Phase,
    /// Prompt tokens satisfied from cache at admission.
    pub cached_tokens: usize,
    /// Prompt tokens prefilled so far (including cached).
    pub prefilled_tokens: usize,
    /// Output tokens generated so far.
    pub generated: u32,
    /// Physical KV mapping.
    pub table: BlockTable,
    /// Pinned cached prefix, if any.
    pub acquired: Option<AcquiredPrefix>,
    /// In-flight populate ticket, if any.
    pub populate: Option<PopulateTicket>,
    /// When the first output token was emitted.
    pub first_token_at: Option<SimTime>,
    /// When the request finished.
    pub finished_at: Option<SimTime>,
    /// Number of times this request was preempted (recompute restarts).
    pub preemptions: u32,
}

impl EngineRequest {
    /// Wraps a submission.
    pub fn new(new: NewRequest, block_size: usize) -> Self {
        EngineRequest {
            new,
            phase: Phase::Queued,
            cached_tokens: 0,
            prefilled_tokens: 0,
            generated: 0,
            table: BlockTable::new(block_size),
            acquired: None,
            populate: None,
            first_token_at: None,
            finished_at: None,
            preemptions: 0,
        }
    }

    /// Prompt length in tokens.
    pub fn prompt_len(&self) -> usize {
        self.new.prompt.len()
    }

    /// Tokens still needing prefill. After a recompute preemption the
    /// already-generated output tokens are part of the context that must be
    /// re-prefilled, so they count here; in the normal flow `generated` is
    /// zero throughout the prefill phase.
    pub fn prefill_remaining(&self) -> usize {
        (self.prompt_len() + self.generated as usize).saturating_sub(self.prefilled_tokens)
    }

    /// Whether decode has produced everything it should.
    pub fn decode_done(&self) -> bool {
        self.generated >= self.new.target_output
    }

    /// Request-level latency metrics; `None` until finished.
    pub fn latency(&self) -> Option<simcore::RequestLatency> {
        let first = self.first_token_at?;
        let end = self.finished_at?;
        let ttft = first.since(self.new.arrival);
        let jct = end.since(self.new.arrival);
        let tpot = if self.generated > 1 {
            SimDuration::from_nanos(end.since(first).as_nanos() / (self.generated as u64 - 1))
        } else {
            SimDuration::ZERO
        };
        Some(simcore::RequestLatency {
            ttft,
            tpot,
            jct,
            output_tokens: self.generated as u64,
        })
    }
}

/// Slot-addressed arena for engine request state.
///
/// The engine resolves `RequestId -> state` many times per iteration; a
/// plain `HashMap<RequestId, EngineRequest>` additionally rehashes the
/// whole table as load grows and offers only hasher-ordered iteration,
/// which the determinism lint must waive around. The arena keeps requests
/// in a slab of reusable slots (freed slots recycled LIFO — a pure function
/// of the submit/finish history, so replays are bit-identical) with a
/// compact id -> slot index. Iteration is in slot order: deterministic by
/// construction, no waiver needed. Memory stays O(peak in-flight), not
/// O(total submitted).
#[derive(Debug, Default)]
pub struct RequestArena {
    slots: Vec<Option<EngineRequest>>,
    free: Vec<u32>,
    index: HashMap<RequestId, u32>,
}

impl RequestArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests currently stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Inserts `req` under `id`, reusing a freed slot when one exists.
    /// Inserting an id that is already present replaces the old state
    /// (loud in debug builds — the engine never does this on purpose).
    pub fn insert(&mut self, id: RequestId, req: EngineRequest) {
        if let Some(&slot) = self.index.get(&id) {
            debug_assert!(false, "arena invariant: duplicate insert of {id:?}");
            self.slots[slot as usize] = Some(req);
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(req);
                s
            }
            None => {
                self.slots.push(Some(req));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(id, slot);
    }

    /// Shared access by id.
    pub fn get(&self, id: RequestId) -> Option<&EngineRequest> {
        let &slot = self.index.get(&id)?;
        self.slots[slot as usize].as_ref()
    }

    /// Mutable access by id.
    pub fn get_mut(&mut self, id: RequestId) -> Option<&mut EngineRequest> {
        let &slot = self.index.get(&id)?;
        self.slots[slot as usize].as_mut()
    }

    /// Removes and returns the request, recycling its slot.
    pub fn remove(&mut self, id: RequestId) -> Option<EngineRequest> {
        let slot = self.index.remove(&id)?;
        let req = self.slots[slot as usize].take();
        debug_assert!(req.is_some(), "arena invariant: indexed slot was empty");
        self.free.push(slot);
        req
    }

    /// All stored requests in slot order (deterministic: slot assignment is
    /// a pure function of the submit/finish history).
    pub fn values(&self) -> impl Iterator<Item = &EngineRequest> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// All stored ids in slot order.
    pub fn ids(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.values().map(|r| r.new.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(prompt_len: usize, target: u32) -> EngineRequest {
        EngineRequest::new(
            NewRequest {
                id: RequestId(1),
                prompt: crate::tokenizer::synthetic_tokens(1, prompt_len, 64_000).into(),
                target_output: target,
                arrival: SimTime::from_secs(1),
                cache_id: None,
            },
            16,
        )
    }

    #[test]
    fn fresh_request_state() {
        let r = req(100, 50);
        assert_eq!(r.phase, Phase::Queued);
        assert_eq!(r.prefill_remaining(), 100);
        assert!(!r.decode_done());
        assert!(r.latency().is_none());
    }

    #[test]
    fn latency_math() {
        let mut r = req(100, 3);
        r.first_token_at = Some(SimTime::from_secs(2));
        r.finished_at = Some(SimTime::from_secs(4));
        r.generated = 3;
        let lat = r.latency().unwrap();
        assert_eq!(lat.ttft, SimDuration::from_secs(1));
        assert_eq!(lat.jct, SimDuration::from_secs(3));
        // 2 inter-token gaps over 2 seconds.
        assert_eq!(lat.tpot, SimDuration::from_secs(1));
        assert_eq!(lat.output_tokens, 3);
    }

    #[test]
    fn single_token_request_has_zero_tpot() {
        let mut r = req(10, 1);
        r.first_token_at = Some(SimTime::from_secs(2));
        r.finished_at = Some(SimTime::from_secs(2));
        r.generated = 1;
        assert_eq!(r.latency().unwrap().tpot, SimDuration::ZERO);
    }

    fn arena_req(id: u64) -> EngineRequest {
        EngineRequest::new(
            NewRequest {
                id: RequestId(id),
                prompt: crate::tokenizer::synthetic_tokens(id, 8, 64_000).into(),
                target_output: 4,
                arrival: SimTime::ZERO,
                cache_id: None,
            },
            16,
        )
    }

    #[test]
    fn arena_reuses_slots_and_iterates_in_slot_order() {
        let mut a = RequestArena::new();
        for i in 0..4 {
            a.insert(RequestId(i), arena_req(i));
        }
        assert_eq!(a.len(), 4);
        assert!(a.get(RequestId(2)).is_some());
        // Free two, insert two: slots recycle LIFO, capacity stays at 4.
        a.remove(RequestId(1));
        a.remove(RequestId(2));
        a.insert(RequestId(10), arena_req(10));
        a.insert(RequestId(11), arena_req(11));
        assert_eq!(a.slots.len(), 4);
        // Slot order: 0 kept slot 0, 10 took freed slot 2 (LIFO), 11 took
        // slot 1, 3 kept slot 3.
        let ids: Vec<u64> = a.ids().map(|r| r.0).collect();
        assert_eq!(ids, vec![0, 11, 10, 3]);
        assert!(a.get(RequestId(1)).is_none());
        assert!(a.remove(RequestId(1)).is_none());
        assert_eq!(a.values().count(), 4);
    }
}
