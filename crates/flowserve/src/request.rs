//! Engine-level request state.

use crate::block::BlockTable;
use crate::rtc::{AcquiredPrefix, CacheId, PopulateTicket};
use crate::tokenizer::TokenId;
use simcore::{SimDuration, SimTime};

/// Globally unique request identifier (assigned by the platform frontend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub struct RequestId(pub u64);

/// What a caller hands the engine.
#[derive(Debug, Clone)]
pub struct NewRequest {
    /// Identity.
    pub id: RequestId,
    /// Tokenized prompt.
    pub prompt: Vec<TokenId>,
    /// Ground-truth decode length (simulation oracle; the engine stops
    /// there, schedulers may only see a noisy prediction of it).
    pub target_output: u32,
    /// Platform arrival time (for JCT accounting).
    pub arrival: SimTime,
    /// Optional explicit context-cache id to match/register.
    pub cache_id: Option<CacheId>,
}

/// Engine-side lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for an asynchronous KV populate before becoming schedulable.
    WaitingPopulate,
    /// In the admission queue.
    Queued,
    /// Prefill chunks in flight.
    Prefilling,
    /// Generating tokens.
    Decoding,
    /// Prefill done on a prefill-only TE; KV awaiting migration.
    AwaitingMigration,
    /// Done (all tokens emitted, or migrated out).
    Finished,
}

/// One request as the engine tracks it.
#[derive(Debug)]
pub struct EngineRequest {
    /// Immutable submission data.
    pub new: NewRequest,
    /// Current phase.
    pub phase: Phase,
    /// Prompt tokens satisfied from cache at admission.
    pub cached_tokens: usize,
    /// Prompt tokens prefilled so far (including cached).
    pub prefilled_tokens: usize,
    /// Output tokens generated so far.
    pub generated: u32,
    /// Physical KV mapping.
    pub table: BlockTable,
    /// Pinned cached prefix, if any.
    pub acquired: Option<AcquiredPrefix>,
    /// In-flight populate ticket, if any.
    pub populate: Option<PopulateTicket>,
    /// When the first output token was emitted.
    pub first_token_at: Option<SimTime>,
    /// When the request finished.
    pub finished_at: Option<SimTime>,
    /// Number of times this request was preempted (recompute restarts).
    pub preemptions: u32,
}

impl EngineRequest {
    /// Wraps a submission.
    pub fn new(new: NewRequest, block_size: usize) -> Self {
        EngineRequest {
            new,
            phase: Phase::Queued,
            cached_tokens: 0,
            prefilled_tokens: 0,
            generated: 0,
            table: BlockTable::new(block_size),
            acquired: None,
            populate: None,
            first_token_at: None,
            finished_at: None,
            preemptions: 0,
        }
    }

    /// Prompt length in tokens.
    pub fn prompt_len(&self) -> usize {
        self.new.prompt.len()
    }

    /// Tokens still needing prefill. After a recompute preemption the
    /// already-generated output tokens are part of the context that must be
    /// re-prefilled, so they count here; in the normal flow `generated` is
    /// zero throughout the prefill phase.
    pub fn prefill_remaining(&self) -> usize {
        (self.prompt_len() + self.generated as usize).saturating_sub(self.prefilled_tokens)
    }

    /// Whether decode has produced everything it should.
    pub fn decode_done(&self) -> bool {
        self.generated >= self.new.target_output
    }

    /// Request-level latency metrics; `None` until finished.
    pub fn latency(&self) -> Option<simcore::RequestLatency> {
        let first = self.first_token_at?;
        let end = self.finished_at?;
        let ttft = first.since(self.new.arrival);
        let jct = end.since(self.new.arrival);
        let tpot = if self.generated > 1 {
            SimDuration::from_nanos(end.since(first).as_nanos() / (self.generated as u64 - 1))
        } else {
            SimDuration::ZERO
        };
        Some(simcore::RequestLatency {
            ttft,
            tpot,
            jct,
            output_tokens: self.generated as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(prompt_len: usize, target: u32) -> EngineRequest {
        EngineRequest::new(
            NewRequest {
                id: RequestId(1),
                prompt: crate::tokenizer::synthetic_tokens(1, prompt_len, 64_000),
                target_output: target,
                arrival: SimTime::from_secs(1),
                cache_id: None,
            },
            16,
        )
    }

    #[test]
    fn fresh_request_state() {
        let r = req(100, 50);
        assert_eq!(r.phase, Phase::Queued);
        assert_eq!(r.prefill_remaining(), 100);
        assert!(!r.decode_done());
        assert!(r.latency().is_none());
    }

    #[test]
    fn latency_math() {
        let mut r = req(100, 3);
        r.first_token_at = Some(SimTime::from_secs(2));
        r.finished_at = Some(SimTime::from_secs(4));
        r.generated = 3;
        let lat = r.latency().unwrap();
        assert_eq!(lat.ttft, SimDuration::from_secs(1));
        assert_eq!(lat.jct, SimDuration::from_secs(3));
        // 2 inter-token gaps over 2 seconds.
        assert_eq!(lat.tpot, SimDuration::from_secs(1));
        assert_eq!(lat.output_tokens, 3);
    }

    #[test]
    fn single_token_request_has_zero_tpot() {
        let mut r = req(10, 1);
        r.first_token_at = Some(SimTime::from_secs(2));
        r.finished_at = Some(SimTime::from_secs(2));
        r.generated = 1;
        assert_eq!(r.latency().unwrap().tpot, SimDuration::ZERO);
    }
}
