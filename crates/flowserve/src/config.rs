//! Engine configuration: serving mode, engine version, scheduler knobs.

use serde::Serialize;

/// What role this engine plays (§4.5 task-level disaggregation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EngineMode {
    /// Prefill and decode share the engine (chunked prefill mixes them).
    Colocated,
    /// Prefill-only TE: computes KV + first token, then ships KV out.
    PrefillOnly,
    /// Decode-only TE: receives KV, generates the remaining tokens.
    DecodeOnly,
}

/// Engine-version cost profile (Figure 3's v1/v2/v3).
///
/// The three versions differ in how much CPU work sits on the NPU critical
/// path. One iteration's wall time is
///
/// ```text
/// sync : npu + overlap_cpu + residual_cpu
/// async: max(npu, overlap_cpu) + residual_cpu
/// ```
///
/// where `overlap_cpu` is the scheduling + IPC work that async execution
/// (v2+) moves off the critical path, and `residual_cpu` is what stays
/// synchronous (sampling, output plumbing) — shrunk again by v3's
/// data-structure and sampling optimizations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EngineVersion {
    /// Version label.
    pub name: &'static str,
    /// Whether scheduling overlaps with NPU execution (§4.2 asynchronous
    /// execution).
    pub async_sched: bool,
    /// Overlappable CPU cost per iteration, fixed part (µs).
    pub overlap_base_us: f64,
    /// Overlappable CPU cost per batched sequence (µs).
    pub overlap_per_seq_us: f64,
    /// Synchronous residual per iteration, fixed part (µs).
    pub residual_base_us: f64,
    /// Synchronous residual per batched sequence (µs).
    pub residual_per_seq_us: f64,
}

impl EngineVersion {
    /// v1 (late 2023): fully synchronous scheduler, heavyweight IPC.
    pub fn v1() -> Self {
        EngineVersion {
            name: "v1",
            async_sched: false,
            overlap_base_us: 6_000.0,
            overlap_per_seq_us: 180.0,
            residual_base_us: 1_000.0,
            residual_per_seq_us: 80.0,
        }
    }

    /// v2: asynchronous scheduling + IPC optimization ("more than 2x
    /// improvements when the TPOT SLA was set to 50ms").
    pub fn v2() -> Self {
        EngineVersion {
            async_sched: true,
            name: "v2",
            ..Self::v1()
        }
    }

    /// v3: data-structure and sampling optimizations ("roughly 20%
    /// improvement" over v2).
    pub fn v3() -> Self {
        EngineVersion {
            name: "v3",
            async_sched: true,
            overlap_base_us: 5_000.0,
            overlap_per_seq_us: 150.0,
            residual_base_us: 600.0,
            residual_per_seq_us: 45.0,
        }
    }

    /// CPU cost components for a batch of `seqs` sequences, in seconds:
    /// `(overlappable, residual)`.
    pub fn cpu_costs(&self, seqs: usize) -> (f64, f64) {
        let overlap = (self.overlap_base_us + self.overlap_per_seq_us * seqs as f64) / 1e6;
        let residual = (self.residual_base_us + self.residual_per_seq_us * seqs as f64) / 1e6;
        (overlap, residual)
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, Serialize)]
pub struct EngineConfig {
    /// Serving role.
    pub mode: EngineMode,
    /// Version cost profile.
    pub version: EngineVersion,
    /// Tokens per KV block.
    pub block_size: usize,
    /// Maximum concurrently decoding sequences.
    pub max_batch: usize,
    /// Chunked-prefill token budget per iteration (colocated mode). Also
    /// the per-iteration prefill budget in prefill-only mode.
    pub prefill_chunk_tokens: usize,
    /// Whether chunked prefill mixes with decode (colocated mode). When
    /// off, a prefill iteration runs alone (decode stalls).
    pub chunked_prefill: bool,
    /// Fraction of HBM reserved for activations/workspace.
    pub kv_reserve_frac: f64,
    /// Host-DRAM KV pool size in blocks (tier-2 cache).
    pub dram_blocks: usize,
    /// Implicit prefix caching on/off.
    pub prefix_caching: bool,
    /// Whether prefill-only TEs also insert computed KV into their local
    /// cache before shipping it (enables cross-request reuse on prefill
    /// TEs).
    pub cache_on_prefill: bool,
    /// Use the fitted cost model to gate populate (fetch only if cheaper
    /// than recompute). When off, always populate on any DRAM hit.
    pub populate_cost_model: bool,
    /// Estimated aggregate DRAM->HBM populate bandwidth (bytes/s) for the
    /// cost-model decision (actual timing is charged by the clock owner).
    pub populate_bandwidth: f64,
    /// Background swapper low-watermark: keep at least this many HBM
    /// blocks free by demoting cold cache to DRAM off the critical path.
    pub swap_low_watermark_blocks: usize,
}

impl EngineConfig {
    /// Production-flavoured defaults for a colocated engine.
    pub fn colocated() -> Self {
        EngineConfig {
            mode: EngineMode::Colocated,
            version: EngineVersion::v3(),
            block_size: crate::block::DEFAULT_BLOCK_SIZE,
            max_batch: 256,
            prefill_chunk_tokens: 512,
            chunked_prefill: true,
            kv_reserve_frac: 0.1,
            dram_blocks: 65_536,
            prefix_caching: true,
            cache_on_prefill: true,
            populate_cost_model: true,
            populate_bandwidth: 64e9,
            swap_low_watermark_blocks: 64,
        }
    }

    /// Defaults for a prefill-only TE.
    pub fn prefill_only() -> Self {
        EngineConfig {
            mode: EngineMode::PrefillOnly,
            prefill_chunk_tokens: 4096,
            ..Self::colocated()
        }
    }

    /// Defaults for a decode-only TE.
    pub fn decode_only() -> Self {
        EngineConfig {
            mode: EngineMode::DecodeOnly,
            ..Self::colocated()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_ordered_by_overhead() {
        let (o1, r1) = EngineVersion::v1().cpu_costs(64);
        let (o2, r2) = EngineVersion::v2().cpu_costs(64);
        let (o3, r3) = EngineVersion::v3().cpu_costs(64);
        assert_eq!((o1, r1), (o2, r2), "v2 changes overlap, not cost");
        assert!(o3 < o2 && r3 < r2, "v3 cuts CPU work");
        assert!(!EngineVersion::v1().async_sched);
        assert!(EngineVersion::v2().async_sched);
    }

    #[test]
    fn cpu_cost_scales_with_batch() {
        let v = EngineVersion::v3();
        let (o8, r8) = v.cpu_costs(8);
        let (o64, r64) = v.cpu_costs(64);
        assert!(o64 > o8 && r64 > r8);
    }

    #[test]
    fn mode_presets_differ_where_expected() {
        let c = EngineConfig::colocated();
        let p = EngineConfig::prefill_only();
        let d = EngineConfig::decode_only();
        assert_eq!(c.mode, EngineMode::Colocated);
        assert_eq!(p.mode, EngineMode::PrefillOnly);
        assert_eq!(d.mode, EngineMode::DecodeOnly);
        assert!(p.prefill_chunk_tokens > c.prefill_chunk_tokens);
    }
}
