//! # flowserve — the FlowServe serving engine
//!
//! Rust reproduction of FlowServe, DeepServe's in-house LLM serving engine
//! (§4 of the paper), built on three principles:
//!
//! * **Microkernel-inspired design** — each function is its own module with
//!   a narrow interface: [`tokenizer`] (independent, scales on its own),
//!   [`rtc`] (Relational Tensor Cache: caching + memory management),
//!   [`distflow`] (tensor transfer), [`engine`] (scheduling + model
//!   execution).
//! * **NPU-centric execution** — the engine's iteration timing keeps the
//!   NPU busy: async scheduling overlaps CPU work with the forward pass,
//!   KV prefetch runs off the critical path, background swapping never
//!   blocks compute.
//! * **SPMD-based design** — one master owns scheduling/caching/networking
//!   decisions; per-NPU executors are priced by the roofline cost model.
//!
//! The engine serves three roles (§4.5): PD-colocated (chunked prefill
//! mixed with decode), prefill-only, and decode-only TEs, with KV handoff
//! planned by DistFlow.

#![forbid(unsafe_code)]

pub mod block;
pub mod config;
pub mod distflow;
pub mod dp;
pub mod engine;
pub mod pp;
pub mod request;
pub mod rtc;
pub mod tokenizer;

pub use block::{BlockId, BlockPool, BlockTable, OutOfBlocks, DEFAULT_BLOCK_SIZE};
pub use config::{EngineConfig, EngineMode, EngineVersion};
pub use distflow::{Backend, BufferInfo, DistFlow, DistFlowError, MemTier, TransferPlan};
pub use dp::{DpEngine, DpGroup};
pub use engine::{Engine, EngineEvent, EngineStats, Pacing, PendingPopulate, SubmitOutcome};
pub use pp::{plan_prefill, ChunkPlacement, PipelinePlan};
pub use request::{EngineRequest, NewRequest, Phase, RequestArena, RequestId};
pub use rtc::{CacheId, PopulateStatus, PopulateTicket, PrefixMatch, Rtc, RtcConfig};
pub use tokenizer::{synthetic_tokens, Prompt, TokenId, Tokenizer};
