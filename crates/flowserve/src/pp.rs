//! Pipeline-parallel micro-batch scheduling (§4.2).
//!
//! "We optimize our scheduler for PP by running a centralized scheduler at
//! the first stage of PP; other stages only accept requests from previous
//! stages. (1) Memory resources are managed in one place, making it
//! easy to preempt sequences across micro-batches; (2) With chunked prefill
//! enabled, the scheduler distributes chunks across consecutive
//! micro-batches, rather than sticking to just one micro-batch. This helps
//! reduce TTFT by at least 20%."
//!
//! This module is that first-stage scheduler's planning math: given a
//! prompt cut into chunks and a `pp`-deep pipeline, it computes per-chunk
//! completion times under the two placements the paper compares:
//!
//! * **same-micro-batch** — all of a request's chunks ride one micro-batch
//!   slot, so consecutive chunks are serialized a full pipeline round
//!   apart;
//! * **distributed** — chunks go to *consecutive* micro-batches, entering
//!   the pipeline one stage-time apart and draining back-to-back.

use simcore::SimDuration;

/// How the first-stage scheduler places a request's prefill chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPlacement {
    /// All chunks in one micro-batch slot (the baseline the paper
    /// improves on).
    SameMicroBatch,
    /// Chunks spread across consecutive micro-batches (FlowServe's
    /// design).
    Distributed,
}

/// A planned pipeline execution of one request's prefill.
#[derive(Debug, Clone)]
pub struct PipelinePlan {
    /// Completion time of each chunk's last pipeline stage, relative to
    /// the request entering the first stage.
    pub chunk_done: Vec<SimDuration>,
}

impl PipelinePlan {
    /// When the final chunk drains — the prefill's contribution to TTFT.
    pub fn ttft_component(&self) -> SimDuration {
        self.chunk_done.last().copied().unwrap_or(SimDuration::ZERO)
    }
}

/// Plans `n_chunks` equal chunks through a `pp`-stage pipeline where one
/// stage takes `stage_time` per chunk.
///
/// Same-micro-batch: chunk `i` can only re-enter the pipeline when its
/// slot comes around again, a full `pp * stage_time` later; completion of
/// chunk i = `(i * pp + pp) * stage_time`.
///
/// Distributed: chunk `i` enters at `i * stage_time` (the next
/// micro-batch) and drains after its `pp` stages: completion =
/// `(i + pp) * stage_time`.
///
/// # Panics
///
/// Panics if `pp` or `n_chunks` is zero.
pub fn plan_prefill(
    pp: u32,
    n_chunks: usize,
    stage_time: SimDuration,
    placement: ChunkPlacement,
) -> PipelinePlan {
    assert!(pp >= 1, "plan_prefill: pp must be >= 1");
    assert!(n_chunks >= 1, "plan_prefill: need at least one chunk");
    let chunk_done = (0..n_chunks)
        .map(|i| {
            let slots = match placement {
                ChunkPlacement::SameMicroBatch => i as u64 * pp as u64 + pp as u64,
                ChunkPlacement::Distributed => i as u64 + pp as u64,
            };
            stage_time.saturating_mul(slots)
        })
        .collect();
    PipelinePlan { chunk_done }
}

/// TTFT reduction from distributing chunks, as a fraction of the
/// same-micro-batch TTFT. The paper reports "at least 20%"; for any
/// `n_chunks >= 2` and `pp >= 2` this evaluates to
/// `1 - (n-1+pp) / (n*pp)`, which is >= 25% already at `pp = 2, n = 2`
/// and grows with both.
pub fn distributed_ttft_gain(pp: u32, n_chunks: usize) -> f64 {
    let stage = SimDuration::from_micros(1_000);
    let same = plan_prefill(pp, n_chunks, stage, ChunkPlacement::SameMicroBatch)
        .ttft_component()
        .as_secs_f64();
    let dist = plan_prefill(pp, n_chunks, stage, ChunkPlacement::Distributed)
        .ttft_component()
        .as_secs_f64();
    1.0 - dist / same
}

#[cfg(test)]
mod tests {
    use super::*;

    const STAGE: SimDuration = SimDuration::from_millis(50);

    #[test]
    fn single_chunk_is_identical_either_way() {
        let a = plan_prefill(4, 1, STAGE, ChunkPlacement::SameMicroBatch);
        let b = plan_prefill(4, 1, STAGE, ChunkPlacement::Distributed);
        assert_eq!(a.ttft_component(), b.ttft_component());
        assert_eq!(a.ttft_component(), SimDuration::from_millis(200));
    }

    #[test]
    fn distribution_pipelines_chunks() {
        // 4 chunks through a 4-stage pipeline.
        let same = plan_prefill(4, 4, STAGE, ChunkPlacement::SameMicroBatch);
        let dist = plan_prefill(4, 4, STAGE, ChunkPlacement::Distributed);
        // Serialized: 4 rounds of 4 stages = 800 ms.
        assert_eq!(same.ttft_component(), SimDuration::from_millis(800));
        // Pipelined: (4 - 1 + 4) stages = 350 ms.
        assert_eq!(dist.ttft_component(), SimDuration::from_millis(350));
    }

    #[test]
    fn chunk_completions_are_monotone() {
        for placement in [ChunkPlacement::SameMicroBatch, ChunkPlacement::Distributed] {
            let p = plan_prefill(3, 6, STAGE, placement);
            for w in p.chunk_done.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn paper_claim_at_least_20_percent() {
        // "This helps reduce TTFT by at least 20%" — holds for every
        // realistic (pp, chunk-count) combination.
        for pp in 2..=8u32 {
            for chunks in 2..=32usize {
                let gain = distributed_ttft_gain(pp, chunks);
                assert!(
                    gain >= 0.20,
                    "pp={pp} chunks={chunks}: gain {gain:.2} below the paper's 20%"
                );
            }
        }
        // And it is exactly zero when there is nothing to distribute.
        assert_eq!(distributed_ttft_gain(4, 1), 0.0);
    }

    #[test]
    fn no_pipeline_means_no_gain() {
        // pp = 1: every chunk runs back-to-back either way.
        let a = plan_prefill(1, 5, STAGE, ChunkPlacement::SameMicroBatch);
        let b = plan_prefill(1, 5, STAGE, ChunkPlacement::Distributed);
        assert_eq!(a.ttft_component(), b.ttft_component());
    }
}
