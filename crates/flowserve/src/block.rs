//! Paged KV-cache blocks: pools and per-sequence block tables.
//!
//! RTC "includes a traditional block table, originally proposed by vLLM,
//! for managing data blocks" (§4.3). Blocks are fixed-size token spans;
//! pools are per-tier (HBM on each executor, host DRAM); tables map a
//! sequence's logical token positions to physical blocks. Reference counts
//! make prefix sharing safe: a cached prefix block appears in many tables at
//! once and is freed only when the last user and the cache index drop it.

use serde::Serialize;

/// Default tokens per block (vLLM's classic value).
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// A physical block handle within one pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct BlockId(pub u32);

/// Pool-level allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBlocks {
    /// Blocks requested.
    pub requested: usize,
    /// Blocks free at the time of the request.
    pub available: usize,
}

impl std::fmt::Display for OutOfBlocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of blocks: requested {}, available {}",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfBlocks {}

/// A fixed-capacity pool of reference-counted blocks.
#[derive(Debug, Clone)]
pub struct BlockPool {
    capacity: usize,
    free: Vec<BlockId>,
    ref_counts: Vec<u32>,
}

impl BlockPool {
    /// Creates a pool of `capacity` blocks, all free.
    pub fn new(capacity: usize) -> Self {
        BlockPool {
            capacity,
            // Pop from the back; reversed init keeps low ids allocated first
            // (stable, readable traces).
            free: (0..capacity as u32).rev().map(BlockId).collect(),
            ref_counts: vec![0; capacity],
        }
    }

    /// Total block count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently free blocks.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Currently allocated blocks.
    pub fn in_use(&self) -> usize {
        self.capacity - self.free.len()
    }

    /// Allocates one block with refcount 1.
    pub fn alloc(&mut self) -> Result<BlockId, OutOfBlocks> {
        match self.free.pop() {
            Some(id) => {
                self.ref_counts[id.0 as usize] = 1;
                Ok(id)
            }
            None => Err(OutOfBlocks {
                requested: 1,
                available: 0,
            }),
        }
    }

    /// Allocates `n` blocks atomically: all or nothing.
    pub fn alloc_many(&mut self, n: usize) -> Result<Vec<BlockId>, OutOfBlocks> {
        if self.free.len() < n {
            return Err(OutOfBlocks {
                requested: n,
                available: self.free.len(),
            });
        }
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.alloc() {
                Ok(b) => out.push(b),
                Err(e) => {
                    // Unreachable given the length check above; roll back to
                    // keep the all-or-nothing contract rather than panic.
                    debug_assert!(false, "alloc_many: pool shrank mid-allocation");
                    for b in out {
                        self.decref(b);
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Adds a reference to a live block (prefix sharing).
    ///
    /// # Panics
    ///
    /// Panics if the block is free — sharing a freed block is a
    /// use-after-free in disguise.
    pub fn incref(&mut self, id: BlockId) {
        let rc = &mut self.ref_counts[id.0 as usize];
        assert!(*rc > 0, "incref on free block {id:?}");
        *rc += 1;
    }

    /// Drops a reference; frees the block when the count hits zero.
    /// Returns `true` if the block was freed.
    ///
    /// # Panics
    ///
    /// Panics on double-free.
    pub fn decref(&mut self, id: BlockId) -> bool {
        let rc = &mut self.ref_counts[id.0 as usize];
        assert!(*rc > 0, "decref on free block {id:?}");
        *rc -= 1;
        if *rc == 0 {
            self.free.push(id);
            true
        } else {
            false
        }
    }

    /// Current reference count of a block.
    pub fn refcount(&self, id: BlockId) -> u32 {
        self.ref_counts[id.0 as usize]
    }
}

/// A sequence's mapping from logical token positions to physical blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockTable {
    block_size: usize,
    blocks: Vec<BlockId>,
    /// Tokens with KV actually written (<= blocks.len() * block_size).
    tokens: usize,
}

impl BlockTable {
    /// Creates an empty table with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        BlockTable {
            block_size,
            blocks: Vec::new(),
            tokens: 0,
        }
    }

    /// Tokens of KV recorded.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Physical blocks backing the sequence, in logical order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Blocks needed to extend the sequence by `new_tokens`.
    pub fn blocks_needed(&self, new_tokens: usize) -> usize {
        let total = self.tokens + new_tokens;
        let need = total.div_ceil(self.block_size);
        need.saturating_sub(self.blocks.len())
    }

    /// Appends pre-allocated blocks and advances the token count.
    ///
    /// # Panics
    ///
    /// Panics if the supplied blocks don't exactly cover `new_tokens`.
    pub fn extend(&mut self, new_blocks: Vec<BlockId>, new_tokens: usize) {
        assert_eq!(
            new_blocks.len(),
            self.blocks_needed(new_tokens),
            "extend: block count must match blocks_needed({new_tokens})"
        );
        self.blocks.extend(new_blocks);
        self.tokens += new_tokens;
        debug_assert!(self.tokens <= self.blocks.len() * self.block_size);
    }

    /// Like [`BlockTable::extend`] but borrows the block list, so hot-path
    /// callers can keep reusing their scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if the supplied blocks don't exactly cover `new_tokens`.
    pub fn extend_from_slice(&mut self, new_blocks: &[BlockId], new_tokens: usize) {
        assert_eq!(
            new_blocks.len(),
            self.blocks_needed(new_tokens),
            "extend_from_slice: block count must match blocks_needed({new_tokens})"
        );
        self.blocks.extend_from_slice(new_blocks);
        self.tokens += new_tokens;
        debug_assert!(self.tokens <= self.blocks.len() * self.block_size);
    }

    /// Free slots in the last block.
    pub fn slack(&self) -> usize {
        self.blocks.len() * self.block_size - self.tokens
    }

    /// Takes the blocks out, resetting the table (for free/migrate).
    pub fn take_blocks(&mut self) -> Vec<BlockId> {
        self.tokens = 0;
        std::mem::take(&mut self.blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut p = BlockPool::new(4);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(p.in_use(), 2);
        assert!(p.decref(a));
        assert_eq!(p.available(), 3);
        assert!(p.decref(b));
        assert_eq!(p.available(), 4);
    }

    #[test]
    fn alloc_many_is_atomic() {
        let mut p = BlockPool::new(4);
        let _held = p.alloc_many(3).unwrap();
        let err = p.alloc_many(2).unwrap_err();
        assert_eq!(err.requested, 2);
        assert_eq!(err.available, 1);
        // The failed call must not have consumed anything.
        assert_eq!(p.available(), 1);
    }

    #[test]
    fn sharing_delays_free() {
        let mut p = BlockPool::new(2);
        let a = p.alloc().unwrap();
        p.incref(a); // now shared by two users
        assert!(!p.decref(a), "first drop must not free");
        assert_eq!(p.available(), 1);
        assert!(p.decref(a), "second drop frees");
        assert_eq!(p.available(), 2);
    }

    #[test]
    #[should_panic(expected = "decref on free block")]
    fn double_free_panics() {
        let mut p = BlockPool::new(1);
        let a = p.alloc().unwrap();
        p.decref(a);
        p.decref(a);
    }

    #[test]
    #[should_panic(expected = "incref on free block")]
    fn incref_freed_panics() {
        let mut p = BlockPool::new(1);
        let a = p.alloc().unwrap();
        p.decref(a);
        p.incref(a);
    }

    #[test]
    fn table_tracks_block_boundaries() {
        let mut pool = BlockPool::new(16);
        let mut t = BlockTable::new(16);
        // 20 tokens -> 2 blocks.
        assert_eq!(t.blocks_needed(20), 2);
        t.extend(pool.alloc_many(2).unwrap(), 20);
        assert_eq!(t.tokens(), 20);
        assert_eq!(t.slack(), 12);
        // 12 more fit in the slack.
        assert_eq!(t.blocks_needed(12), 0);
        t.extend(vec![], 12);
        assert_eq!(t.slack(), 0);
        // The next token needs a fresh block.
        assert_eq!(t.blocks_needed(1), 1);
        t.extend(pool.alloc_many(1).unwrap(), 1);
        assert_eq!(t.blocks().len(), 3);
    }

    #[test]
    fn take_blocks_resets() {
        let mut pool = BlockPool::new(4);
        let mut t = BlockTable::new(16);
        t.extend(pool.alloc_many(2).unwrap(), 32);
        let blocks = t.take_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(t.tokens(), 0);
        assert!(t.blocks().is_empty());
    }

    #[test]
    #[should_panic(expected = "must match blocks_needed")]
    fn extend_with_wrong_block_count_panics() {
        let mut t = BlockTable::new(16);
        t.extend(vec![BlockId(0)], 40); // needs 3 blocks, given 1
    }
}
