//! Distributed Flow (DistFlow): the tensor transfer engine.
//!
//! DistFlow's "core function is to *transfer* tensors across tiered storage
//! within a single TE and between distributed TEs in a peer-to-peer manner"
//! (§4.4). It exposes a control plane (`LinkCluster`) and one data-plane
//! verb, `transfer(srcInfo, dstInfo)`, over raw buffer descriptors — no
//! block abstraction, exactly as the paper specifies. Backends are chosen by
//! topology: memory-copy primitives inside a SuperPod's shared-memory
//! domain, HCCL peer-to-peer over HCCS, RoCE across domains.
//!
//! In this reproduction DistFlow is the *planning* layer: it validates
//! links, sizes transfers, picks backends and tracks statistics. Actually
//! spending simulated time happens where the clock lives — the fabric
//! ([`npu::Fabric`]) for cross-TE traffic, the engine's PCIe channels for
//! intra-TE tier moves. That split mirrors the real system, where DistFlow's
//! scalable threading model hands bytes to NICs it does not own.

use npu::fabric::LinkKind;
use npu::specs::NpuId;
use serde::Serialize;
use simcore::trace::{Trace, TraceLevel, Tracer};
use simcore::{Counters, SimTime};
use std::collections::{BTreeMap, HashSet};

/// A memory tier a buffer can live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MemTier {
    /// Device HBM.
    Hbm,
    /// Host DRAM.
    Dram,
    /// Local SSD.
    Ssd,
}

/// A raw buffer descriptor — DistFlow "does not operate with a block-based
/// abstraction"; callers hand it addresses and sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BufferInfo {
    /// The NPU whose address space (or host) holds the buffer.
    pub npu: NpuId,
    /// Tier the bytes live in.
    pub tier: MemTier,
    /// Buffer length in bytes.
    pub bytes: u64,
}

/// Transfer backend, selected per the cluster generation (§4.4: "In a
/// regular Ascend cluster, we primarily use HCCL peer-to-peer APIs, while in
/// Ascend SuperPod, we adapt to standard memory copy primitives").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Backend {
    /// `memcpy`-class primitives: same NPU, or SuperPod global shared
    /// memory.
    Memcpy,
    /// HCCL `send`/`recv` over the scale-up fabric.
    HcclP2p,
    /// RDMA over the scale-out fabric.
    Roce,
}

/// A planned transfer, ready for the clock owner to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TransferPlan {
    /// Source endpoint NPU.
    pub src: NpuId,
    /// Destination endpoint NPU.
    pub dst: NpuId,
    /// Bytes to move.
    pub bytes: u64,
    /// Backend DistFlow selected.
    pub backend: Backend,
    /// Whether the move crosses TE/host boundaries (fabric) or stays on
    /// the local PCIe/HBM complex.
    pub crosses_fabric: bool,
}

/// Errors from the DistFlow control/data plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistFlowError {
    /// `transfer` between endpoints that were never linked.
    NotLinked { src: NpuId, dst: NpuId },
    /// Source and destination sizes disagree.
    SizeMismatch { src_bytes: u64, dst_bytes: u64 },
}

impl std::fmt::Display for DistFlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistFlowError::NotLinked { src, dst } => {
                write!(f, "no LinkCluster connection between {src:?} and {dst:?}")
            }
            DistFlowError::SizeMismatch {
                src_bytes,
                dst_bytes,
            } => write!(
                f,
                "buffer size mismatch: src {src_bytes} vs dst {dst_bytes}"
            ),
        }
    }
}

impl std::error::Error for DistFlowError {}

/// The DistFlow module instance owned by one engine executor (or the
/// platform, for cross-TE moves).
#[derive(Debug)]
pub struct DistFlow {
    /// Whether endpoints share a global-shared-memory domain (SuperPod).
    superpod_shared_memory: bool,
    /// Established peer links (unordered pairs), from `LinkCluster`.
    links: HashSet<(NpuId, NpuId)>,
    counters: Counters,
    tracer: Tracer,
    /// Cumulative bytes moved per unordered endpoint pair (link occupancy).
    link_bytes: BTreeMap<(NpuId, NpuId), u64>,
}

fn pair(a: NpuId, b: NpuId) -> (NpuId, NpuId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl DistFlow {
    /// Creates a DistFlow instance. `superpod_shared_memory` selects the
    /// memcpy backend for intra-domain traffic.
    pub fn new(superpod_shared_memory: bool) -> Self {
        DistFlow {
            superpod_shared_memory,
            links: HashSet::new(),
            counters: Counters::new(),
            tracer: Tracer::disabled(),
            link_bytes: BTreeMap::new(),
        }
    }

    /// Turns on sim-time tracing of planned transfers.
    pub fn enable_tracing(&mut self, level: TraceLevel, capacity: usize) {
        self.tracer = Tracer::enabled(level, capacity);
    }

    /// Drains everything traced so far.
    pub fn take_trace(&mut self) -> Trace {
        self.tracer.take()
    }

    /// Control plane: establishes connections among all pairs of `peers`
    /// (the paper's `LinkCluster`).
    pub fn link_cluster(&mut self, peers: &[NpuId]) {
        for (i, &a) in peers.iter().enumerate() {
            for &b in &peers[i + 1..] {
                self.links.insert(pair(a, b));
            }
        }
        self.counters.incr("distflow.link_cluster");
    }

    /// Whether two endpoints are linked (same endpoint is always linked).
    pub fn is_linked(&self, a: NpuId, b: NpuId) -> bool {
        a == b || self.links.contains(&pair(a, b))
    }

    /// Control plane: tears down every link touching `npu` (TE failure /
    /// deregistration). Re-linking after repair is `link_cluster` again —
    /// link establishment is idempotent set insertion.
    pub fn unlink_npu(&mut self, npu: NpuId) {
        let before = self.links.len();
        self.links.retain(|&(a, b)| a != npu && b != npu);
        if self.links.len() != before {
            self.counters.incr("distflow.unlink_npu");
        }
    }

    /// Data plane: plans `transfer(srcInfo, dstInfo)`. Validates the link
    /// and sizes, picks a backend by topology, and returns the plan for the
    /// clock owner to execute.
    pub fn transfer(
        &mut self,
        src: BufferInfo,
        dst: BufferInfo,
        link_kind: LinkKind,
    ) -> Result<TransferPlan, DistFlowError> {
        self.transfer_at(SimTime::ZERO, src, dst, link_kind)
    }

    /// [`DistFlow::transfer`] with a sim-time stamp for tracing and link
    /// occupancy accounting. Planning itself is instantaneous; `now` only
    /// timestamps the emitted records.
    pub fn transfer_at(
        &mut self,
        now: SimTime,
        src: BufferInfo,
        dst: BufferInfo,
        link_kind: LinkKind,
    ) -> Result<TransferPlan, DistFlowError> {
        if src.bytes != dst.bytes {
            return Err(DistFlowError::SizeMismatch {
                src_bytes: src.bytes,
                dst_bytes: dst.bytes,
            });
        }
        if !self.is_linked(src.npu, dst.npu) {
            return Err(DistFlowError::NotLinked {
                src: src.npu,
                dst: dst.npu,
            });
        }
        let backend = match link_kind {
            LinkKind::Local => Backend::Memcpy,
            LinkKind::Hccs => {
                if self.superpod_shared_memory {
                    Backend::Memcpy
                } else {
                    Backend::HcclP2p
                }
            }
            LinkKind::Roce => Backend::Roce,
        };
        self.counters.incr("distflow.transfers");
        self.counters.add("distflow.bytes", src.bytes);
        *self.link_bytes.entry(pair(src.npu, dst.npu)).or_insert(0) += src.bytes;
        if self.tracer.is_enabled() {
            let backend_name = match backend {
                Backend::Memcpy => "memcpy",
                Backend::HcclP2p => "hccl_p2p",
                Backend::Roce => "roce",
            };
            self.tracer.event(
                now,
                "distflow.transfer",
                vec![
                    ("src_server", src.npu.server.into()),
                    ("src_chip", src.npu.chip.into()),
                    ("dst_server", dst.npu.server.into()),
                    ("dst_chip", dst.npu.chip.into()),
                    ("bytes", src.bytes.into()),
                    ("backend", backend_name.into()),
                    ("crosses_fabric", (src.npu != dst.npu).into()),
                ],
            );
        }
        Ok(TransferPlan {
            src: src.npu,
            dst: dst.npu,
            bytes: src.bytes,
            backend,
            crosses_fabric: src.npu != dst.npu,
        })
    }

    /// Cumulative bytes planned over the link between `a` and `b`
    /// (direction-agnostic), for per-link occupancy reporting.
    pub fn link_occupancy(&self, a: NpuId, b: NpuId) -> u64 {
        self.link_bytes.get(&pair(a, b)).copied().unwrap_or(0)
    }

    /// All links with traffic, as `((a, b), bytes)` in deterministic order.
    pub fn link_occupancies(&self) -> impl Iterator<Item = (&(NpuId, NpuId), &u64)> {
        self.link_bytes.iter()
    }

    /// Transfer statistics.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(npu: NpuId, tier: MemTier, bytes: u64) -> BufferInfo {
        BufferInfo { npu, tier, bytes }
    }

    #[test]
    fn link_cluster_connects_all_pairs() {
        let mut df = DistFlow::new(false);
        let peers = [NpuId::new(0, 0), NpuId::new(0, 1), NpuId::new(1, 0)];
        df.link_cluster(&peers);
        for (i, &a) in peers.iter().enumerate() {
            for &b in &peers[i + 1..] {
                assert!(df.is_linked(a, b));
                assert!(df.is_linked(b, a), "links are symmetric");
            }
        }
        assert!(!df.is_linked(peers[0], NpuId::new(3, 3)));
    }

    #[test]
    fn unlinked_transfer_is_rejected() {
        let mut df = DistFlow::new(false);
        let err = df
            .transfer(
                buf(NpuId::new(0, 0), MemTier::Hbm, 100),
                buf(NpuId::new(1, 0), MemTier::Hbm, 100),
                LinkKind::Roce,
            )
            .unwrap_err();
        assert!(matches!(err, DistFlowError::NotLinked { .. }));
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let mut df = DistFlow::new(false);
        let a = NpuId::new(0, 0);
        let err = df
            .transfer(
                buf(a, MemTier::Hbm, 100),
                buf(a, MemTier::Dram, 200),
                LinkKind::Local,
            )
            .unwrap_err();
        assert!(matches!(err, DistFlowError::SizeMismatch { .. }));
    }

    #[test]
    fn backend_follows_topology() {
        let mut df = DistFlow::new(false);
        let a = NpuId::new(0, 0);
        let b = NpuId::new(0, 1);
        let c = NpuId::new(1, 0);
        df.link_cluster(&[a, b, c]);
        let hccs = df
            .transfer(
                buf(a, MemTier::Hbm, 64),
                buf(b, MemTier::Hbm, 64),
                LinkKind::Hccs,
            )
            .unwrap();
        assert_eq!(hccs.backend, Backend::HcclP2p);
        assert!(hccs.crosses_fabric);
        let roce = df
            .transfer(
                buf(a, MemTier::Hbm, 64),
                buf(c, MemTier::Hbm, 64),
                LinkKind::Roce,
            )
            .unwrap();
        assert_eq!(roce.backend, Backend::Roce);
        let local = df
            .transfer(
                buf(a, MemTier::Hbm, 64),
                buf(a, MemTier::Dram, 64),
                LinkKind::Local,
            )
            .unwrap();
        assert_eq!(local.backend, Backend::Memcpy);
        assert!(!local.crosses_fabric);
    }

    #[test]
    fn superpod_prefers_memcpy_over_hccs() {
        let mut df = DistFlow::new(true);
        let a = NpuId::new(0, 0);
        let b = NpuId::new(2, 0);
        df.link_cluster(&[a, b]);
        let plan = df
            .transfer(
                buf(a, MemTier::Hbm, 64),
                buf(b, MemTier::Hbm, 64),
                LinkKind::Hccs,
            )
            .unwrap();
        assert_eq!(plan.backend, Backend::Memcpy);
    }

    #[test]
    fn stats_accumulate() {
        let mut df = DistFlow::new(false);
        let a = NpuId::new(0, 0);
        for _ in 0..3 {
            df.transfer(
                buf(a, MemTier::Hbm, 1000),
                buf(a, MemTier::Dram, 1000),
                LinkKind::Local,
            )
            .unwrap();
        }
        assert_eq!(df.counters().get("distflow.transfers"), 3);
        assert_eq!(df.counters().get("distflow.bytes"), 3000);
    }
}
