//! Block-granular radix tree over token streams.
//!
//! RTC "employs a hybrid indexing layer that combines radix-tree indexing
//! with ID-based indexing. each index node can point to data stored
//! either in the NPU or in local DRAM" (§4.3). This is the radix half.
//!
//! The tree is quantized to KV blocks: each node covers exactly one full
//! block of tokens, children are keyed by the *chained content hash* of the
//! next block, and only complete blocks are cached (partial tails are
//! per-request private state). A chained 64-bit hash identifies each prefix,
//! so walking a query is one hash + one map lookup per block — the same
//! trick vLLM's hash-based prefix cache uses, arranged as an explicit tree
//! so subtree operations (eviction, sharing, the JE's global prompt tree)
//! stay natural. Collisions are 2^-64-scale and ignored by design.

use crate::block::BlockId;
use crate::tokenizer::TokenId;
use simcore::SimTime;
use std::collections::BTreeMap;

/// Node handle within one tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Which tier a node's block currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Resident in executor HBM — usable by the next batch directly.
    Npu,
    /// Swapped to host DRAM — needs a populate before use.
    Dram,
}

/// Chained hash of a block-quantized prefix.
fn chain_hash(prev: u64, block_tokens: &[TokenId]) -> u64 {
    let mut h = prev ^ 0x51_7c_c1_b7_27_22_0a_95;
    for t in block_tokens {
        h ^= t.0 as u64;
        h = h.wrapping_mul(0x100000001b3);
        h = h.rotate_left(23);
    }
    h
}

#[derive(Debug)]
struct Node {
    parent: Option<NodeId>,
    /// Child edges keyed by chained block hash. A `BTreeMap`: subtree
    /// removal and frontier scans iterate it, and the freed-block order
    /// feeds the allocator (and through it, reports).
    children: BTreeMap<u64, NodeId>,
    block: BlockId,
    location: Location,
    /// Chained hash of the prefix ending at this node.
    hash: u64,
    last_access: SimTime,
    /// In-flight requests currently pinning this node.
    locks: u32,
}

/// Result of a prefix walk.
#[derive(Debug, Clone, Default)]
pub struct PrefixMatch {
    /// Matched nodes, root-most first. The usable cached prefix.
    pub nodes: Vec<NodeId>,
    /// Tokens covered by `nodes`.
    pub tokens: usize,
    /// How many of the leading nodes are NPU-resident (the rest need a
    /// populate). NPU-residency is only useful as a *prefix*: a DRAM node
    /// in the middle blocks direct use of everything after it.
    pub npu_prefix_nodes: usize,
}

impl PrefixMatch {
    /// Tokens directly usable from HBM without any transfer.
    pub fn npu_tokens(&self, block_size: usize) -> usize {
        self.npu_prefix_nodes * block_size
    }

    /// Nodes that would need a DRAM -> NPU populate to be usable.
    pub fn dram_nodes(&self) -> &[NodeId] {
        &self.nodes[self.npu_prefix_nodes..]
    }
}

/// The prefix index.
#[derive(Debug)]
pub struct RadixTree {
    block_size: usize,
    nodes: Vec<Option<Node>>,
    free_slots: Vec<u32>,
    roots: BTreeMap<u64, NodeId>,
    node_count: usize,
}

impl RadixTree {
    /// Creates an empty tree for blocks of `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        RadixTree {
            block_size,
            nodes: Vec::new(),
            free_slots: Vec::new(),
            roots: BTreeMap::new(),
            node_count: 0,
        }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Live node count.
    pub fn len(&self) -> usize {
        self.node_count
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.node_count == 0
    }

    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id.0 as usize]
            .as_ref()
            // detlint: allow(panic) — arena invariant: NodeIds only flow through children/roots maps, which are pruned in the same operation that vacates a slot; a stale id is a tree-corruption bug worth failing loudly on
            .expect("stale NodeId: node was removed")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id.0 as usize]
            .as_mut()
            // detlint: allow(panic) — arena invariant: see `node` above
            .expect("stale NodeId: node was removed")
    }

    /// Walks the longest cached prefix of `tokens` (full blocks only).
    pub fn match_prefix(&self, tokens: &[TokenId]) -> PrefixMatch {
        let mut result = PrefixMatch::default();
        let mut hash = 0u64;
        let mut map = &self.roots;
        let mut npu_streak = true;
        for block in tokens.chunks_exact(self.block_size) {
            hash = chain_hash(hash, block);
            match map.get(&hash) {
                Some(&id) => {
                    let n = self.node(id);
                    result.nodes.push(id);
                    result.tokens += self.block_size;
                    if npu_streak && n.location == Location::Npu {
                        result.npu_prefix_nodes += 1;
                    } else {
                        npu_streak = false;
                    }
                    map = &n.children;
                }
                None => break,
            }
        }
        result
    }

    /// Inserts the full blocks of `tokens`, attaching `blocks[i]` to block
    /// `i`. Blocks already present are left untouched (their existing
    /// handle is returned and `blocks[i]` is reported back as redundant).
    ///
    /// Returns `(chain, redundant)`: the node chain covering the prefix,
    /// and the caller's block ids that were already cached (caller should
    /// drop its extra reference on those).
    ///
    /// # Panics
    ///
    /// Panics if fewer blocks are supplied than full token blocks.
    pub fn insert(
        &mut self,
        now: SimTime,
        tokens: &[TokenId],
        blocks: &[BlockId],
    ) -> (Vec<NodeId>, Vec<BlockId>) {
        let full_blocks = tokens.len() / self.block_size;
        assert!(
            blocks.len() >= full_blocks,
            "insert: need {full_blocks} blocks, got {}",
            blocks.len()
        );
        let mut chain = Vec::with_capacity(full_blocks);
        let mut redundant = Vec::new();
        let mut hash = 0u64;
        let mut parent: Option<NodeId> = None;
        for (i, block_tokens) in tokens.chunks_exact(self.block_size).enumerate() {
            hash = chain_hash(hash, block_tokens);
            let existing = match parent {
                Some(p) => self.node(p).children.get(&hash).copied(),
                None => self.roots.get(&hash).copied(),
            };
            let id = match existing {
                Some(id) => {
                    self.node_mut(id).last_access = now;
                    redundant.push(blocks[i]);
                    id
                }
                None => {
                    let id = self.alloc_node(Node {
                        parent,
                        children: BTreeMap::new(),
                        block: blocks[i],
                        location: Location::Npu,
                        hash,
                        last_access: now,
                        locks: 0,
                    });
                    match parent {
                        Some(p) => {
                            self.node_mut(p).children.insert(hash, id);
                        }
                        None => {
                            self.roots.insert(hash, id);
                        }
                    }
                    id
                }
            };
            chain.push(id);
            parent = Some(id);
        }
        (chain, redundant)
    }

    fn alloc_node(&mut self, n: Node) -> NodeId {
        self.node_count += 1;
        match self.free_slots.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Some(n);
                NodeId(slot)
            }
            None => {
                self.nodes.push(Some(n));
                NodeId(self.nodes.len() as u32 - 1)
            }
        }
    }

    /// Pins nodes against eviction (an in-flight request uses them).
    pub fn lock(&mut self, nodes: &[NodeId]) {
        for &id in nodes {
            self.node_mut(id).locks += 1;
        }
    }

    /// Releases pins taken by [`RadixTree::lock`].
    ///
    /// # Panics
    ///
    /// Panics if a node was not locked.
    pub fn unlock(&mut self, nodes: &[NodeId]) {
        for &id in nodes {
            let n = self.node_mut(id);
            assert!(n.locks > 0, "unlock of unlocked node {id:?}");
            n.locks -= 1;
        }
    }

    /// Updates access time (hit bookkeeping).
    pub fn touch(&mut self, now: SimTime, nodes: &[NodeId]) {
        for &id in nodes {
            self.node_mut(id).last_access = now;
        }
    }

    /// The block a node points at and its tier.
    pub fn block_of(&self, id: NodeId) -> (BlockId, Location) {
        let n = self.node(id);
        (n.block, n.location)
    }

    /// Rebinds a node to a new block in a new tier (after swap/populate).
    pub fn relocate(&mut self, id: NodeId, block: BlockId, location: Location) {
        let n = self.node_mut(id);
        n.block = block;
        n.location = location;
    }

    /// Whether a node is currently pinned.
    pub fn is_locked(&self, id: NodeId) -> bool {
        self.node(id).locks > 0
    }

    /// Unpinned *frontier* nodes of `tier` in LRU order — the eviction
    /// candidates. A node is on the tier's frontier when it lives in the
    /// tier and none of its children do. Evicting deepest-first keeps
    /// residency in each tier a contiguous prefix of every cached chain
    /// (NPU above DRAM), which is what makes populate a pure "extend the
    /// usable prefix" operation.
    pub fn evictable(&self, tier: Location) -> Vec<NodeId> {
        let mut frontier: Vec<(SimTime, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|n| (i, n)))
            .filter(|(_, n)| {
                n.locks == 0
                    && n.location == tier
                    && n.children.values().all(|&c| self.node(c).location != tier)
            })
            .map(|(i, n)| (n.last_access, NodeId(i as u32)))
            .collect();
        frontier.sort_unstable();
        frontier.into_iter().map(|(_, id)| id).collect()
    }

    /// Removes `id` and its entire subtree, returning every freed
    /// `(block, tier)` pair — used when a frontier node must be dropped
    /// outright (no DRAM room): its descendants become unreachable for
    /// matching, so their storage must be released too. Returns `None`
    /// without modifying anything if any node in the subtree is locked.
    pub fn try_remove_subtree(&mut self, id: NodeId) -> Option<Vec<(BlockId, Location)>> {
        // Collect the subtree, checking locks.
        let mut stack = vec![id];
        let mut subtree = Vec::new();
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            if node.locks > 0 {
                return None;
            }
            subtree.push(n);
            // Children come out in hash-key order; sort by NodeId to keep
            // the historical traversal (and thus block-release) order.
            let mut kids: Vec<NodeId> = node.children.values().copied().collect();
            kids.sort_unstable();
            stack.extend(kids);
        }
        // Detach the subtree root from its parent.
        let (parent, hash) = {
            let n = self.node(id);
            (n.parent, n.hash)
        };
        match parent {
            Some(p) => {
                self.node_mut(p).children.remove(&hash);
            }
            None => {
                self.roots.remove(&hash);
            }
        }
        // Release every node.
        let mut freed = Vec::with_capacity(subtree.len());
        for n in subtree {
            let Some(node) = self.nodes[n.0 as usize].take() else {
                debug_assert!(false, "subtree nodes must be live");
                continue;
            };
            freed.push((node.block, node.location));
            self.free_slots.push(n.0);
            self.node_count -= 1;
        }
        Some(freed)
    }

    /// Removes a leaf node, returning its block and tier so the caller can
    /// release or migrate the storage.
    ///
    /// # Panics
    ///
    /// Panics if the node has children or is locked.
    pub fn remove_leaf(&mut self, id: NodeId) -> (BlockId, Location) {
        let (parent, hash, block, location) = {
            let n = self.node(id);
            assert!(n.children.is_empty(), "remove_leaf on interior node");
            assert_eq!(n.locks, 0, "remove_leaf on locked node");
            (n.parent, n.hash, n.block, n.location)
        };
        match parent {
            Some(p) => {
                self.node_mut(p).children.remove(&hash);
            }
            None => {
                self.roots.remove(&hash);
            }
        }
        self.nodes[id.0 as usize] = None;
        self.free_slots.push(id.0);
        self.node_count -= 1;
        (block, location)
    }

    /// Count of nodes resident in the given tier.
    pub fn count_in(&self, tier: Location) -> usize {
        self.nodes
            .iter()
            .flatten()
            .filter(|n| n.location == tier)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::synthetic_tokens;

    const B: usize = 16;

    fn toks(seed: u64, n: usize) -> Vec<TokenId> {
        synthetic_tokens(seed, n, 64_000)
    }

    fn blocks(start: u32, n: usize) -> Vec<BlockId> {
        (start..start + n as u32).map(BlockId).collect()
    }

    #[test]
    fn insert_then_match_full_prefix() {
        let mut t = RadixTree::new(B);
        let tokens = toks(1, 64); // 4 blocks
        let (chain, redundant) = t.insert(SimTime::ZERO, &tokens, &blocks(0, 4));
        assert_eq!(chain.len(), 4);
        assert!(redundant.is_empty());
        let m = t.match_prefix(&tokens);
        assert_eq!(m.tokens, 64);
        assert_eq!(m.nodes, chain);
        assert_eq!(m.npu_prefix_nodes, 4);
    }

    #[test]
    fn partial_block_tail_is_not_cached() {
        let mut t = RadixTree::new(B);
        let tokens = toks(1, 70); // 4 full blocks + 6 tail tokens
        let (chain, _) = t.insert(SimTime::ZERO, &tokens, &blocks(0, 4));
        assert_eq!(chain.len(), 4);
        let m = t.match_prefix(&tokens);
        assert_eq!(m.tokens, 64, "tail tokens must not match");
    }

    #[test]
    fn shared_prefix_is_deduplicated() {
        let mut t = RadixTree::new(B);
        let shared = toks(1, 32);
        let mut a = shared.clone();
        a.extend(toks(2, 32));
        let mut b = shared.clone();
        b.extend(toks(3, 32));
        let (ca, red_a) = t.insert(SimTime::ZERO, &a, &blocks(0, 4));
        assert!(red_a.is_empty());
        let (cb, red_b) = t.insert(SimTime::ZERO, &b, &blocks(4, 4));
        // First two blocks of b are already cached.
        assert_eq!(red_b, vec![BlockId(4), BlockId(5)]);
        assert_eq!(ca[..2], cb[..2], "shared prefix shares nodes");
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn divergent_suffixes_do_not_match() {
        let mut t = RadixTree::new(B);
        let a = toks(1, 64);
        t.insert(SimTime::ZERO, &a, &blocks(0, 4));
        let b = toks(99, 64);
        assert_eq!(t.match_prefix(&b).tokens, 0);
    }

    #[test]
    fn dram_node_caps_npu_prefix() {
        let mut t = RadixTree::new(B);
        let tokens = toks(1, 64);
        let (chain, _) = t.insert(SimTime::ZERO, &tokens, &blocks(0, 4));
        // Swap the second block to DRAM.
        t.relocate(chain[1], BlockId(100), Location::Dram);
        let m = t.match_prefix(&tokens);
        assert_eq!(m.tokens, 64, "match still sees all 4 blocks");
        assert_eq!(m.npu_prefix_nodes, 1, "usable NPU prefix stops at DRAM");
        assert_eq!(m.dram_nodes().len(), 3);
        assert_eq!(m.npu_tokens(B), 16);
    }

    #[test]
    fn eviction_order_is_lru_leaves_only() {
        let mut t = RadixTree::new(B);
        let a = toks(1, 48); // 3 chained blocks
        let (chain, _) = t.insert(SimTime::from_secs(1), &a, &blocks(0, 3));
        // Only the deepest node is a leaf.
        let ev = t.evictable(Location::Npu);
        assert_eq!(ev, vec![chain[2]]);
        // Lock it: nothing evictable.
        t.lock(&[chain[2]]);
        assert!(t.evictable(Location::Npu).is_empty());
        t.unlock(&[chain[2]]);
        // Remove the leaf; its parent becomes the frontier.
        let (blk, loc) = t.remove_leaf(chain[2]);
        assert_eq!(blk, BlockId(2));
        assert_eq!(loc, Location::Npu);
        assert_eq!(t.evictable(Location::Npu), vec![chain[1]]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lru_orders_by_access_time() {
        let mut t = RadixTree::new(B);
        let a = toks(1, 16);
        let b = toks(2, 16);
        let (ca, _) = t.insert(SimTime::from_secs(1), &a, &blocks(0, 1));
        let (cb, _) = t.insert(SimTime::from_secs(2), &b, &blocks(1, 1));
        assert_eq!(t.evictable(Location::Npu), vec![ca[0], cb[0]]);
        // Touch `a` later: order flips.
        t.touch(SimTime::from_secs(3), &ca);
        assert_eq!(t.evictable(Location::Npu), vec![cb[0], ca[0]]);
    }

    #[test]
    #[should_panic(expected = "interior node")]
    fn removing_interior_node_panics() {
        let mut t = RadixTree::new(B);
        let a = toks(1, 32);
        let (chain, _) = t.insert(SimTime::ZERO, &a, &blocks(0, 2));
        t.remove_leaf(chain[0]);
    }

    #[test]
    fn node_slots_are_reused() {
        let mut t = RadixTree::new(B);
        let a = toks(1, 16);
        let (c1, _) = t.insert(SimTime::ZERO, &a, &blocks(0, 1));
        t.remove_leaf(c1[0]);
        let b = toks(2, 16);
        let (c2, _) = t.insert(SimTime::ZERO, &b, &blocks(1, 1));
        assert_eq!(c1[0], c2[0], "slot should be recycled");
        assert_eq!(t.len(), 1);
    }
}
