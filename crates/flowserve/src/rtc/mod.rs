//! Relational Tensor Cache (RTC): unified caching and memory management.
//!
//! RTC is FlowServe's module for "the relationship between tensors,
//! primarily on the KV cache" (§4.3). It owns the per-tier block pools, the
//! block-granular radix tree ([`radix`]), the explicit ID index, and the
//! populate/copy machinery, exposing the Table 1 API surface:
//!
//! | Paper API            | Here                                    |
//! |----------------------|-----------------------------------------|
//! | `MatchByPrefixToken` | [`Rtc::match_by_prefix_token`]          |
//! | `MatchByID`          | [`Rtc::match_by_id`]                    |
//! | `Populate`           | [`Rtc::populate`]                       |
//! | `QueryPopulate`      | [`Rtc::query_populate`]                 |
//! | `AllocBlocks`        | [`Rtc::alloc_blocks`]                   |
//! | `AppendBlock`        | [`Rtc::append_block`]                   |
//! | `Copy`               | [`Rtc::copy_to_dram`]                   |
//! | `Free`               | [`Rtc::free`]                           |
//!
//! Master/executor split: in the real system the master owns these index
//! structures while per-NPU executors move the bytes. Here the index *is*
//! the master state; byte movement is returned as token counts that the
//! engine prices (and the platform layer executes over DistFlow).

pub mod radix;

use crate::block::{BlockId, BlockPool, OutOfBlocks};
use crate::tokenizer::TokenId;
pub use radix::{Location, NodeId, PrefixMatch, RadixTree};
use simcore::trace::{Trace, TraceLevel, Tracer};
use simcore::{Counters, SimTime};
use std::collections::HashMap;

/// Explicit context-cache handle (DeepServe's context caching endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheId(pub u64);

/// Handle for an asynchronous populate operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PopulateTicket(pub u64);

/// State of a populate, as reported by [`Rtc::query_populate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulateStatus {
    /// Transfer still running.
    InFlight,
    /// Data is NPU-resident.
    Done,
    /// Ticket unknown (never issued, or long since retired).
    Unknown,
}

/// RTC sizing.
#[derive(Debug, Clone, Copy)]
pub struct RtcConfig {
    /// Tokens per KV block.
    pub block_size: usize,
    /// HBM pool capacity, in blocks (from the engine's KV headroom).
    pub npu_blocks: usize,
    /// Host-DRAM pool capacity, in blocks.
    pub dram_blocks: usize,
}

/// A pinned, NPU-resident cached prefix held by one request. Obtained from
/// [`Rtc::acquire_prefix`]; must be returned via [`Rtc::release_prefix`]
/// (pins) and [`Rtc::free`] (block references) when the request retires.
#[derive(Debug, Clone)]
pub struct AcquiredPrefix {
    /// Pinned tree nodes.
    pub nodes: Vec<NodeId>,
    /// The NPU blocks those nodes point at, in prefix order.
    pub blocks: Vec<BlockId>,
}

impl AcquiredPrefix {
    /// Tokens covered by the acquired prefix.
    pub fn tokens(&self, block_size: usize) -> usize {
        self.blocks.len() * block_size
    }
}

/// A planned DRAM -> NPU population.
#[derive(Debug, Clone)]
pub struct PopulatePlan {
    /// Ticket to pass to [`Rtc::complete_populate`] / [`Rtc::query_populate`].
    pub ticket: PopulateTicket,
    /// Tokens being moved (engine converts to bytes/time).
    pub tokens: usize,
    /// Nodes being populated, shallowest first.
    pub nodes: Vec<NodeId>,
}

#[derive(Debug)]
struct InFlightPopulate {
    nodes: Vec<NodeId>,
    /// NPU destination blocks, parallel to `nodes`.
    dst_blocks: Vec<BlockId>,
}

#[derive(Debug, Clone)]
struct IdEntry {
    nodes: Vec<NodeId>,
    tokens: usize,
}

/// The RTC master module.
#[derive(Debug)]
pub struct Rtc {
    cfg: RtcConfig,
    tree: RadixTree,
    npu_pool: BlockPool,
    dram_pool: BlockPool,
    id_index: HashMap<CacheId, IdEntry>,
    populates: HashMap<PopulateTicket, InFlightPopulate>,
    retired_populates: HashMap<PopulateTicket, ()>,
    next_ticket: u64,
    counters: Counters,
    tracer: Tracer,
    /// Last sim-time seen on a time-bearing call; stamps events emitted
    /// from methods that have no `now` parameter (match, evict).
    clock_hint: SimTime,
}

impl Rtc {
    /// Creates an RTC with the given sizing.
    pub fn new(cfg: RtcConfig) -> Self {
        Rtc {
            tree: RadixTree::new(cfg.block_size),
            npu_pool: BlockPool::new(cfg.npu_blocks),
            dram_pool: BlockPool::new(cfg.dram_blocks),
            cfg,
            id_index: HashMap::new(),
            populates: HashMap::new(),
            retired_populates: HashMap::new(),
            next_ticket: 0,
            counters: Counters::new(),
            tracer: Tracer::disabled(),
            clock_hint: SimTime::ZERO,
        }
    }

    /// Turns on sim-time tracing of cache hits/misses/evictions/populates.
    pub fn enable_tracing(&mut self, level: TraceLevel, capacity: usize) {
        self.tracer = Tracer::enabled(level, capacity);
    }

    /// Drains everything traced so far.
    pub fn take_trace(&mut self) -> Trace {
        self.tracer.take()
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.cfg.block_size
    }

    /// Free blocks in the HBM pool.
    pub fn npu_free_blocks(&self) -> usize {
        self.npu_pool.available()
    }

    /// Free blocks in the DRAM pool.
    pub fn dram_free_blocks(&self) -> usize {
        self.dram_pool.available()
    }

    /// Whether any NPU-resident cache node is currently evictable (an
    /// unpinned frontier node). When nothing is evictable, the background
    /// swapper is a guaranteed no-op regardless of the free-block
    /// watermark — the engine's fast-forward gate relies on this.
    pub fn npu_evictable(&self) -> bool {
        !self.tree.evictable(Location::Npu).is_empty()
    }

    /// Accumulated hit/miss/eviction counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Number of cached prefix nodes (NPU + DRAM).
    pub fn cached_nodes(&self) -> usize {
        self.tree.len()
    }

    // ---- Match ----

    /// `MatchByPrefixToken`: longest cached prefix of `tokens`.
    pub fn match_by_prefix_token(&mut self, tokens: &[TokenId]) -> PrefixMatch {
        let m = self.tree.match_prefix(tokens);
        if m.tokens > 0 {
            self.counters.add("rtc.match_hit_tokens", m.tokens as u64);
            if self.tracer.is_enabled() {
                self.tracer.event(
                    self.clock_hint,
                    "rtc.hit",
                    vec![
                        ("tokens", m.tokens.into()),
                        ("npu_nodes", m.npu_prefix_nodes.into()),
                    ],
                );
            }
        } else {
            self.counters.incr("rtc.match_miss");
            if self.tracer.is_enabled() {
                self.tracer.event(self.clock_hint, "rtc.miss", vec![]);
            }
        }
        m
    }

    /// `MatchByID`: cached KV registered under an explicit context-cache id.
    pub fn match_by_id(&self, id: CacheId) -> Option<PrefixMatch> {
        let entry = self.id_index.get(&id)?;
        let mut npu_prefix = 0;
        for &n in &entry.nodes {
            if self.tree.block_of(n).1 == Location::Npu {
                npu_prefix += 1;
            } else {
                break;
            }
        }
        Some(PrefixMatch {
            nodes: entry.nodes.clone(),
            tokens: entry.tokens,
            npu_prefix_nodes: npu_prefix,
        })
    }

    /// Registers a node chain under an explicit cache id and pins it until
    /// [`Rtc::release_id`]. Explicit entries survive implicit eviction.
    /// Re-registering an id releases the previous entry first.
    pub fn register_id(&mut self, id: CacheId, nodes: Vec<NodeId>) {
        self.release_id(id);
        let tokens = nodes.len() * self.cfg.block_size;
        self.tree.lock(&nodes);
        self.id_index.insert(id, IdEntry { nodes, tokens });
    }

    /// Releases an explicit cache entry; its nodes become evictable again.
    pub fn release_id(&mut self, id: CacheId) -> bool {
        if let Some(entry) = self.id_index.remove(&id) {
            self.tree.unlock(&entry.nodes);
            true
        } else {
            false
        }
    }

    // ---- Populate ----

    /// `Populate`: plans fetching the DRAM portion of `m` into HBM. The
    /// populate extends the usable NPU prefix contiguously; if HBM cannot
    /// hold everything even after eviction, the plan covers what fits.
    /// Returns `None` if there is nothing to populate (or nothing fits).
    ///
    /// The engine owns the clock: it prices `plan.tokens` and calls
    /// [`Rtc::complete_populate`] when the simulated transfer finishes.
    pub fn populate(&mut self, now: SimTime, m: &PrefixMatch) -> Option<PopulatePlan> {
        let dram_nodes: Vec<NodeId> = m.dram_nodes().to_vec();
        if dram_nodes.is_empty() {
            return None;
        }
        let mut nodes = Vec::new();
        let mut dst_blocks = Vec::new();
        for &n in &dram_nodes {
            // Skip nodes some other populate already brought in.
            if self.tree.block_of(n).1 == Location::Npu {
                continue;
            }
            match self.alloc_npu_with_eviction() {
                Ok(b) => {
                    nodes.push(n);
                    dst_blocks.push(b);
                }
                Err(_) => break, // partial populate: keep the prefix contiguous
            }
        }
        if nodes.is_empty() {
            return None;
        }
        // Pin sources so the swapper can't free them mid-flight.
        self.tree.lock(&nodes);
        let ticket = PopulateTicket(self.next_ticket);
        self.next_ticket += 1;
        let tokens = nodes.len() * self.cfg.block_size;
        self.counters.add("rtc.populate_tokens", tokens as u64);
        self.clock_hint = self.clock_hint.max(now);
        if self.tracer.is_enabled() {
            self.tracer.event(
                now,
                "rtc.populate_start",
                vec![("ticket", ticket.0.into()), ("tokens", tokens.into())],
            );
        }
        self.populates.insert(
            ticket,
            InFlightPopulate {
                nodes: nodes.clone(),
                dst_blocks,
            },
        );
        Some(PopulatePlan {
            ticket,
            tokens,
            nodes,
        })
    }

    /// `QueryPopulate`: status of a ticket.
    pub fn query_populate(&self, ticket: PopulateTicket) -> PopulateStatus {
        if self.populates.contains_key(&ticket) {
            PopulateStatus::InFlight
        } else if self.retired_populates.contains_key(&ticket) {
            PopulateStatus::Done
        } else {
            PopulateStatus::Unknown
        }
    }

    /// Completes a populate: nodes move to HBM, their DRAM copies are
    /// released. An unknown ticket — completing a transfer RTC never
    /// planned — means the engine and cache disagree about reality: loud in
    /// debug builds, ignored in release (the blocks stay where they are).
    pub fn complete_populate(&mut self, ticket: PopulateTicket) {
        let Some(inflight) = self.populates.remove(&ticket) else {
            debug_assert!(false, "complete_populate: unknown ticket {ticket:?}");
            return;
        };
        for (&node, &dst) in inflight.nodes.iter().zip(&inflight.dst_blocks) {
            let (old_block, old_loc) = self.tree.block_of(node);
            debug_assert_eq!(old_loc, Location::Dram);
            self.dram_pool.decref(old_block);
            self.tree.relocate(node, dst, Location::Npu);
        }
        self.tree.unlock(&inflight.nodes);
        if self.tracer.is_enabled() {
            self.tracer.event(
                self.clock_hint,
                "rtc.populate_done",
                vec![
                    ("ticket", ticket.0.into()),
                    ("blocks", inflight.nodes.len().into()),
                ],
            );
        }
        self.retired_populates.insert(ticket, ());
    }

    // ---- Block allocation (per-request private blocks) ----

    /// `AllocBlocks`: blocks to prefill `new_tokens` on top of an existing
    /// `table_tokens`/`table_slack` state. Evicts cold cache leaves under
    /// pressure. On success the caller owns one reference per block.
    pub fn alloc_blocks(&mut self, n_blocks: usize) -> Result<Vec<BlockId>, OutOfBlocks> {
        if n_blocks == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            match self.alloc_npu_with_eviction() {
                Ok(b) => out.push(b),
                Err(e) => {
                    // Roll back: all-or-nothing like BlockPool::alloc_many.
                    for b in out {
                        self.npu_pool.decref(b);
                    }
                    return Err(OutOfBlocks {
                        requested: n_blocks,
                        available: e.available,
                    });
                }
            }
        }
        Ok(out)
    }

    /// `AppendBlock`: one block for a decoding sequence crossing a block
    /// boundary.
    pub fn append_block(&mut self) -> Result<BlockId, OutOfBlocks> {
        self.alloc_npu_with_eviction()
    }

    fn alloc_npu_with_eviction(&mut self) -> Result<BlockId, OutOfBlocks> {
        if let Ok(b) = self.npu_pool.alloc() {
            return Ok(b);
        }
        // Evict LRU unpinned frontier nodes until one block frees up. Each
        // victim is demoted to DRAM if the DRAM pool has room, else its
        // subtree is dropped.
        loop {
            let victims = self.tree.evictable(Location::Npu);
            let mut progressed = false;
            for &victim in &victims {
                if self.evict_node(victim) {
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                return Err(OutOfBlocks {
                    requested: 1,
                    available: 0,
                });
            }
            if let Ok(b) = self.npu_pool.alloc() {
                return Ok(b);
            }
        }
    }

    /// Demotes one NPU-resident cache node: to DRAM if space allows
    /// (logical `Copy` + free), otherwise discards its subtree. Returns
    /// whether any HBM was actually freed.
    fn evict_node(&mut self, node: NodeId) -> bool {
        let (block, loc) = self.tree.block_of(node);
        debug_assert_eq!(loc, Location::Npu);
        match self.dram_pool.alloc() {
            Ok(dram_block) => {
                self.tree.relocate(node, dram_block, Location::Dram);
                self.npu_pool.decref(block);
                self.counters.incr("rtc.swap_out");
                self.counters
                    .add("rtc.swap_out_tokens", self.cfg.block_size as u64);
                if self.tracer.is_enabled() {
                    self.tracer.event(
                        self.clock_hint,
                        "rtc.swap_out",
                        vec![("tokens", self.cfg.block_size.into())],
                    );
                }
                true
            }
            Err(_) => match self.tree.try_remove_subtree(node) {
                Some(freed) => {
                    let n_freed = freed.len();
                    for (b, l) in freed {
                        match l {
                            Location::Npu => {
                                self.npu_pool.decref(b);
                            }
                            Location::Dram => {
                                self.dram_pool.decref(b);
                            }
                        }
                        self.counters.incr("rtc.evict_drop");
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            self.clock_hint,
                            "rtc.evict_drop",
                            vec![("blocks", n_freed.into())],
                        );
                    }
                    true
                }
                None => false, // locked descendant (e.g. in-flight populate)
            },
        }
    }

    /// `Copy`: explicitly demotes the LRU end of the NPU cache until at
    /// least `target_free` HBM blocks are free (background swapper duty,
    /// run off the critical path). Returns tokens moved to DRAM.
    pub fn copy_to_dram(&mut self, target_free: usize) -> usize {
        let mut moved_tokens = 0;
        while self.npu_pool.available() < target_free {
            let victims = self.tree.evictable(Location::Npu);
            let Some(&victim) = victims.first() else {
                break;
            };
            self.evict_node(victim);
            moved_tokens += self.cfg.block_size;
        }
        moved_tokens
    }

    /// `Free`: releases a request's references on its blocks.
    pub fn free(&mut self, blocks: &[BlockId]) {
        for &b in blocks {
            self.npu_pool.decref(b);
        }
    }

    // ---- Cache admission ----

    /// Acquires a matched NPU-resident prefix for a request: pins the
    /// nodes, increfs their blocks, and returns both so the caller can seed
    /// its block table and later release exactly what it took. Only the
    /// contiguous NPU prefix is acquired.
    pub fn acquire_prefix(&mut self, now: SimTime, m: &PrefixMatch) -> AcquiredPrefix {
        self.clock_hint = self.clock_hint.max(now);
        let usable: Vec<NodeId> = m.nodes[..m.npu_prefix_nodes].to_vec();
        self.tree.touch(now, &usable);
        self.tree.lock(&usable);
        let blocks = usable
            .iter()
            .map(|&n| {
                let (b, loc) = self.tree.block_of(n);
                debug_assert_eq!(loc, Location::Npu);
                self.npu_pool.incref(b);
                b
            })
            .collect();
        AcquiredPrefix {
            nodes: usable,
            blocks,
        }
    }

    /// Releases the node pins taken by [`Rtc::acquire_prefix`] (block refs
    /// are released separately via [`Rtc::free`] as part of the table).
    pub fn release_prefix(&mut self, acquired: &AcquiredPrefix) {
        self.tree.unlock(&acquired.nodes);
    }

    /// Implicit caching: registers a finished request's full prompt blocks
    /// in the prefix tree. The tree takes its own reference on newly
    /// inserted blocks; blocks already cached are reported back untouched.
    /// Returns the node chain (for explicit-ID registration).
    pub fn insert_prefix(
        &mut self,
        now: SimTime,
        tokens: &[TokenId],
        blocks: &[BlockId],
    ) -> Vec<NodeId> {
        self.clock_hint = self.clock_hint.max(now);
        let full = tokens.len() / self.cfg.block_size;
        let (chain, redundant) = self.tree.insert(now, tokens, &blocks[..full]);
        // One tree reference per *newly inserted* block: every supplied
        // block that is not in `redundant` got a node.
        let redundant_set: std::collections::HashSet<BlockId> = redundant.into_iter().collect();
        for b in &blocks[..full] {
            if !redundant_set.contains(b) {
                self.npu_pool.incref(*b);
            }
        }
        let new_blocks = full - redundant_set.len();
        self.counters.add("rtc.inserted_blocks", new_blocks as u64);
        if self.tracer.is_enabled() {
            self.tracer.event(
                now,
                "rtc.insert",
                vec![
                    ("new_blocks", new_blocks.into()),
                    ("chain", chain.len().into()),
                ],
            );
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::synthetic_tokens;

    const B: usize = 16;

    fn cfg(npu: usize, dram: usize) -> RtcConfig {
        RtcConfig {
            block_size: B,
            npu_blocks: npu,
            dram_blocks: dram,
        }
    }

    fn toks(seed: u64, n: usize) -> Vec<TokenId> {
        synthetic_tokens(seed, n, 64_000)
    }

    /// Simulates a request that prefills `tokens` and registers its prefix.
    fn prefill_and_cache(rtc: &mut Rtc, now: SimTime, tokens: &[TokenId]) -> Vec<NodeId> {
        let n_blocks = tokens.len().div_ceil(B);
        let blocks = rtc.alloc_blocks(n_blocks).unwrap();
        let chain = rtc.insert_prefix(now, tokens, &blocks);
        rtc.free(&blocks); // request ends; tree refs keep the cache alive
        chain
    }

    #[test]
    fn full_lifecycle_hit() {
        let mut rtc = Rtc::new(cfg(64, 64));
        let tokens = toks(1, 64);
        prefill_and_cache(&mut rtc, SimTime::ZERO, &tokens);

        let m = rtc.match_by_prefix_token(&tokens);
        assert_eq!(m.tokens, 64);
        assert_eq!(m.npu_prefix_nodes, 4);
        let acq = rtc.acquire_prefix(SimTime::from_secs(1), &m);
        assert_eq!(acq.blocks.len(), 4);
        assert_eq!(acq.tokens(B), 64);
        // Blocks now referenced by tree + this request.
        rtc.release_prefix(&acq);
        rtc.free(&acq.blocks);
        // Cache must still be intact.
        let m2 = rtc.match_by_prefix_token(&tokens);
        assert_eq!(m2.tokens, 64);
    }

    #[test]
    fn pressure_demotes_to_dram_then_populate_restores() {
        let mut rtc = Rtc::new(cfg(4, 8));
        let a = toks(1, 64); // fills all 4 NPU blocks
        prefill_and_cache(&mut rtc, SimTime::ZERO, &a);
        assert_eq!(rtc.npu_free_blocks(), 0);

        // A new allocation forces eviction of `a`'s LRU leaves to DRAM.
        let blocks = rtc.alloc_blocks(2).unwrap();
        assert_eq!(rtc.counters().get("rtc.swap_out"), 2);

        // `a` still fully matches but its tail is in DRAM now.
        let m = rtc.match_by_prefix_token(&a);
        assert_eq!(m.tokens, 64);
        assert_eq!(m.npu_prefix_nodes, 2);

        // Free pressure, then populate the DRAM tail back.
        rtc.free(&blocks);
        let plan = rtc.populate(SimTime::from_secs(1), &m).unwrap();
        assert_eq!(plan.tokens, 32);
        assert_eq!(rtc.query_populate(plan.ticket), PopulateStatus::InFlight);
        rtc.complete_populate(plan.ticket);
        assert_eq!(rtc.query_populate(plan.ticket), PopulateStatus::Done);

        let m2 = rtc.match_by_prefix_token(&a);
        assert_eq!(m2.npu_prefix_nodes, 4, "fully NPU-resident again");
    }

    #[test]
    fn eviction_drops_when_dram_full() {
        let mut rtc = Rtc::new(cfg(2, 0));
        let a = toks(1, 32);
        prefill_and_cache(&mut rtc, SimTime::ZERO, &a);
        let _b = rtc.alloc_blocks(2).unwrap();
        assert_eq!(rtc.counters().get("rtc.evict_drop"), 2);
        assert_eq!(rtc.match_by_prefix_token(&a).tokens, 0, "cache gone");
    }

    #[test]
    fn alloc_fails_when_everything_is_pinned() {
        let mut rtc = Rtc::new(cfg(4, 4));
        let a = toks(1, 64);
        prefill_and_cache(&mut rtc, SimTime::ZERO, &a);
        let m = rtc.match_by_prefix_token(&a);
        let acq = rtc.acquire_prefix(SimTime::ZERO, &m); // pins all 4
        let err = rtc.alloc_blocks(1).unwrap_err();
        assert_eq!(err.requested, 1);
        rtc.release_prefix(&acq);
        rtc.free(&acq.blocks);
        assert!(rtc.alloc_blocks(1).is_ok(), "unpinned cache is evictable");
    }

    #[test]
    fn explicit_id_pins_against_eviction() {
        let mut rtc = Rtc::new(cfg(4, 0));
        let a = toks(1, 32);
        let chain = prefill_and_cache(&mut rtc, SimTime::ZERO, &a);
        rtc.register_id(CacheId(42), chain.clone());

        // Pressure would normally drop these (no DRAM pool), but the ID
        // pin protects them; only the 2 free blocks are allocatable.
        assert!(rtc.alloc_blocks(2).is_ok());
        assert!(rtc.alloc_blocks(1).is_err());

        let m = rtc.match_by_id(CacheId(42)).unwrap();
        assert_eq!(m.tokens, 32);
        assert_eq!(m.npu_prefix_nodes, 2);

        assert!(rtc.release_id(CacheId(42)));
        assert!(!rtc.release_id(CacheId(42)), "double release is a no-op");
        assert!(rtc.match_by_id(CacheId(42)).is_none());
    }

    #[test]
    fn copy_to_dram_frees_npu_blocks() {
        let mut rtc = Rtc::new(cfg(4, 8));
        let a = toks(1, 64);
        prefill_and_cache(&mut rtc, SimTime::ZERO, &a);
        assert_eq!(rtc.npu_free_blocks(), 0);
        let moved = rtc.copy_to_dram(2);
        assert_eq!(moved, 32);
        assert_eq!(rtc.npu_free_blocks(), 2);
        // Content is preserved in DRAM.
        let m = rtc.match_by_prefix_token(&a);
        assert_eq!(m.tokens, 64);
    }

    #[test]
    fn shared_prefix_across_requests_is_single_copy() {
        let mut rtc = Rtc::new(cfg(16, 0));
        let shared = toks(1, 32);
        let mut a = shared.clone();
        a.extend(toks(2, 32));
        let mut b = shared.clone();
        b.extend(toks(3, 32));
        prefill_and_cache(&mut rtc, SimTime::ZERO, &a);
        let used_after_a = 16 - rtc.npu_free_blocks();
        // Second request: match first, allocate only the novel part.
        let m = rtc.match_by_prefix_token(&b);
        assert_eq!(m.tokens, 32);
        let acq = rtc.acquire_prefix(SimTime::ZERO, &m);
        let novel = rtc.alloc_blocks(2).unwrap();
        let mut all = acq.blocks.clone();
        all.extend(&novel);
        rtc.insert_prefix(SimTime::ZERO, &b, &all);
        rtc.release_prefix(&acq);
        rtc.free(&all);
        let used_after_b = 16 - rtc.npu_free_blocks();
        assert_eq!(
            used_after_b,
            used_after_a + 2,
            "only b's novel blocks add to residency"
        );
    }

    #[test]
    fn populate_is_partial_under_extreme_pressure() {
        let mut rtc = Rtc::new(cfg(4, 8));
        let a = toks(1, 64);
        prefill_and_cache(&mut rtc, SimTime::ZERO, &a);
        // Push everything to DRAM.
        rtc.copy_to_dram(4);
        let m = rtc.match_by_prefix_token(&a);
        assert_eq!(m.npu_prefix_nodes, 0);
        // Occupy 2 NPU blocks with pinned private data.
        let held = rtc.alloc_blocks(2).unwrap();
        // Populate can only bring back 2 of the 4 blocks.
        let plan = rtc.populate(SimTime::ZERO, &m).unwrap();
        assert_eq!(plan.tokens, 32);
        rtc.complete_populate(plan.ticket);
        let m2 = rtc.match_by_prefix_token(&a);
        assert_eq!(m2.npu_prefix_nodes, 2);
        rtc.free(&held);
    }

    #[test]
    fn query_unknown_ticket() {
        let rtc = Rtc::new(cfg(4, 4));
        assert_eq!(
            rtc.query_populate(PopulateTicket(999)),
            PopulateStatus::Unknown
        );
    }
}
