//! The tokenizer module.
//!
//! In FlowServe the tokenizer "is an independent module that can scale on
//! its own" (§4.1) — it sits in front of the engine, off the NPU critical
//! path. This implementation is a deterministic hash-based subword
//! tokenizer: real text maps to stable token ids with realistic
//! tokens-per-word ratios, so prefix caching and the prompt trees operate on
//! genuine shared prefixes of real strings. No vocabulary files needed.

use serde::Serialize;
use simcore::SimDuration;

/// A token id. Ids below [`Tokenizer::FIRST_HASH_ID`] are reserved for
/// specials and byte fallbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct TokenId(pub u32);

/// Maximum characters one subword piece covers.
const MAX_PIECE_CHARS: usize = 4;

/// CPU cost per produced token (amortized hash + table work).
const COST_PER_TOKEN_NS: u64 = 200;
/// Fixed per-call cost (request framing, dispatch to the tokenizer pool).
const COST_PER_CALL_US: u64 = 30;

/// Deterministic hash-based subword tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab_size: u32,
}

impl Tokenizer {
    /// Lowest id produced by hashing; everything below is reserved.
    pub const FIRST_HASH_ID: u32 = 256;

    /// Creates a tokenizer with the given vocabulary size.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size` does not exceed the reserved range.
    pub fn new(vocab_size: u32) -> Self {
        assert!(
            vocab_size > Self::FIRST_HASH_ID,
            "vocab_size {vocab_size} must exceed the reserved range {}",
            Self::FIRST_HASH_ID
        );
        Tokenizer { vocab_size }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> u32 {
        self.vocab_size
    }

    /// Tokenizes text: words split on whitespace, long words split into
    /// <= 4-char pieces, each piece hashed (FNV-1a) into the vocab. Equal
    /// strings always produce equal token sequences, and a shared string
    /// prefix yields a shared token prefix (up to the final partial word).
    pub fn tokenize(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(text.len() / 4 + 1);
        for word in text.split_whitespace() {
            let chars: Vec<char> = word.chars().collect();
            for piece in chars.chunks(MAX_PIECE_CHARS) {
                out.push(self.hash_piece(piece));
            }
        }
        out
    }

    fn hash_piece(&self, piece: &[char]) -> TokenId {
        // FNV-1a over the UTF-32 code points.
        let mut h: u64 = 0xcbf29ce484222325;
        for &c in piece {
            h ^= c as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let span = self.vocab_size - Self::FIRST_HASH_ID;
        TokenId(Self::FIRST_HASH_ID + (h % span as u64) as u32)
    }

    /// CPU time to tokenize `token_count` tokens (the engine master charges
    /// this off the NPU critical path).
    pub fn cost(&self, token_count: usize) -> SimDuration {
        SimDuration::from_micros(COST_PER_CALL_US)
            + SimDuration::from_nanos(COST_PER_TOKEN_NS * token_count as u64)
    }
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer::new(64_000)
    }
}

/// A tokenized prompt shared by reference.
///
/// Prompts flow from the platform frontend through dispatch, engine
/// submission, cache registration and (in PD-disaggregated mode) KV
/// migration. Storing them as `Arc<[TokenId]>` makes every hop an O(1)
/// pointer copy instead of an O(prompt-length) token clone, and lets the
/// cluster free a finished request's tokens by dropping the last reference
/// — the key to running million-request streams in O(in-flight) memory.
/// Derefs to `[TokenId]`, so all slice-based consumers (prefix matching,
/// prompt trees) take it unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Prompt(std::sync::Arc<[TokenId]>);

impl Prompt {
    /// The empty prompt (e.g. a freed slot after completion).
    pub fn empty() -> Self {
        Prompt(std::sync::Arc::from(Vec::new()))
    }

    /// The tokens as a slice.
    pub fn as_slice(&self) -> &[TokenId] {
        &self.0
    }
}

impl From<Vec<TokenId>> for Prompt {
    fn from(tokens: Vec<TokenId>) -> Self {
        Prompt(std::sync::Arc::from(tokens))
    }
}

impl std::ops::Deref for Prompt {
    type Target = [TokenId];
    fn deref(&self) -> &[TokenId] {
        &self.0
    }
}

impl Serialize for Prompt {
    fn to_value(&self) -> serde::Value {
        self.0.as_ref().to_value()
    }
}

/// Builds a synthetic token sequence of exactly `len` tokens from a stream
/// seed. Sequences from equal `(seed, len)` are equal; sequences from equal
/// seeds share their full common prefix. Workload generators use this to
/// make prompts of controlled length and controlled prefix sharing without
/// generating megabytes of text.
pub fn synthetic_tokens(seed: u64, len: usize, vocab_size: u32) -> Vec<TokenId> {
    assert!(vocab_size > Tokenizer::FIRST_HASH_ID);
    let span = (vocab_size - Tokenizer::FIRST_HASH_ID) as u64;
    let mut out = Vec::with_capacity(len);
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    for _ in 0..len {
        // SplitMix64 step: deterministic, seed-keyed stream.
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        out.push(TokenId(Tokenizer::FIRST_HASH_ID + (z % span) as u32));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenization_is_deterministic() {
        let t = Tokenizer::default();
        let a = t.tokenize("the quick brown fox jumps over the lazy dog");
        let b = t.tokenize("the quick brown fox jumps over the lazy dog");
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn shared_text_prefix_gives_shared_token_prefix() {
        let t = Tokenizer::default();
        let sys = "You are a helpful assistant. Answer concisely. ";
        let a = t.tokenize(&format!("{sys}What is Rust?"));
        let b = t.tokenize(&format!("{sys}Explain NPUs."));
        let common = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
        let sys_tokens = t.tokenize(sys).len();
        assert!(
            common >= sys_tokens,
            "common prefix {common} should cover the {sys_tokens}-token system prompt"
        );
    }

    #[test]
    fn long_words_split_into_pieces() {
        let t = Tokenizer::default();
        let toks = t.tokenize("internationalization");
        // 20 chars -> 5 pieces of <= 4 chars.
        assert_eq!(toks.len(), 5);
    }

    #[test]
    fn tokens_per_word_ratio_is_realistic() {
        let t = Tokenizer::default();
        let text = "Large language model serving has become one of the most \
                    crucial workloads in modern data centers today";
        let words = text.split_whitespace().count();
        let toks = t.tokenize(text).len();
        let ratio = toks as f64 / words as f64;
        assert!((1.0..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ids_stay_in_vocab() {
        let t = Tokenizer::new(1000);
        for tok in t.tokenize("some words of various lengths exist here") {
            assert!(tok.0 >= Tokenizer::FIRST_HASH_ID && tok.0 < 1000);
        }
    }

    #[test]
    fn cost_scales_with_tokens() {
        let t = Tokenizer::default();
        assert!(t.cost(10_000) > t.cost(10));
    }

    #[test]
    fn synthetic_sequences_share_prefixes_by_seed() {
        let a = synthetic_tokens(7, 100, 64_000);
        let b = synthetic_tokens(7, 150, 64_000);
        assert_eq!(&a[..], &b[..100], "same seed must share full prefix");
        let c = synthetic_tokens(8, 100, 64_000);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn empty_text_is_empty() {
        assert!(Tokenizer::default().tokenize("   ").is_empty());
        assert!(synthetic_tokens(1, 0, 64_000).is_empty());
    }
}
