//! The FlowServe engine: master–executor SPMD serving loop.
//!
//! One `Engine` is the serving core of one model-serving TE. The master
//! side (this struct) owns the scheduler, the RTC index and the DistFlow
//! control plane; the per-NPU executors' forward passes are priced by the
//! roofline cost model ([`llm_model::ExecCostModel`]) — the DESIGN.md leaf
//! substitution.
//!
//! The engine is driven like every other simulation component: `submit`
//! requests, ask [`Engine::next_wake`] when something will happen, call
//! [`Engine::advance`] at that time and collect [`EngineEvent`]s. One
//! `advance` completes at most one iteration and starts the next one, so
//! the caller's event loop stays in lock-step with the engine's
//! continuous-batching loop:
//!
//! * **continuous batching** — all decoding sequences step every iteration;
//! * **chunked prefill** — prompts are sliced into a per-iteration token
//!   budget and ride along with decode (Sarathi-style, §4.5 "PD-colocated
//!   (w/ chunked prefill)");
//! * **async scheduling** (v2/v3) — CPU scheduling overlaps the NPU run, so
//!   an iteration costs `max(npu, cpu) + residual` instead of the sum
//!   (§4.2 asynchronous execution);
//! * **async KV prefetch** — on submit, RTC matches preserved KV; a fitted
//!   cost model decides whether fetching beats recomputing, and the fetch
//!   runs off the critical path while other requests execute (§4.2).

use crate::block::BlockId;
use crate::config::{EngineConfig, EngineMode};
use crate::request::{EngineRequest, NewRequest, Phase, RequestArena, RequestId};
use crate::rtc::{PopulateTicket, Rtc, RtcConfig};
use llm_model::{BatchWork, ExecCostModel};
use simcore::trace::{SpanId, Trace, TraceLevel, Tracer};
use simcore::{Counters, RequestLatency, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// What the engine reports back to its driver.
#[derive(Debug, Clone)]
pub enum EngineEvent {
    /// A request produced its first output token (end of prefill).
    FirstToken {
        /// Which request.
        id: RequestId,
        /// Emission time.
        at: SimTime,
    },
    /// Incremental decode progress: `n` more output tokens exist for `id`
    /// as of `at`. Emitted only when [`Engine::set_token_events`] enabled
    /// streaming (live serving); single-step iterations report `n == 1`,
    /// a committed fast-forward window reports all absorbed tokens at
    /// once. The first output token is reported by `FirstToken`, not here.
    Tokens {
        /// Which request.
        id: RequestId,
        /// Progress timestamp (iteration boundary that produced the last
        /// of these tokens).
        at: SimTime,
        /// Newly generated output tokens.
        n: u32,
    },
    /// A request finished all decoding (or was migrated out).
    Finished {
        /// Which request.
        id: RequestId,
        /// Completion time.
        at: SimTime,
        /// End-to-end latency metrics.
        latency: RequestLatency,
        /// Prompt length, for reporting.
        prompt_tokens: usize,
        /// Prompt tokens served from cache.
        cached_tokens: usize,
    },
    /// Prefill-only mode: KV is ready to ship to a decode TE.
    PrefillComplete {
        /// Which request.
        id: RequestId,
        /// Completion time of the prefill.
        at: SimTime,
        /// KV tokens to transfer.
        kv_tokens: usize,
    },
    /// The request could not be admitted (prompt exceeds KV capacity).
    Rejected {
        /// Which request.
        id: RequestId,
    },
}

/// Result of a submission.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// Whether the request was admitted.
    pub accepted: bool,
    /// An asynchronous KV populate the driver must execute: price
    /// `tokens` of KV movement and call [`Engine::populate_transfer_done`]
    /// when the simulated transfer completes.
    pub populate: Option<PendingPopulate>,
}

/// A populate handed to the driver for timing.
#[derive(Debug, Clone, Copy)]
pub struct PendingPopulate {
    /// RTC ticket.
    pub ticket: PopulateTicket,
    /// Tokens of KV moving DRAM -> HBM.
    pub tokens: usize,
}

/// How the driver paces the engine loop (see DESIGN.md "Macro-stepping").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// One iteration per [`Engine::advance`] call: the classic lock-step
    /// event loop, one wake per iteration.
    SingleStep,
    /// Decode fast-forward: when the engine is quiescent, absorb every
    /// provably unchanged decode iteration into the in-flight one.
    FastForward {
        /// The next externally scheduled event that could interact with
        /// this engine; the window never absorbs a boundary at or past
        /// it. `None` means no external event is pending (unbounded).
        horizon: Option<SimTime>,
    },
}

/// One in-flight iteration.
#[derive(Debug)]
struct Iteration {
    ends_at: SimTime,
    decode_ids: Vec<RequestId>,
    /// `(request, tokens prefilling this iteration)`.
    prefill_parts: Vec<(RequestId, usize)>,
    /// Trace span covering this iteration (NONE when tracing is off).
    span: SpanId,
    /// Logical iterations this entry represents (> 1 after fast-forward
    /// absorbed boundaries into it).
    iterations: u64,
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Iterations executed.
    pub iterations: u64,
    /// Total NPU-busy time.
    pub busy: SimDuration,
    /// Output tokens generated.
    pub output_tokens: u64,
    /// Requests finished.
    pub finished: u64,
    /// Recompute preemptions.
    pub preemptions: u64,
    /// Fast-forward windows committed (macro-steps with >= 1 absorbed
    /// boundary). Telemetry only — never part of `RunReport` counters.
    pub ff_windows: u64,
    /// Iterations absorbed into fast-forward windows (a subset of
    /// `iterations`). Telemetry only.
    pub ff_iterations: u64,
}

/// The FlowServe engine (one TE's serving core).
pub struct Engine {
    cfg: EngineConfig,
    cost: ExecCostModel,
    rtc: Rtc,
    requests: RequestArena,
    /// Admission queue (FCFS).
    waiting: VecDeque<RequestId>,
    /// Requests with prefill chunks outstanding, admission order.
    running_prefill: Vec<RequestId>,
    /// Decoding requests, admission order.
    running_decode: Vec<RequestId>,
    /// Migrated-in requests waiting for KV block space (decode-only mode).
    waiting_kv: VecDeque<(RequestId, usize)>,
    /// Populate ticket -> request.
    populating: HashMap<PopulateTicket, RequestId>,
    current: Option<Iteration>,
    stats: EngineStats,
    counters: Counters,
    tracer: Tracer,
    /// Open per-request lifecycle spans (only populated while tracing).
    req_spans: HashMap<RequestId, SpanId>,
    /// Iteration wall-time multiplier (1.0 = healthy; > 1.0 = straggler).
    slowdown: f64,
    /// Emit [`EngineEvent::Tokens`] progress events (live streaming).
    /// Purely additive: no engine state, stat, or counter depends on it,
    /// so a run with streaming on is bit-identical to one with it off.
    token_events: bool,
    /// Scratch copy of `running_decode` for `form_batch` (reused every
    /// iteration so the hot path allocates nothing).
    scratch_ids: Vec<RequestId>,
    /// Scratch prefill-candidate list for `form_batch`.
    scratch_candidates: Vec<RequestId>,
    /// Recycled `Iteration::decode_ids` buffer.
    spare_decode_ids: Vec<RequestId>,
    /// Recycled `Iteration::prefill_parts` buffer.
    spare_prefill_parts: Vec<(RequestId, usize)>,
    /// Scratch per-sequence slack for `fast_forward`.
    scratch_slack: Vec<usize>,
    /// Scratch per-sequence new-block lists for `fast_forward` (inner
    /// vectors stay allocated across windows; always empty between calls).
    scratch_new_blocks: Vec<Vec<BlockId>>,
    /// Scratch vectorized iteration costs for `fast_forward` (windows of
    /// upcoming step times priced in one cost-model call).
    scratch_costs: Vec<SimDuration>,
}

/// Parallel cluster stepping moves owned `Engine`s through channels to a
/// persistent worker pool, so the engine must stay a plain owned `Send`
/// value — no `Rc`, `RefCell`, raw pointers or thread-local handles. This
/// assertion turns an accidental regression (e.g. a future cache wrapped
/// in `Rc`) into a compile error at the definition site instead of a
/// borrow-checker riddle in `deepserve`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Engine>();
};

impl Engine {
    /// Builds an engine: RTC pools are sized from the cost model's KV
    /// capacity and the config's reserve fraction.
    pub fn new(cfg: EngineConfig, cost: ExecCostModel) -> Self {
        let kv_tokens = cost.kv_capacity_tokens(cfg.kv_reserve_frac) as usize;
        let npu_blocks = kv_tokens / cfg.block_size;
        let rtc = Rtc::new(RtcConfig {
            block_size: cfg.block_size,
            npu_blocks,
            dram_blocks: cfg.dram_blocks,
        });
        Engine {
            cfg,
            cost,
            rtc,
            requests: RequestArena::new(),
            waiting: VecDeque::new(),
            running_prefill: Vec::new(),
            running_decode: Vec::new(),
            waiting_kv: VecDeque::new(),
            populating: HashMap::new(),
            current: None,
            stats: EngineStats::default(),
            counters: Counters::new(),
            tracer: Tracer::disabled(),
            req_spans: HashMap::new(),
            slowdown: 1.0,
            token_events: false,
            scratch_ids: Vec::new(),
            scratch_candidates: Vec::new(),
            spare_decode_ids: Vec::new(),
            spare_prefill_parts: Vec::new(),
            scratch_slack: Vec::new(),
            scratch_new_blocks: Vec::new(),
            scratch_costs: Vec::new(),
        }
    }

    /// Turns on sim-time tracing for this engine and its RTC. `capacity`
    /// bounds the span and event ring buffers (each).
    pub fn enable_tracing(&mut self, level: TraceLevel, capacity: usize) {
        self.tracer = Tracer::enabled(level, capacity);
        self.rtc.enable_tracing(level, capacity);
    }

    /// Drains everything traced so far, with RTC records absorbed under the
    /// `rtc` component tag.
    pub fn take_trace(&mut self) -> Trace {
        let mut trace = self.tracer.take();
        trace.absorb("rtc", self.rtc.take_trace());
        trace
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &ExecCostModel {
        &self.cost
    }

    /// End time of the in-flight iteration, if one is running.
    pub fn current_iteration_end(&self) -> Option<SimTime> {
        self.current.as_ref().map(|it| it.ends_at)
    }

    /// Lower bound on the span of any iteration this engine can start
    /// (the cost model's fixed per-iteration floor).
    pub fn min_iteration_span(&self) -> SimDuration {
        self.cost.min_step_time()
    }

    /// RTC access (read-mostly; platform uses it for context caching).
    pub fn rtc(&self) -> &Rtc {
        &self.rtc
    }

    /// Mutable RTC access for the platform's context-caching endpoint.
    pub fn rtc_mut(&mut self) -> &mut Rtc {
        &mut self.rtc
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Event counters (cache hits, preemptions, ...).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Requests queued but not yet running.
    pub fn queue_len(&self) -> usize {
        self.waiting.len() + self.waiting_kv.len()
    }

    /// Requests currently prefilling or decoding.
    pub fn active_len(&self) -> usize {
        self.running_prefill.len() + self.running_decode.len()
    }

    /// Total requests the engine is responsible for right now.
    pub fn load(&self) -> usize {
        self.requests.len()
    }

    /// Sum of KV tokens currently held (proxy for memory pressure).
    pub fn kv_tokens_held(&self) -> usize {
        // Arena iteration is slot-ordered (deterministic), and the sum is
        // commutative besides.
        self.requests.values().map(|r| r.table.tokens()).sum()
    }

    /// Sets the iteration wall-time multiplier (fault injection: a
    /// straggling TE). 1.0 restores healthy speed; values are clamped to
    /// at least 0.01 so a bad factor cannot make time run backwards.
    pub fn set_slowdown(&mut self, factor: f64) {
        self.slowdown = factor.max(0.01);
    }

    /// Enables (or disables) [`EngineEvent::Tokens`] streaming progress
    /// events. Off by default; live serving frontends turn it on to drive
    /// SSE streams. The flag changes only what is *reported*, never what
    /// is computed — replays with streaming off stay bit-identical.
    pub fn set_token_events(&mut self, on: bool) {
        self.token_events = on;
    }

    /// Every request the engine is currently responsible for, in id order
    /// (deterministic). Used by the platform to drain a crashed TE.
    pub fn active_request_ids(&self) -> Vec<RequestId> {
        // Arena slot order is deterministic already; sort to id order for
        // the drain contract.
        let mut ids: Vec<RequestId> = self.requests.ids().collect();
        ids.sort_unstable();
        ids
    }

    // ---- Submission ----

    /// Submits a fresh request (tokenized prompt). See [`SubmitOutcome`].
    pub fn submit(&mut self, now: SimTime, new: NewRequest) -> SubmitOutcome {
        let id = new.id;
        // Reject prompts that cannot ever fit.
        let blocks_for_prompt = new.prompt.len().div_ceil(self.cfg.block_size);
        if blocks_for_prompt + 1 > self.total_npu_blocks() {
            self.counters.incr("engine.rejected");
            if self.tracer.is_enabled() {
                self.tracer
                    .event(now, "request.rejected", vec![("req", id.0.into())]);
            }
            return SubmitOutcome {
                accepted: false,
                populate: None,
            };
        }
        let mut req = EngineRequest::new(new, self.cfg.block_size);

        let mut pending = None;
        if self.cfg.prefix_caching {
            pending = self.try_cache_match(now, &mut req);
        }
        if self.tracer.is_enabled() {
            let span = self.tracer.start_span(
                now,
                "request",
                vec![
                    ("req", id.0.into()),
                    ("prompt_tokens", req.prompt_len().into()),
                    ("target_output", req.new.target_output.into()),
                    ("arrival", req.new.arrival.into()),
                ],
            );
            self.req_spans.insert(id, span);
            self.tracer.event_in(
                now,
                "request.queued",
                span,
                vec![
                    ("req", id.0.into()),
                    ("arrival", req.new.arrival.into()),
                    ("cached_tokens", req.cached_tokens.into()),
                ],
            );
            if let Some(p) = &pending {
                self.tracer.event_in(
                    now,
                    "request.populate_start",
                    span,
                    vec![("req", id.0.into()), ("tokens", p.tokens.into())],
                );
            }
        }
        let phase = req.phase;
        self.requests.insert(id, req);
        match phase {
            Phase::WaitingPopulate => {}
            _ => self.waiting.push_back(id),
        }
        self.counters.incr("engine.submitted");
        SubmitOutcome {
            accepted: true,
            populate: pending,
        }
    }

    fn total_npu_blocks(&self) -> usize {
        // Pool capacity = free + in-use; RTC exposes free; reconstruct via
        // capacity stored in the pool. (Free + cached is a lower bound;
        // use the config-derived capacity for the admission check.)
        self.cost.kv_capacity_tokens(self.cfg.kv_reserve_frac) as usize / self.cfg.block_size
    }

    /// Matches the prompt against RTC; acquires the NPU-resident prefix
    /// and, if worthwhile, kicks off a populate for the DRAM tail.
    fn try_cache_match(
        &mut self,
        now: SimTime,
        req: &mut EngineRequest,
    ) -> Option<PendingPopulate> {
        // Prefer the explicit ID entry when given, else prefix tokens.
        let mut m = match req.new.cache_id.and_then(|cid| self.rtc.match_by_id(cid)) {
            Some(m) => m,
            None => self.rtc.match_by_prefix_token(&req.new.prompt),
        };
        // Never reuse the *entire* prompt: at least one token must run
        // through the model to produce the first output token.
        let max_nodes = (req.prompt_len().saturating_sub(1)) / self.cfg.block_size;
        if m.nodes.len() > max_nodes {
            m.nodes.truncate(max_nodes);
            m.tokens = max_nodes * self.cfg.block_size;
            m.npu_prefix_nodes = m.npu_prefix_nodes.min(max_nodes);
        }
        if m.nodes.is_empty() {
            return None;
        }

        // Decide on fetching the DRAM tail (§4.2: "the scheduler runs a
        // fitted cost model to decide if reusing the cache is beneficial").
        let dram_tokens = m.dram_nodes().len() * self.cfg.block_size;
        let mut pending = None;
        if dram_tokens > 0 {
            let bytes = dram_tokens as u64 * self.cost.model().kv_bytes_per_token();
            let fetch_s = bytes as f64 / self.cfg.populate_bandwidth;
            let recompute_s = self.cost.recompute_time(dram_tokens as u64).as_secs_f64();
            let beneficial = !self.cfg.populate_cost_model || fetch_s < recompute_s;
            if beneficial {
                if let Some(plan) = self.rtc.populate(now, &m) {
                    let ticket = plan.ticket;
                    self.populating.insert(ticket, req.new.id);
                    req.populate = Some(ticket);
                    req.phase = Phase::WaitingPopulate;
                    pending = Some(PendingPopulate {
                        ticket,
                        tokens: plan.tokens,
                    });
                    self.counters.incr("engine.populates");
                }
            } else {
                self.counters.incr("engine.populate_skipped");
            }
        }

        // Acquire whatever is NPU-resident right now. If a populate is in
        // flight we re-acquire the longer prefix when it lands.
        if m.npu_prefix_nodes > 0 && pending.is_none() {
            let acq = self.rtc.acquire_prefix(now, &m);
            req.cached_tokens = acq.tokens(self.cfg.block_size);
            req.prefilled_tokens = req.cached_tokens;
            req.acquired = Some(acq);
            self.counters
                .add("engine.cache_hit_tokens", req.cached_tokens as u64);
        }
        pending
    }

    /// The driver finished the simulated KV transfer for `ticket`.
    pub fn populate_transfer_done(&mut self, now: SimTime, ticket: PopulateTicket) {
        self.rtc.complete_populate(ticket);
        let Some(id) = self.populating.remove(&ticket) else {
            return;
        };
        let Some(req) = self.requests.get_mut(id) else {
            return;
        };
        req.populate = None;
        // Re-match: the populated nodes are NPU-resident now.
        let mut m = self.rtc.match_by_prefix_token(&req.new.prompt);
        let max_nodes = (req.prompt_len().saturating_sub(1)) / self.cfg.block_size;
        if m.nodes.len() > max_nodes {
            m.nodes.truncate(max_nodes);
            m.tokens = max_nodes * self.cfg.block_size;
            m.npu_prefix_nodes = m.npu_prefix_nodes.min(max_nodes);
        }
        if m.npu_prefix_nodes > 0 {
            let acq = self.rtc.acquire_prefix(now, &m);
            req.cached_tokens = acq.tokens(self.cfg.block_size);
            req.prefilled_tokens = req.cached_tokens;
            req.acquired = Some(acq);
            self.counters
                .add("engine.cache_hit_tokens", req.cached_tokens as u64);
        }
        req.phase = Phase::Queued;
        if self.tracer.is_enabled() {
            let span = self.req_spans.get(&id).copied().unwrap_or(SpanId::NONE);
            self.tracer.event_in(
                now,
                "request.populate_done",
                span,
                vec![("req", id.0.into())],
            );
        }
        self.waiting.push_back(id);
    }

    /// Decode-only mode: admits a migrated request whose KV (context) has
    /// just arrived over DistFlow. `first_token_at` is when the prefill TE
    /// emitted token one.
    pub fn submit_with_kv(
        &mut self,
        now: SimTime,
        new: NewRequest,
        context_tokens: usize,
        first_token_at: SimTime,
    ) -> SubmitOutcome {
        let id = new.id;
        let mut req = EngineRequest::new(new, self.cfg.block_size);
        req.prefilled_tokens = context_tokens;
        req.generated = 1;
        req.first_token_at = Some(first_token_at);
        req.phase = Phase::Decoding;
        let prompt_tokens = req.prompt_len();
        let target_output = req.new.target_output;
        let arrival = req.new.arrival;
        self.requests.insert(id, req);
        if !self.try_allocate_context(id, context_tokens) {
            // No room yet: park until blocks free up.
            if let Some(req) = self.req_mut(id) {
                req.phase = Phase::Queued;
            }
            self.waiting_kv.push_back((id, context_tokens));
            self.counters.incr("engine.kv_admission_stalls");
        } else {
            self.running_decode.push(id);
        }
        if self.tracer.is_enabled() {
            let span = self.tracer.start_span(
                now,
                "request",
                vec![
                    ("req", id.0.into()),
                    ("prompt_tokens", prompt_tokens.into()),
                    ("target_output", target_output.into()),
                    ("arrival", arrival.into()),
                ],
            );
            self.req_spans.insert(id, span);
            self.tracer.event_in(
                now,
                "request.migrated_in",
                span,
                vec![
                    ("req", id.0.into()),
                    ("context_tokens", context_tokens.into()),
                    ("first_token_at", first_token_at.into()),
                ],
            );
        }
        self.counters.incr("engine.migrated_in");
        SubmitOutcome {
            accepted: true,
            populate: None,
        }
    }

    /// Invariant-checked lookup for ids held in the engine's own queues
    /// (`waiting`, `waiting_kv`, `running_prefill`, `running_decode`): those
    /// ids always resolve in `requests`. A miss means the queue and map
    /// bookkeeping diverged — loud in debug builds; in release the caller
    /// drops the stale id instead of taking the whole engine down.
    fn req_mut(&mut self, id: RequestId) -> Option<&mut EngineRequest> {
        let req = self.requests.get_mut(id);
        debug_assert!(req.is_some(), "engine invariant: untracked request {id:?}");
        req
    }

    fn try_allocate_context(&mut self, id: RequestId, context_tokens: usize) -> bool {
        let n_blocks = context_tokens.div_ceil(self.cfg.block_size);
        match self.rtc.alloc_blocks(n_blocks) {
            Ok(blocks) => match self.req_mut(id) {
                Some(req) => {
                    req.table.extend(blocks, context_tokens);
                    true
                }
                None => {
                    self.rtc.free(&blocks);
                    false
                }
            },
            Err(_) => false,
        }
    }

    // ---- Driving ----

    /// When the driver should next call [`Engine::advance`]. `None` means
    /// the engine is idle and will only wake on a new submission/populate.
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        if let Some(it) = &self.current {
            return Some(it.ends_at);
        }
        if self.has_ready_work() {
            Some(now)
        } else {
            None
        }
    }

    fn has_ready_work(&self) -> bool {
        !self.running_decode.is_empty()
            || !self.running_prefill.is_empty()
            || !self.waiting.is_empty()
            || !self.waiting_kv.is_empty()
    }

    /// Runs the engine loop at `now`: completes the in-flight iteration if
    /// it has ended, then starts the next one. Returns emitted events.
    ///
    /// Compatibility wrapper over [`Engine::advance_paced`] with
    /// [`Pacing::SingleStep`] and a fresh event vector.
    pub fn advance(&mut self, now: SimTime) -> Vec<EngineEvent> {
        let mut events = Vec::new();
        self.advance_paced(now, Pacing::SingleStep, &mut events);
        events
    }

    /// Runs the engine loop at `now`, appending emitted events to `events`
    /// (a reused buffer — the caller clears it). With
    /// [`Pacing::FastForward`] the engine may additionally absorb future
    /// decode iterations into the in-flight one (see
    /// [`Engine::fast_forward`]); the observable outcome is bit-identical
    /// to single-stepping, only the number of driver wakes changes.
    pub fn advance_paced(&mut self, now: SimTime, pacing: Pacing, events: &mut Vec<EngineEvent>) {
        if let Some(it) = self.current.take() {
            if now < it.ends_at {
                self.current = Some(it);
                return; // woken early; nothing to do yet
            }
            self.complete_iteration(it.ends_at, &it, events);
            self.recycle_iteration(it);
        }
        // Retry KV admissions that were waiting for space.
        self.retry_waiting_kv();
        // Background swapper: keep headroom off the critical path.
        if self.cfg.swap_low_watermark_blocks > 0 {
            let moved = self.rtc.copy_to_dram(self.cfg.swap_low_watermark_blocks);
            if moved > 0 {
                self.counters.add("engine.bg_swap_tokens", moved as u64);
            }
        }
        if self.current.is_none() {
            self.start_iteration(now);
        }
        if let Pacing::FastForward { horizon } = pacing {
            self.fast_forward(horizon, events);
        }
    }

    /// Returns an iteration's buffers to the spare pool so the next
    /// `form_batch` starts from allocated capacity.
    fn recycle_iteration(&mut self, it: Iteration) {
        let Iteration {
            mut decode_ids,
            mut prefill_parts,
            ..
        } = it;
        decode_ids.clear();
        prefill_parts.clear();
        self.spare_decode_ids = decode_ids;
        self.spare_prefill_parts = prefill_parts;
    }

    /// Decode fast-forward (macro-stepping; DESIGN.md "Macro-stepping").
    ///
    /// When the engine is *quiescent* — empty admission queue, no prefill
    /// chunks in flight, no `waiting_kv` stalls, no pending populate
    /// tickets, healthy speed, and a stable pure-decode batch — every
    /// upcoming iteration is predetermined until one of four things
    /// happens: the fastest sequence in the batch completes, a block
    /// allocation would miss the free pool (eviction/preemption), the
    /// background swapper would have demotion work, or an externally
    /// scheduled event lands (`horizon`). This absorbs exactly the
    /// boundaries that provably precede all four into the in-flight
    /// iteration, replaying the single-step arithmetic — real pool
    /// appends in batch order, per-iteration integer-nanosecond cost
    /// rounding — so the committed state (tables, block ids, counters,
    /// timings) is bit-identical to stepping one wake at a time.
    ///
    /// Fallbacks: stragglers (`slowdown != 1.0`) and full-level tracing
    /// (which wants every per-token event) single-step unconditionally;
    /// any quiescence violation absorbs nothing.
    fn fast_forward(&mut self, horizon: Option<SimTime>, events: &mut Vec<EngineEvent>) {
        // Cheapest rejection first: if an external event pops at or before
        // the first boundary, nothing can be absorbed — skip all window
        // setup (this is the common case while arrivals are streaming in).
        if let (Some(h), Some(cur)) = (horizon, self.current.as_ref()) {
            if cur.ends_at >= h {
                return;
            }
        }
        if self.slowdown != 1.0 || self.tracer.is_full() {
            return;
        }
        if !self.waiting.is_empty()
            || !self.running_prefill.is_empty()
            || !self.waiting_kv.is_empty()
            || !self.populating.is_empty()
        {
            return;
        }
        let Some(mut it) = self.current.take() else {
            return;
        };
        let b = it.decode_ids.len();
        // The batch must be exactly what `form_batch` would re-form at the
        // next boundary: every running sequence (up to max_batch) admitted
        // in order, with no reservation skips.
        let stable = it.prefill_parts.is_empty()
            && b > 0
            && b == self.running_decode.len().min(self.cfg.max_batch)
            && it.decode_ids[..] == self.running_decode[..b];
        if !stable {
            self.current = Some(it);
            return;
        }

        // Per-sequence state: tokens still owed and block-table slack. The
        // boundary that completes the fastest sequence (boundary
        // `min_rem`) must run through the normal completion path.
        let mut min_rem = u64::MAX;
        let mut slack = std::mem::take(&mut self.scratch_slack);
        slack.clear();
        let mut context_total: u64 = 0;
        let mut tracked = true;
        for &id in &it.decode_ids {
            let Some(req) = self.requests.get(id) else {
                debug_assert!(false, "engine invariant: untracked request {id:?}");
                tracked = false;
                break;
            };
            debug_assert_eq!(req.phase, Phase::Decoding);
            min_rem =
                min_rem.min((req.new.target_output as u64).saturating_sub(req.generated as u64));
            slack.push(req.table.slack());
            context_total += req.table.tokens() as u64;
        }
        if !tracked {
            self.scratch_slack = slack;
            self.current = Some(it);
            return;
        }

        // Constant across the window: the batch (hence the CPU cost) is
        // fixed, and pool-hit appends never touch the radix tree, so the
        // evictable set cannot change while absorbing.
        let (cpu_overlap, cpu_residual) = self.cfg.version.cpu_costs(b);
        let watermark = self.cfg.swap_low_watermark_blocks;
        let has_evictable = watermark > 0 && self.rtc.npu_evictable();

        let mut new_blocks = std::mem::take(&mut self.scratch_new_blocks);
        if new_blocks.len() < b {
            new_blocks.resize_with(b, Vec::new);
        }
        debug_assert!(new_blocks.iter().all(Vec::is_empty));
        // Vectorized pricing: upcoming per-iteration costs are evaluated
        // in windows of up to `COST_WINDOW` steps with one cost-model
        // call (context-invariant roofline terms hoisted), bit-identical
        // to per-step `step_time` — re-checked by the debug assertion in
        // the loop. Bounded so a horizon/watermark break wastes little.
        const COST_WINDOW: u64 = 64;
        let mut costs = std::mem::take(&mut self.scratch_costs);
        costs.clear();
        let mut cost_i = 0usize;
        let mut absorbed: u64 = 0;
        let mut busy_acc = SimDuration::ZERO;
        // Appends the *next* boundary needs; updated incrementally by the
        // mutation loop below so each iteration scans `slack` only once.
        let mut next_appends = slack.iter().filter(|&&s| s == 0).count();
        loop {
            // Boundary `absorbed + 1` would elapse at `it.ends_at`.
            if absorbed + 1 >= min_rem {
                break; // next boundary completes the fastest sequence
            }
            if horizon.is_some_and(|h| it.ends_at >= h) {
                break; // an external event pops first (strictly before)
            }
            let free = self.rtc.npu_free_blocks();
            if has_evictable && free < watermark {
                break; // the background swapper would demote cache here
            }
            if next_appends > free {
                break; // allocation would evict or preempt; single-step it
            }
            if cost_i == costs.len() {
                // Refill the price window from the current context (the
                // cost model advances it by `b` before each step, exactly
                // like the scalar path below).
                costs.clear();
                cost_i = 0;
                let steps = (min_rem - 1 - absorbed).min(COST_WINDOW);
                self.cost
                    .decode_step_times_into(b as u64, context_total, steps, &mut costs);
            }
            // Absorb the boundary: complete this iteration silently and
            // form the next one. Pool appends happen for real, in batch
            // order, so the assigned BlockIds match single-stepping.
            let mut coming = 0usize;
            for (i, s) in slack.iter_mut().enumerate() {
                if *s == 0 {
                    let blk = self
                        .rtc
                        .append_block()
                        // detlint: allow(panic) — unreachable: the quiescence gate checked next_appends <= free before entering this batch; a mid-batch allocation failure would mean the pool accounting itself is broken
                        .expect("fast-forward pre-checked a pool hit");
                    new_blocks[i].push(blk);
                    *s = self.cfg.block_size - 1;
                } else {
                    *s -= 1;
                }
                if *s == 0 {
                    coming += 1;
                }
            }
            next_appends = coming;
            context_total += b as u64;
            // Exactly `start_iteration`'s arithmetic for a pure-decode
            // batch, including the per-iteration float -> integer-ns
            // rounding (a closed-form sum would drift by ulps) — served
            // from the vectorized window above.
            let npu = costs[cost_i];
            cost_i += 1;
            debug_assert_eq!(
                npu,
                self.cost
                    .step_time(&BatchWork::decode(b as u64, context_total)),
                "vectorized decode pricing diverged from scalar step_time"
            );
            let wall = if self.cfg.version.async_sched {
                SimDuration::from_secs_f64(npu.as_secs_f64().max(cpu_overlap) + cpu_residual)
            } else {
                npu + SimDuration::from_secs_f64(cpu_overlap + cpu_residual)
            };
            it.ends_at += wall;
            busy_acc += wall;
            absorbed += 1;
        }

        if absorbed > 0 {
            for (i, &id) in it.decode_ids.iter().enumerate() {
                let Some(req) = self.requests.get_mut(id) else {
                    debug_assert!(false, "engine invariant: untracked request {id:?}");
                    continue;
                };
                req.generated += absorbed as u32;
                req.table
                    .extend_from_slice(&new_blocks[i], absorbed as usize);
                new_blocks[i].clear();
                if self.token_events {
                    events.push(EngineEvent::Tokens {
                        id,
                        at: it.ends_at,
                        n: absorbed as u32,
                    });
                }
            }
            self.stats.iterations += absorbed;
            self.stats.busy += busy_acc;
            self.stats.output_tokens += absorbed * b as u64;
            self.stats.ff_windows += 1;
            self.stats.ff_iterations += absorbed;
            it.iterations += absorbed;
            if self.tracer.is_enabled() {
                self.tracer.event_in(
                    it.ends_at,
                    "macro_step",
                    it.span,
                    vec![
                        ("iterations", it.iterations.into()),
                        ("decode_batch", b.into()),
                    ],
                );
            }
        }
        self.scratch_slack = slack;
        self.scratch_new_blocks = new_blocks;
        costs.clear();
        self.scratch_costs = costs;
        self.current = Some(it);
    }

    fn retry_waiting_kv(&mut self) {
        let mut remaining = VecDeque::new();
        while let Some((id, ctx)) = self.waiting_kv.pop_front() {
            if self.try_allocate_context(id, ctx) {
                if let Some(req) = self.req_mut(id) {
                    req.phase = Phase::Decoding;
                    self.running_decode.push(id);
                }
            } else {
                remaining.push_back((id, ctx));
                break; // preserve order; no point trying the rest
            }
        }
        remaining.extend(self.waiting_kv.drain(..));
        self.waiting_kv = remaining;
    }

    // ---- Batch formation ----

    fn start_iteration(&mut self, now: SimTime) {
        let (work, decode_ids, prefill_parts) = self.form_batch(now);
        if work.is_empty() {
            return;
        }
        let npu = self.cost.step_time(&work);
        let seqs = decode_ids.len() + prefill_parts.len();
        let (overlap, residual) = self.cfg.version.cpu_costs(seqs.max(1));
        let mut wall = if self.cfg.version.async_sched {
            SimDuration::from_secs_f64(npu.as_secs_f64().max(overlap) + residual)
        } else {
            npu + SimDuration::from_secs_f64(overlap + residual)
        };
        // Guarded so the float round-trip cannot perturb healthy runs.
        if self.slowdown != 1.0 {
            wall = wall.mul_f64(self.slowdown);
        }
        self.stats.iterations += 1;
        self.stats.busy += wall;
        let span = if self.tracer.is_enabled() {
            self.tracer.start_span(
                now,
                "iteration",
                vec![
                    ("decode_batch", decode_ids.len().into()),
                    ("prefill_tokens", work.prefill_tokens.into()),
                    ("seqs", seqs.into()),
                    ("wall_ns", wall.as_nanos().into()),
                ],
            )
        } else {
            SpanId::NONE
        };
        self.current = Some(Iteration {
            ends_at: now + wall,
            decode_ids,
            prefill_parts,
            span,
            iterations: 1,
        });
    }

    fn form_batch(&mut self, now: SimTime) -> (BatchWork, Vec<RequestId>, Vec<(RequestId, usize)>) {
        let mut work = BatchWork::default();
        // Batch vectors and iteration snapshots are recycled between
        // iterations (`recycle_iteration` / scratch fields) so the steady
        // decode loop allocates nothing.
        let mut decode_ids = std::mem::take(&mut self.spare_decode_ids);
        let mut prefill_parts = std::mem::take(&mut self.spare_prefill_parts);
        debug_assert!(decode_ids.is_empty() && prefill_parts.is_empty());

        // --- decode side ---
        if self.cfg.mode != EngineMode::PrefillOnly {
            let mut ids = std::mem::take(&mut self.scratch_ids);
            ids.clear();
            ids.extend_from_slice(&self.running_decode);
            for &id in &ids {
                if decode_ids.len() >= self.cfg.max_batch {
                    break;
                }
                // A reservation earlier in this loop may have preempted this
                // sequence out of the decode set.
                if self.requests.get(id).map(|r| r.phase) != Some(Phase::Decoding) {
                    continue;
                }
                if self.reserve_decode_slot(now, id) {
                    if let Some(req) = self.requests.get(id) {
                        work.decode_seqs += 1;
                        work.decode_context_total += req.table.tokens() as u64;
                        decode_ids.push(id);
                    }
                }
            }
            self.scratch_ids = ids;
        }

        // --- prefill side ---
        let do_prefill = match self.cfg.mode {
            EngineMode::PrefillOnly => true,
            EngineMode::DecodeOnly => false,
            EngineMode::Colocated => self.cfg.chunked_prefill || decode_ids.is_empty(),
        };
        if do_prefill {
            let mut budget = self.cfg.prefill_chunk_tokens;
            let mut ctx_weighted: u64 = 0;
            // Continue in-flight prefills first, then admit new ones.
            let mut candidates = std::mem::take(&mut self.scratch_candidates);
            candidates.clear();
            candidates.extend_from_slice(&self.running_prefill);
            // Peek the queue head; admission happens below if budget and
            // memory allow, and deeper queue entries are pulled in as
            // earlier ones are admitted.
            if let Some(&id) = self.waiting.front() {
                candidates.push(id);
            }
            let mut admitted_from_waiting = false;
            let mut i = 0;
            while budget > 0 && i < candidates.len() {
                let id = candidates[i];
                i += 1;
                let Some((remaining, context)) = self
                    .requests
                    .get(id)
                    .map(|r| (r.prefill_remaining(), r.prefilled_tokens))
                else {
                    debug_assert!(false, "engine invariant: untracked request {id:?}");
                    continue;
                };
                let chunk = remaining.min(budget);
                if chunk == 0 {
                    continue;
                }
                if !self.reserve_prefill_blocks(id, chunk) {
                    break; // memory pressure: stop admitting
                }
                if self.waiting.front() == Some(&id) {
                    self.waiting.pop_front();
                    self.running_prefill.push(id);
                    if let Some(req) = self.req_mut(id) {
                        req.phase = Phase::Prefilling;
                    }
                    admitted_from_waiting = true;
                }
                budget -= chunk;
                ctx_weighted += (context as u64) * chunk as u64;
                work.prefill_tokens += chunk as u64;
                prefill_parts.push((id, chunk));
                // If we just admitted from waiting and budget remains, pull
                // the next queued request into candidates.
                if admitted_from_waiting && budget > 0 {
                    if let Some(&next) = self.waiting.front() {
                        candidates.push(next);
                    }
                }
            }
            work.prefill_context = ctx_weighted.checked_div(work.prefill_tokens).unwrap_or(0);
            self.scratch_candidates = candidates;
        }

        (work, decode_ids, prefill_parts)
    }

    /// Ensures the decode sequence has a KV slot for this iteration's
    /// token, preempting younger sequences under pressure (recompute-style
    /// preemption: the victim restarts its prefill later).
    fn reserve_decode_slot(&mut self, now: SimTime, id: RequestId) -> bool {
        loop {
            match self.req_mut(id) {
                Some(req) if req.table.slack() >= 1 => {
                    req.table.extend(vec![], 1);
                    return true;
                }
                Some(_) => {}
                None => return false,
            }
            match self.rtc.append_block() {
                Ok(b) => match self.req_mut(id) {
                    Some(req) => {
                        req.table.extend(vec![b], 1);
                        return true;
                    }
                    None => {
                        self.rtc.free(&[b]);
                        return false;
                    }
                },
                Err(_) => {
                    if !self.preempt_youngest_except(now, id) {
                        return false; // nothing left to preempt
                    }
                }
            }
        }
    }

    fn reserve_prefill_blocks(&mut self, id: RequestId, chunk: usize) -> bool {
        // Seed the table with the acquired cache prefix on first contact.
        {
            let Some(req) = self.req_mut(id) else {
                return false;
            };
            if req.table.tokens() == 0 && req.cached_tokens > 0 {
                debug_assert!(req.acquired.is_some(), "cached_tokens implies acquisition");
                if let Some(acq) = req.acquired.as_ref() {
                    let acq_blocks: Vec<BlockId> = acq.blocks.clone();
                    let cached = req.cached_tokens;
                    req.table.extend(acq_blocks, cached);
                } else {
                    // Inconsistent hit state: forget the hit and prefill
                    // from scratch rather than fabricating KV blocks.
                    req.cached_tokens = 0;
                }
            }
        }
        let Some(need) = self.requests.get(id).map(|r| r.table.blocks_needed(chunk)) else {
            return false;
        };
        match self.rtc.alloc_blocks(need) {
            Ok(blocks) => match self.req_mut(id) {
                Some(req) => {
                    req.table.extend(blocks, chunk);
                    true
                }
                None => {
                    self.rtc.free(&blocks);
                    false
                }
            },
            Err(_) => false,
        }
    }

    /// Preempts the most recently admitted decode sequence other than
    /// `keep`, freeing its blocks for reuse. Returns false if there was no
    /// victim.
    fn preempt_youngest_except(&mut self, now: SimTime, keep: RequestId) -> bool {
        let victim = self
            .running_decode
            .iter()
            .rev()
            .copied()
            .find(|&v| v != keep);
        let Some(victim) = victim else { return false };
        if self.tracer.is_enabled() {
            let span = self.req_spans.get(&victim).copied().unwrap_or(SpanId::NONE);
            self.tracer.event_in(
                now,
                "request.preempted",
                span,
                vec![("req", victim.0.into())],
            );
        }
        self.running_decode.retain(|&r| r != victim);
        let Some(req) = self.req_mut(victim) else {
            return false;
        };
        let blocks = req.table.take_blocks();
        // Recompute-style preemption: KV is dropped; the prompt *and* the
        // tokens generated so far must be re-prefilled before decode can
        // resume. TTFT and the generated count are history — they stay.
        req.phase = Phase::Queued;
        req.prefilled_tokens = 0;
        req.cached_tokens = 0;
        req.preemptions += 1;
        let acquired = req.acquired.take();
        self.rtc.free(&blocks);
        if let Some(acq) = acquired {
            self.rtc.release_prefix(&acq);
            // The acquired blocks were part of the table and already freed.
        }
        self.waiting.push_front(victim);
        self.stats.preemptions += 1;
        self.counters.incr("engine.preemptions");
        true
    }

    // ---- Iteration completion ----

    fn complete_iteration(&mut self, at: SimTime, it: &Iteration, events: &mut Vec<EngineEvent>) {
        let full_trace = self.tracer.is_full();
        // Prefill progress.
        for &(id, chunk) in &it.prefill_parts {
            // The request may have been preempted out mid-flight; skip then.
            let Some(req) = self.requests.get_mut(id) else {
                continue;
            };
            if req.phase != Phase::Prefilling {
                continue;
            }
            req.prefilled_tokens += chunk;
            let done = req.prefill_remaining() == 0;
            if full_trace {
                let span = self.req_spans.get(&id).copied().unwrap_or(SpanId::NONE);
                self.tracer.event_in(
                    at,
                    "prefill_chunk",
                    span,
                    vec![("req", id.0.into()), ("tokens", chunk.into())],
                );
            }
            if done {
                self.finish_prefill(at, id, events);
            }
        }
        // Decode progress.
        for &id in &it.decode_ids {
            let Some(req) = self.requests.get_mut(id) else {
                continue;
            };
            if req.phase != Phase::Decoding {
                continue; // preempted during this iteration's formation
            }
            req.generated += 1;
            self.stats.output_tokens += 1;
            if self.token_events {
                events.push(EngineEvent::Tokens { id, at, n: 1 });
            }
            let done = req.decode_done();
            if done {
                req.finished_at = Some(at);
            }
            if full_trace {
                let span = self.req_spans.get(&id).copied().unwrap_or(SpanId::NONE);
                self.tracer
                    .event_in(at, "decode_iter", span, vec![("req", id.0.into())]);
            }
            if done {
                self.finish_request(at, id, events);
            }
        }
        self.tracer.end_span(at, it.span);
    }

    fn finish_prefill(&mut self, at: SimTime, id: RequestId, events: &mut Vec<EngineEvent>) {
        self.running_prefill.retain(|&r| r != id);
        let (prompt, cache_id, blocks, should_cache, is_first_completion) = {
            let Some(req) = self.requests.get_mut(id) else {
                debug_assert!(false, "engine invariant: untracked request {id:?}");
                return;
            };
            let is_first = req.first_token_at.is_none();
            if is_first {
                req.first_token_at = Some(at);
                req.generated = 1;
                self.stats.output_tokens += 1;
            }
            let should_cache = match self.cfg.mode {
                EngineMode::PrefillOnly => self.cfg.cache_on_prefill,
                _ => self.cfg.prefix_caching,
            };
            (
                req.new.prompt.clone(),
                req.new.cache_id,
                req.table.blocks().to_vec(),
                should_cache,
                is_first,
            )
        };
        // Implicit caching: register the prompt's full blocks.
        if should_cache {
            let chain = self.rtc.insert_prefix(at, &prompt, &blocks);
            if let Some(cid) = cache_id {
                self.rtc.register_id(cid, chain);
            }
        }
        if is_first_completion {
            events.push(EngineEvent::FirstToken { id, at });
            if self.tracer.is_enabled() {
                let span = self.req_spans.get(&id).copied().unwrap_or(SpanId::NONE);
                self.tracer
                    .event_in(at, "request.first_token", span, vec![("req", id.0.into())]);
            }
        }

        let Some(req) = self.requests.get_mut(id) else {
            debug_assert!(false, "engine invariant: untracked request {id:?}");
            return;
        };
        match self.cfg.mode {
            EngineMode::PrefillOnly => {
                req.phase = Phase::AwaitingMigration;
                let kv_tokens = req.table.tokens();
                if self.tracer.is_enabled() {
                    let span = self.req_spans.get(&id).copied().unwrap_or(SpanId::NONE);
                    self.tracer.event_in(
                        at,
                        "request.prefill_complete",
                        span,
                        vec![("req", id.0.into()), ("kv_tokens", kv_tokens.into())],
                    );
                }
                events.push(EngineEvent::PrefillComplete { id, at, kv_tokens });
            }
            _ => {
                if req.decode_done() {
                    req.finished_at = Some(at);
                    self.finish_request(at, id, events);
                } else {
                    req.phase = Phase::Decoding;
                    self.running_decode.push(id);
                }
            }
        }
    }

    fn finish_request(&mut self, at: SimTime, id: RequestId, events: &mut Vec<EngineEvent>) {
        self.running_decode.retain(|&r| r != id);
        let Some(mut req) = self.requests.remove(id) else {
            debug_assert!(false, "engine invariant: untracked request {id:?}");
            return;
        };
        req.phase = Phase::Finished;
        // A finishing request has both timestamps by construction; a zeroed
        // latency record beats crashing the serving loop if that ever breaks.
        let latency = req.latency().unwrap_or_else(|| {
            debug_assert!(false, "finished request {id:?} lacks timestamps");
            RequestLatency {
                ttft: SimDuration::ZERO,
                tpot: SimDuration::ZERO,
                jct: SimDuration::ZERO,
                output_tokens: req.generated as u64,
            }
        });
        let blocks = req.table.take_blocks();
        self.rtc.free(&blocks);
        if let Some(acq) = req.acquired.take() {
            self.rtc.release_prefix(&acq);
        }
        self.stats.finished += 1;
        if self.tracer.is_enabled() {
            let span = self.req_spans.remove(&id).unwrap_or(SpanId::NONE);
            self.tracer.event_in(
                at,
                "request.finished",
                span,
                vec![
                    ("req", id.0.into()),
                    ("output_tokens", req.generated.into()),
                    ("prompt_tokens", req.prompt_len().into()),
                    ("cached_tokens", req.cached_tokens.into()),
                    ("preemptions", req.preemptions.into()),
                ],
            );
            self.tracer.end_span(at, span);
        }
        events.push(EngineEvent::Finished {
            id,
            at,
            latency,
            prompt_tokens: req.prompt_len(),
            cached_tokens: req.cached_tokens,
        });
    }

    /// Prefill-only mode: the driver finished migrating `id`'s KV to a
    /// decode TE; release the local copy.
    pub fn release_migrated(&mut self, now: SimTime, id: RequestId) {
        let Some(mut req) = self.requests.remove(id) else {
            return;
        };
        debug_assert_eq!(req.phase, Phase::AwaitingMigration);
        let blocks = req.table.take_blocks();
        self.rtc.free(&blocks);
        if let Some(acq) = req.acquired.take() {
            self.rtc.release_prefix(&acq);
        }
        if self.tracer.is_enabled() {
            let span = self.req_spans.remove(&id).unwrap_or(SpanId::NONE);
            self.tracer.event_in(
                now,
                "request.migrated_out",
                span,
                vec![("req", id.0.into())],
            );
            self.tracer.end_span(now, span);
        }
        self.counters.incr("engine.migrated_out");
    }

    /// KV tokens a migrating request will ship (for transfer sizing).
    pub fn migration_kv_tokens(&self, id: RequestId) -> Option<usize> {
        self.requests.get(id).map(|r| r.table.tokens())
    }

    /// Read-only lookahead: the [`EngineEvent::PrefillComplete`]s the next
    /// [`Engine::advance`] at `at` will emit, as `(id, kv_tokens)` pairs
    /// appended to `out`.
    ///
    /// The cluster's wide parallel windows use this to bound a prefill
    /// wake's earliest cross-TE effect (the KV migrations it will start)
    /// *before* running the wake on a worker thread. The answer is exact:
    /// an in-flight iteration's prefill parts are frozen at batch
    /// formation, a part completes its request iff it covers the whole
    /// remaining prefill, and the block table was already extended to the
    /// full chunk when the batch formed, so `table.tokens()` equals the
    /// `kv_tokens` the completion event will carry.
    pub fn peek_prefill_completions(&self, at: SimTime, out: &mut Vec<(RequestId, usize)>) {
        let Some(it) = &self.current else {
            return;
        };
        if it.ends_at > at {
            return;
        }
        for &(id, chunk) in &it.prefill_parts {
            let Some(req) = self.requests.get(id) else {
                continue;
            };
            if req.phase == Phase::Prefilling && req.prefill_remaining() == chunk {
                out.push((id, req.table.tokens()));
            }
        }
    }

    /// Lower bound on the span of the next iteration a `PrefillOnly`
    /// engine could start from a wake at `at` (decode work would
    /// invalidate the bound — callers must not use it on other modes).
    ///
    /// Any batch [`form_batch`](Engine::form_batch) can produce draws its
    /// prefill parts from `running_prefill` and `waiting`. Write
    /// `T_j = min(remaining_j, chunk_budget)` for candidate `j`'s largest
    /// possible chunk. For the batch's smallest-context member `k`, the
    /// batch's total tokens reach at least `T_k` (either `k`'s chunk was
    /// budget-truncated — then the batch consumed the whole budget — or it
    /// covered `min(remaining_k, budget)` outright), its token-weighted
    /// context average is at least `ctx_k`, and every per-chunk cost term
    /// is additive and monotone, so
    /// `step_time(batch) >= step_time(prefill(T_k, ctx_k)) >= min_j
    /// step_time(prefill(T_j, ctx_j))`. An iteration in flight at `at`
    /// completes first, committing its chunks — candidates are adjusted
    /// for that before pricing. Returns `None` when no prefill work will
    /// be queued: no iteration can start, so no re-wake is coming.
    pub fn next_prefill_span_floor(&self, at: SimTime) -> Option<SimDuration> {
        let budget = self.cfg.prefill_chunk_tokens;
        // Chunks the due in-flight iteration will commit before the next
        // batch forms: `(id, chunk)` lowers that request's remaining.
        let committing = |id: RequestId| -> usize {
            match &self.current {
                Some(it) if it.ends_at <= at => it
                    .prefill_parts
                    .iter()
                    .find(|&&(pid, _)| pid == id)
                    .map_or(0, |&(_, c)| c),
                _ => 0,
            }
        };
        let mut floor: Option<SimDuration> = None;
        for id in self
            .running_prefill
            .iter()
            .chain(self.waiting.iter())
            .copied()
        {
            let Some(req) = self.requests.get(id) else {
                continue;
            };
            let done = committing(id);
            let remaining = req.prefill_remaining().saturating_sub(done);
            if remaining == 0 {
                continue; // completes (migration-fenced), never re-chunks
            }
            let context = (req.prefilled_tokens + done) as u64;
            let chunk = remaining.min(budget) as u64;
            let est = self.cost.step_time(&BatchWork::prefill(chunk, context));
            floor = Some(floor.map_or(est, |f| f.min(est)));
        }
        floor
    }
}
