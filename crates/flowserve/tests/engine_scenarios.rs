//! End-to-end scenarios against a standalone FlowServe engine: a minimal
//! driver loop plays the role the platform (deepserve) plays in production.

use flowserve::{
    synthetic_tokens, Engine, EngineConfig, EngineEvent, EngineVersion, NewRequest, RequestId,
    TokenId,
};
use llm_model::{ExecCostModel, ModelSpec, Parallelism};
use npu::specs::ClusterSpec;
use simcore::{FifoChannel, RequestLatency, SimDuration, SimTime};

fn cost_34b_tp4() -> ExecCostModel {
    let c = ClusterSpec::gen2_cluster(1);
    ExecCostModel::new(
        c.server.chip.clone(),
        c.hccs,
        ModelSpec::internal_34b(),
        Parallelism::tp(4),
    )
}

fn prompt(seed: u64, len: usize) -> Vec<TokenId> {
    synthetic_tokens(seed, len, 64_000)
}

/// Drives one engine to completion (or until `deadline`), executing
/// populate transfers on a PCIe-like channel. Returns finished events.
struct Driver {
    engine: Engine,
    now: SimTime,
    pcie: FifoChannel,
    /// (completion_time, ticket)
    populates: Vec<(SimTime, flowserve::PopulateTicket)>,
    finished: Vec<(RequestId, RequestLatency, usize, usize)>,
    first_tokens: Vec<(RequestId, SimTime)>,
    prefill_complete: Vec<(RequestId, SimTime, usize)>,
}

impl Driver {
    fn new(engine: Engine) -> Self {
        Driver {
            engine,
            now: SimTime::ZERO,
            pcie: FifoChannel::new(64e9, SimDuration::from_micros(50)),
            populates: Vec::new(),
            finished: Vec::new(),
            first_tokens: Vec::new(),
            prefill_complete: Vec::new(),
        }
    }

    fn submit(&mut self, at: SimTime, req: NewRequest) -> bool {
        assert!(at >= self.now, "submissions must be time-ordered");
        self.run_until(at);
        self.now = at;
        let out = self.engine.submit(self.now, req);
        if let Some(p) = out.populate {
            let bytes = p.tokens as u64 * self.engine.cost_model().model().kv_bytes_per_token();
            let done = self.pcie.enqueue(self.now, bytes);
            self.populates.push((done, p.ticket));
        }
        out.accepted
    }

    fn step(&mut self) -> bool {
        // Next event: engine wake or populate completion.
        let wake = self.engine.next_wake(self.now);
        let pop = self.populates.iter().map(|&(t, _)| t).min();
        let next = match (wake, pop) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        self.now = self.now.max_of(next);
        // Deliver due populates first.
        let due: Vec<_> = self
            .populates
            .iter()
            .filter(|&&(t, _)| t <= self.now)
            .map(|&(_, tk)| tk)
            .collect();
        self.populates.retain(|&(t, _)| t > self.now);
        for ticket in due {
            self.engine.populate_transfer_done(self.now, ticket);
        }
        for ev in self.engine.advance(self.now) {
            match ev {
                EngineEvent::Finished {
                    id,
                    latency,
                    prompt_tokens,
                    cached_tokens,
                    ..
                } => self
                    .finished
                    .push((id, latency, prompt_tokens, cached_tokens)),
                EngineEvent::FirstToken { id, at } => self.first_tokens.push((id, at)),
                EngineEvent::PrefillComplete { id, at, kv_tokens } => {
                    self.prefill_complete.push((id, at, kv_tokens))
                }
                EngineEvent::Rejected { .. } | EngineEvent::Tokens { .. } => {}
            }
        }
        true
    }

    fn run_until(&mut self, deadline: SimTime) {
        loop {
            let wake = self.engine.next_wake(self.now);
            let pop = self.populates.iter().map(|&(t, _)| t).min();
            let next = match (wake, pop) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > deadline {
                break;
            }
            self.step();
        }
    }

    fn run_to_completion(&mut self) {
        let mut guard = 0;
        while self.step() {
            guard += 1;
            assert!(guard < 2_000_000, "engine did not drain (livelock?)");
        }
    }
}

fn req(id: u64, seed: u64, prompt_len: usize, output: u32, at: SimTime) -> NewRequest {
    NewRequest {
        id: RequestId(id),
        prompt: prompt(seed, prompt_len).into(),
        target_output: output,
        arrival: at,
        cache_id: None,
    }
}

#[test]
fn single_request_completes_with_sane_latency() {
    let mut d = Driver::new(Engine::new(EngineConfig::colocated(), cost_34b_tp4()));
    assert!(d.submit(SimTime::ZERO, req(1, 1, 2048, 200, SimTime::ZERO)));
    d.run_to_completion();
    assert_eq!(d.finished.len(), 1);
    let (_, lat, ptoks, cached) = &d.finished[0];
    assert_eq!(*ptoks, 2048);
    assert_eq!(*cached, 0);
    assert_eq!(lat.output_tokens, 200);
    // TTFT: ~2048/512 chunks of prefill, each a few hundred ms.
    let ttft_s = lat.ttft.as_secs_f64();
    assert!((0.1..5.0).contains(&ttft_s), "TTFT {ttft_s}s");
    // TPOT: lone sequence decodes at the weight-streaming floor.
    let tpot_ms = lat.tpot.as_millis_f64();
    assert!((5.0..80.0).contains(&tpot_ms), "TPOT {tpot_ms}ms");
    assert!(lat.jct > lat.ttft);
}

#[test]
fn prefix_cache_hit_cuts_ttft() {
    let mut d = Driver::new(Engine::new(EngineConfig::colocated(), cost_34b_tp4()));
    // Two identical prompts, back to back.
    assert!(d.submit(SimTime::ZERO, req(1, 7, 2048, 50, SimTime::ZERO)));
    d.run_to_completion();
    let cold_ttft = d.finished[0].1.ttft;
    let t2 = SimTime::from_secs(100);
    assert!(d.submit(t2, req(2, 7, 2048, 50, t2)));
    d.run_to_completion();
    assert_eq!(d.finished.len(), 2);
    let (_, warm, _, cached) = &d.finished[1];
    assert!(
        *cached >= 2048 - 16 - 16,
        "second request should hit the cache: cached={cached}"
    );
    assert!(
        warm.ttft.as_secs_f64() < 0.5 * cold_ttft.as_secs_f64(),
        "warm TTFT {warm:?} vs cold {cold_ttft}"
    );
}

#[test]
fn continuous_batching_overlaps_requests() {
    let mut d = Driver::new(Engine::new(EngineConfig::colocated(), cost_34b_tp4()));
    let n = 8;
    for i in 0..n {
        let at = SimTime::from_millis(10 * i);
        assert!(d.submit(at, req(i, 100 + i, 1024, 100, at)));
    }
    d.run_to_completion();
    assert_eq!(d.finished.len() as u64, n);
    // Makespan must be far below serial execution.
    let last = d.finished.iter().map(|(_, l, _, _)| l.jct).max().unwrap();
    let serial_estimate = d.finished[0].1.jct.as_secs_f64() * n as f64;
    assert!(
        last.as_secs_f64() < 0.6 * serial_estimate,
        "batching should overlap: makespan {last}, serial ~{serial_estimate}"
    );
}

#[test]
fn v1_v2_v3_ordering_under_load() {
    // Same offered decode workload, three engine versions: throughput at
    // completion must strictly improve (Figure 3's ordering).
    let mut makespans = Vec::new();
    for version in [
        EngineVersion::v1(),
        EngineVersion::v2(),
        EngineVersion::v3(),
    ] {
        let cfg = EngineConfig {
            version,
            ..EngineConfig::colocated()
        };
        let mut d = Driver::new(Engine::new(cfg, cost_34b_tp4()));
        for i in 0..32u64 {
            assert!(d.submit(SimTime::ZERO, req(i, 500 + i, 512, 256, SimTime::ZERO)));
        }
        d.run_to_completion();
        assert_eq!(d.finished.len(), 32);
        let makespan = d.finished.iter().map(|(_, l, _, _)| l.jct).max().unwrap();
        makespans.push(makespan.as_secs_f64());
    }
    assert!(
        makespans[0] > makespans[1] && makespans[1] > makespans[2],
        "v1 > v2 > v3 expected, got {makespans:?}"
    );
}

#[test]
fn prefill_only_engine_emits_kv_and_releases_on_migration() {
    let cost = cost_34b_tp4();
    let mut d = Driver::new(Engine::new(EngineConfig::prefill_only(), cost));
    assert!(d.submit(SimTime::ZERO, req(1, 3, 2048, 200, SimTime::ZERO)));
    d.run_to_completion();
    assert_eq!(d.prefill_complete.len(), 1);
    let (id, _, kv_tokens) = d.prefill_complete[0];
    assert_eq!(kv_tokens, 2048);
    assert_eq!(d.finished.len(), 0, "prefill TE never finishes requests");
    assert_eq!(d.engine.migration_kv_tokens(id), Some(2048));
    d.engine.release_migrated(d.now, id);
    assert_eq!(d.engine.migration_kv_tokens(id), None);
    assert_eq!(d.engine.counters().get("engine.migrated_out"), 1);
}

#[test]
fn decode_only_engine_serves_migrated_request() {
    let cost = cost_34b_tp4();
    let mut d = Driver::new(Engine::new(EngineConfig::decode_only(), cost));
    let arrival = SimTime::ZERO;
    let first_token = SimTime::from_millis(400);
    d.now = first_token;
    d.engine.submit_with_kv(
        first_token,
        req(1, 3, 2048, 100, arrival),
        2048,
        first_token,
    );
    d.run_to_completion();
    assert_eq!(d.finished.len(), 1);
    let (_, lat, _, _) = &d.finished[0];
    assert_eq!(lat.output_tokens, 100);
    assert_eq!(lat.ttft, SimDuration::from_millis(400));
}

#[test]
fn oversized_prompt_is_rejected() {
    let mut d = Driver::new(Engine::new(EngineConfig::colocated(), cost_34b_tp4()));
    let huge = 10_000_000; // far beyond KV capacity
    assert!(!d.submit(SimTime::ZERO, req(1, 1, huge, 10, SimTime::ZERO)));
    assert_eq!(d.engine.counters().get("engine.rejected"), 1);
}

#[test]
fn single_token_output_finishes_at_prefill() {
    let mut d = Driver::new(Engine::new(EngineConfig::colocated(), cost_34b_tp4()));
    assert!(d.submit(SimTime::ZERO, req(1, 1, 512, 1, SimTime::ZERO)));
    d.run_to_completion();
    assert_eq!(d.finished.len(), 1);
    let (_, lat, _, _) = &d.finished[0];
    assert_eq!(lat.output_tokens, 1);
    assert_eq!(lat.tpot, SimDuration::ZERO);
    assert_eq!(lat.ttft, lat.jct);
}

#[test]
fn memory_pressure_triggers_preemption_not_deadlock() {
    // Tiny KV budget: long decodes must preempt each other but all finish.
    // 64 GB HBM, 17.2 GB weights: reserving 74% leaves ~10.8K KV tokens,
    // far below the workload's ~32K-token demand.
    let cfg = EngineConfig {
        kv_reserve_frac: 0.74,
        dram_blocks: 0,
        ..EngineConfig::colocated()
    };
    let mut d = Driver::new(Engine::new(cfg, cost_34b_tp4()));
    for i in 0..12u64 {
        assert!(d.submit(SimTime::ZERO, req(i, 900 + i, 2048, 600, SimTime::ZERO)));
    }
    d.run_to_completion();
    assert_eq!(d.finished.len(), 12, "everything must eventually finish");
    for (_, lat, _, _) in &d.finished {
        assert_eq!(lat.output_tokens, 600);
    }
    assert!(
        d.engine.stats().preemptions > 0,
        "this workload must overflow KV and preempt"
    );
}

#[test]
fn populate_path_restores_dram_cache() {
    // Small HBM pool + DRAM tier: first request caches, pressure demotes,
    // third request populates back from DRAM.
    // ~22K KV tokens (1377 blocks) on the NPU with a large DRAM tier
    // behind it.
    let cfg = EngineConfig {
        kv_reserve_frac: 0.73,
        dram_blocks: 8192,
        ..EngineConfig::colocated()
    };
    let mut d = Driver::new(Engine::new(cfg, cost_34b_tp4()));
    assert!(d.submit(SimTime::ZERO, req(1, 42, 2048, 20, SimTime::ZERO)));
    d.run_to_completion();
    // Blow the NPU cache with different prompts: 12 x 128 blocks = 1536
    // cached blocks > the 1377-block pool, forcing demotion to DRAM.
    let t1 = SimTime::from_secs(200);
    for i in 0..12u64 {
        assert!(d.submit(
            t1 + SimDuration::from_millis(i),
            req(10 + i, 600 + i, 2048, 20, t1)
        ));
    }
    d.run_to_completion();
    // Re-send the first prompt: the tail should come back via populate.
    let t2 = SimTime::from_secs(400);
    assert!(d.submit(t2, req(99, 42, 2048, 20, t2)));
    d.run_to_completion();
    let populates = d.engine.counters().get("engine.populates");
    let hit_tokens = d.engine.counters().get("engine.cache_hit_tokens");
    assert!(
        populates >= 1 || hit_tokens >= 1024,
        "expected populate or large hit: populates={populates} hits={hit_tokens}"
    );
    assert!(
        d.engine.rtc().counters().get("rtc.swap_out") > 0,
        "cache pressure should have demoted blocks to DRAM"
    );
    assert_eq!(d.finished.len(), 14);
}

#[test]
fn full_trace_reconstructs_request_lifecycles() {
    use simcore::trace::TraceLevel;
    let mut d = Driver::new(Engine::new(EngineConfig::colocated(), cost_34b_tp4()));
    d.engine.enable_tracing(TraceLevel::Full, 1 << 16);
    let targets = [40u32, 1, 96];
    for (i, &out) in targets.iter().enumerate() {
        let at = SimTime::from_millis(20 * i as u64);
        assert!(d.submit(at, req(i as u64 + 1, 60 + i as u64, 1024, out, at)));
    }
    d.run_to_completion();
    assert_eq!(d.finished.len(), 3);
    let trace = d.engine.take_trace();
    assert_eq!(trace.dropped, 0);

    for (i, &out) in targets.iter().enumerate() {
        let id = i as u64 + 1;
        let by_req = |label: &'static str| {
            trace
                .events_labeled(label)
                .filter(|e| e.attr_u64("req") == Some(id))
                .collect::<Vec<_>>()
        };
        let queued = by_req("request.queued");
        let first = by_req("request.first_token");
        let fin = by_req("request.finished");
        assert_eq!(
            (queued.len(), first.len(), fin.len()),
            (1, 1, 1),
            "req {id}"
        );
        assert!(
            queued[0].at <= first[0].at && first[0].at <= fin[0].at,
            "req {id}: queued {} <= first_token {} <= finished {}",
            queued[0].at,
            first[0].at,
            fin[0].at
        );
        assert_eq!(fin[0].attr_u64("output_tokens"), Some(out as u64));
        // Token 1 comes out of prefill; every later token is one decode
        // iteration, so Full-level decode_iter events count out - 1.
        assert_eq!(
            by_req("decode_iter").len() as u32,
            out - 1,
            "req {id}: decode iterations"
        );
        // 1024-token prompt over 512-token chunks: at least two chunks.
        assert!(
            by_req("prefill_chunk").len() >= 2,
            "req {id}: prefill chunks"
        );
        // The request's span closes exactly at the finished event.
        let span = trace
            .spans_labeled("request")
            .find(|s| s.attr_u64("req") == Some(id))
            .expect("request span");
        assert_eq!(span.end, Some(fin[0].at), "req {id}: span end");
    }

    // Every iteration span nests its per-request events: batch sizes in
    // iteration attrs must sum to at least the total decode work done.
    let iters = trace.spans_labeled("iteration").count();
    assert!(iters > 0, "iteration spans present");
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut d = Driver::new(Engine::new(EngineConfig::colocated(), cost_34b_tp4()));
        for i in 0..10u64 {
            let at = SimTime::from_millis(37 * i);
            assert!(d.submit(
                at,
                req(i, i * 13 + 1, 700 + (i as usize * 53) % 900, 64, at)
            ));
        }
        d.run_to_completion();
        d.finished
            .iter()
            .map(|(id, l, _, _)| (id.0, l.jct.as_nanos(), l.ttft.as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "identical inputs must replay identically");
}
