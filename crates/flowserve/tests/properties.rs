//! Property-based tests for FlowServe's core invariants: block accounting,
//! radix-tree consistency, and whole-engine conservation under random
//! workloads.

use flowserve::block::BlockPool;
use flowserve::rtc::{Location, Rtc, RtcConfig};
use flowserve::{
    synthetic_tokens, Engine, EngineConfig, EngineEvent, EngineMode, NewRequest, RequestId,
};
use llm_model::{ExecCostModel, ModelSpec, Parallelism};
use npu::specs::ClusterSpec;
use proptest::prelude::*;
use simcore::SimTime;

const B: usize = 16;

fn rtc(npu: usize, dram: usize) -> Rtc {
    Rtc::new(RtcConfig {
        block_size: B,
        npu_blocks: npu,
        dram_blocks: dram,
    })
}

proptest! {
    /// Pool accounting is conserved across arbitrary alloc/share/free
    /// interleavings: available + in_use == capacity always, and a fully
    /// drained pool returns to all-free.
    #[test]
    fn block_pool_conserves_blocks(ops in prop::collection::vec(0u8..4, 1..300)) {
        let cap = 64;
        let mut pool = BlockPool::new(cap);
        let mut held: Vec<flowserve::BlockId> = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if let Ok(b) = pool.alloc() {
                        held.push(b);
                    }
                }
                1 => {
                    if let Some(&b) = held.last() {
                        pool.incref(b);
                        held.push(b);
                    }
                }
                2 | 3 => {
                    if let Some(b) = held.pop() {
                        pool.decref(b);
                    }
                }
                _ => unreachable!(),
            }
            prop_assert_eq!(pool.available() + pool.in_use(), cap);
        }
        for b in held.drain(..) {
            pool.decref(b);
        }
        prop_assert_eq!(pool.available(), cap);
    }

    /// Whatever prefixes get inserted, matching an inserted prompt returns
    /// exactly its full-block length, and the NPU-resident prefix is never
    /// longer than the match.
    #[test]
    fn rtc_match_equals_insertion(lens in prop::collection::vec(1usize..200, 1..20)) {
        let mut r = rtc(4096, 0);
        let mut prompts = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let toks = synthetic_tokens(i as u64 + 1, len, 64_000);
            let blocks = r.alloc_blocks(len.div_ceil(B)).expect("sized pool");
            r.insert_prefix(SimTime::from_secs(i as u64), &toks, &blocks);
            r.free(&blocks);
            prompts.push(toks);
        }
        for p in &prompts {
            let m = r.match_by_prefix_token(p);
            prop_assert_eq!(m.tokens, p.len() / B * B, "full blocks match");
            prop_assert!(m.npu_prefix_nodes <= m.nodes.len());
        }
    }

    /// Under arbitrary allocation pressure with a DRAM tier, the cached
    /// NPU residency always stays a *prefix* of each chain: populate plans
    /// only ever cover the contiguous DRAM tail.
    #[test]
    fn eviction_keeps_npu_residency_a_prefix(
        pressure in prop::collection::vec(1usize..6, 1..30),
    ) {
        let mut r = rtc(64, 64);
        let prompt = synthetic_tokens(42, 40 * B, 64_000); // 40 blocks
        let blocks = r.alloc_blocks(40).expect("fits");
        r.insert_prefix(SimTime::ZERO, &prompt, &blocks);
        r.free(&blocks);
        let mut held = Vec::new();
        for (i, &n) in pressure.iter().enumerate() {
            if let Ok(bs) = r.alloc_blocks(n) {
                if i % 2 == 0 {
                    held.push(bs);
                } else {
                    r.free(&bs);
                }
            }
            let m = r.match_by_prefix_token(&prompt);
            // Every node before the npu prefix boundary is NPU, after is
            // not — checked via the dram_nodes accessor consistency.
            prop_assert_eq!(m.nodes.len() - m.npu_prefix_nodes, m.dram_nodes().len());
        }
        for bs in held {
            r.free(&bs);
        }
    }

    /// Populate round-trip: after completing any populate plan, the
    /// planned nodes are NPU-resident and a re-match sees a no-smaller
    /// NPU prefix.
    #[test]
    fn populate_extends_npu_prefix(evict_blocks in 1usize..40) {
        let mut r = rtc(64, 64);
        let prompt = synthetic_tokens(7, 40 * B, 64_000);
        let blocks = r.alloc_blocks(40).expect("fits");
        r.insert_prefix(SimTime::ZERO, &prompt, &blocks);
        r.free(&blocks);
        r.copy_to_dram(24 + evict_blocks.min(39));
        let before = r.match_by_prefix_token(&prompt);
        if let Some(plan) = r.populate(SimTime::ZERO, &before) {
            let planned = plan.nodes.clone();
            r.complete_populate(plan.ticket);
            let after = r.match_by_prefix_token(&prompt);
            prop_assert!(after.npu_prefix_nodes >= before.npu_prefix_nodes);
            for n in planned {
                // All planned nodes are NPU now. (Location check via the
                // public match: they fall inside the NPU prefix.)
                let idx = after.nodes.iter().position(|&x| x == n).expect("still cached");
                prop_assert!(idx < after.npu_prefix_nodes);
            }
        }
        let _ = Location::Npu; // keep the import honest
    }

    /// Whole-engine conservation: any random small workload completes all
    /// requests, emits exactly target_output tokens each, and returns the
    /// HBM pool to its idle level (only cache retention may hold blocks).
    #[test]
    fn engine_completes_and_conserves(
        spec in prop::collection::vec((8usize..600, 1u32..40, 0u64..2000), 1..12),
    ) {
        let cluster = ClusterSpec::gen2_cluster(1);
        let cost = ExecCostModel::new(
            cluster.server.chip.clone(),
            cluster.hccs,
            ModelSpec::internal_34b(),
            Parallelism::tp(4),
        );
        let cfg = EngineConfig {
            mode: EngineMode::Colocated,
            prefix_caching: false, // so idle pool returns to full
            ..EngineConfig::colocated()
        };
        let total_blocks = {
            let e = Engine::new(cfg.clone(), cost.clone());
            e.rtc().npu_free_blocks()
        };
        let mut engine = Engine::new(cfg, cost);
        let mut now = SimTime::ZERO;
        let mut expected: std::collections::HashMap<u64, u32> = Default::default();
        let mut finished = 0;
        for (i, &(plen, out, gap_ms)) in spec.iter().enumerate() {
            now += simcore::SimDuration::from_millis(gap_ms);
            // Drain engine up to `now`, counting completions.
            while let Some(w) = engine.next_wake(now) {
                if w > now { break; }
                for ev in engine.advance(w) {
                    if let EngineEvent::Finished { id, latency, .. } = ev {
                        prop_assert_eq!(latency.output_tokens, expected[&id.0] as u64);
                        finished += 1;
                    }
                }
            }
            let accepted = engine
                .submit(now, NewRequest {
                    id: RequestId(i as u64),
                    prompt: synthetic_tokens(i as u64 * 7 + 1, plen, 64_000).into(),
                    target_output: out,
                    arrival: now,
                    cache_id: None,
                })
                .accepted;
            prop_assert!(accepted);
            expected.insert(i as u64, out);
        }
        let mut guard = 0;
        while let Some(w) = engine.next_wake(now) {
            now = w.max_of(now);
            for ev in engine.advance(now) {
                if let EngineEvent::Finished { id, latency, .. } = ev {
                    prop_assert_eq!(latency.output_tokens, expected[&id.0] as u64);
                    finished += 1;
                }
            }
            guard += 1;
            prop_assert!(guard < 500_000, "engine failed to drain");
        }
        prop_assert_eq!(finished, spec.len());
        prop_assert_eq!(engine.rtc().npu_free_blocks(), total_blocks,
            "all KV blocks must return to the pool");
    }
}
