pub fn coordinator() {
    std::thread::scope(|_| {});
}
