use std::collections::HashMap;

pub struct FleetRegistry {
    pub hosts: HashMap<u32, Vec<u32>>,
}

impl FleetRegistry {
    pub fn bad_pick_host(&self, model: u32) -> u32 {
        self.hosts.get(&model).unwrap()[0]
    }

    pub fn bad_multicast_order(&self) -> usize {
        let mut n = 0;
        for (_, tes) in &self.hosts {
            n += tes.len();
        }
        n
    }

    pub fn replica_count(&self) -> usize {
        // detlint: allow(unordered-iter) — commutative count; order is irrelevant
        self.hosts.values().map(Vec::len).sum()
    }
}
