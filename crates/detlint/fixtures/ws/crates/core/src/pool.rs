pub fn persistent_workers() {
    let handle = std::thread::spawn(|| {});
    let _ = handle.join();
}
