use std::collections::HashMap;

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_iter(sessions: HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_, v) in &sessions {
        sum += v;
    }
    sum
}

pub fn paced_now() -> u64 {
    // detlint: allow(wall-clock) — the facade's sole sim-to-wall bridge
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
