pub fn shipped() -> u32 {
    1
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn order_does_not_matter_here() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (_, v) in &m {
            let _ = v;
        }
        let _ = std::time::Instant::now();
    }
}
