pub fn oops(v: Option<u32>) -> u32 {
    // detlint: allow(nonexistent-rule) — typo'd rule id
    // detlint: this marker has no allow clause
    v.unwrap_or(0)
}
