pub fn bad_hasher() -> u64 {
    let h = thread_rng();
    h
}

pub fn waived_seed() -> u64 {
    // detlint: allow(rng) — fixture: seed is captured into the replay plan at boot
    getrandom(0)
}
