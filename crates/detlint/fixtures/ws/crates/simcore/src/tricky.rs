//! Doc comment mentioning detlint: allow(panic) — must not register a waiver.

/// Quoting `.unwrap()` and `thread_rng` in docs is fine.
pub fn doc_quoted() -> &'static str {
    "calling .unwrap() or Instant::now() in a string literal is fine"
}

pub fn raw_strings() -> &'static str {
    r#"std::time::Instant::now() inside a raw string"#
}

/* block comment:
   std::thread::spawn(|| {});
   .unwrap()
*/
pub fn block_commented() -> u32 {
    'x'.len_utf8() as u32
}

pub fn unused_waiver() -> u32 {
    // detlint: allow(panic) — fixture: nothing to waive here
    7
}
