use std::collections::HashMap;

pub struct Registry {
    pub loads: HashMap<u32, u64>,
}

impl Registry {
    pub fn bad_sum(&self) -> u64 {
        let mut total = 0;
        for (_, v) in &self.loads {
            total += v;
        }
        total
    }

    pub fn waived_sum(&self) -> u64 {
        // detlint: allow(unordered-iter) — commutative sum; order is irrelevant
        self.loads.values().sum()
    }
}
