pub fn bad_now() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn waived_now() -> u64 {
    // detlint: allow(wall-clock) — one-shot boot diagnostic, never feeds sim state
    let _ = std::time::SystemTime::UNIX_EPOCH;
    0
}
