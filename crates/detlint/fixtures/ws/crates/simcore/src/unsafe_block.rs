pub fn bad_unsafe(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn good_unsafe(p: *const u32) -> u32 {
    // SAFETY: fixture — p is non-null by construction in the caller
    unsafe { *p }
}
