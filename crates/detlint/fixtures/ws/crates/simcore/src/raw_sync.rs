pub fn shared_counter() -> u32 {
    let m = std::sync::Mutex::new(7u32);
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// detlint: allow(raw-sync) — one-shot init flag for a doc example, not sim state
static INIT: std::sync::Once = std::sync::Once::new();

pub fn arc_is_fine(x: std::sync::Arc<u32>) -> u32 {
    *x
}
