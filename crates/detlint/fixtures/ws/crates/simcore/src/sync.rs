use std::sync::{Mutex, PoisonError};

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn nested_bad(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn nested_waived(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        // detlint: allow(lock-order) — global order is a-then-b, held everywhere
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn sequential_ok(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let first = *ga;
        drop(ga);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        first + *gb
    }
}
