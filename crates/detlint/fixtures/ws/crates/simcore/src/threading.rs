pub fn bad_spawn() {
    std::thread::spawn(|| {});
}

pub fn waived_scope() {
    // detlint: allow(thread) — fixture: stands in for a coordinator worker pool
    std::thread::scope(|_| {});
}
