pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn waived_expect(v: Option<u32>) -> u32 {
    // detlint: allow(panic) — fixture invariant: caller checked is_some
    v.expect("checked")
}

pub fn missing_justification(v: Option<u32>) -> u32 {
    // detlint: allow(panic)
    v.unwrap()
}
