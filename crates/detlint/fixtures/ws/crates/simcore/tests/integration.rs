use std::collections::HashMap;

#[test]
fn test_files_are_exempt_from_determinism_rules() {
    let m: HashMap<u32, u32> = HashMap::new();
    for (_, v) in &m {
        let _ = v;
    }
    let _ = std::time::Instant::now();
    std::thread::spawn(|| {}).join().unwrap();
}

#[test]
fn unsafe_still_needs_safety_even_in_tests() {
    let x = 5u32;
    let p = &x as *const u32;
    let _ = unsafe { *p };
}
