pub fn wall_time() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
