//! Fixture-corpus tests: one deliberate violation and one valid waiver per
//! rule, scope exemptions (bench, cluster coordinator, test code), lexer
//! tricky cases, and the JSON report shape. The corpus lives in
//! `fixtures/ws/` and is excluded from real scans by `scan::SKIP_PREFIXES`.

use detlint::scan;
use std::path::Path;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("detlint lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn fixture_violations_exact() {
    let report = scan(&fixture_root()).expect("fixture scan");
    let got: Vec<(String, usize, String)> = report
        .violations
        .iter()
        .map(|v| (v.file.clone(), v.line, v.rule.clone()))
        .collect();
    let expected: Vec<(String, usize, String)> = [
        ("crates/core/src/fleet.rs", 9, "panic"),
        ("crates/core/src/fleet.rs", 14, "unordered-iter"),
        ("crates/gateway/src/facade.rs", 4, "panic"),
        ("crates/gateway/src/facade.rs", 9, "unordered-iter"),
        ("crates/simcore/src/bad_iter.rs", 10, "unordered-iter"),
        ("crates/simcore/src/bad_waiver.rs", 2, "bad-waiver"),
        ("crates/simcore/src/bad_waiver.rs", 3, "bad-waiver"),
        ("crates/simcore/src/clock.rs", 2, "wall-clock"),
        ("crates/simcore/src/panics.rs", 2, "panic"),
        ("crates/simcore/src/panics.rs", 12, "panic"),
        ("crates/simcore/src/randomness.rs", 2, "rng"),
        ("crates/simcore/src/raw_sync.rs", 2, "raw-sync"),
        ("crates/simcore/src/sync.rs", 11, "lock-order"),
        ("crates/simcore/src/threading.rs", 2, "thread"),
        ("crates/simcore/src/unsafe_block.rs", 2, "unsafe"),
        ("crates/simcore/tests/integration.rs", 17, "unsafe"),
    ]
    .iter()
    .map(|(f, l, r)| (f.to_string(), *l, r.to_string()))
    .collect();
    assert_eq!(got, expected, "violation set must match the corpus exactly");
    assert_eq!(report.files_scanned, 17);
    assert!(!report.is_clean());
}

#[test]
fn fixture_diagnostics_render_exact() {
    let report = scan(&fixture_root()).expect("fixture scan");
    let text = report.render_text(false);

    // One exact diagnostic block per rule.
    for block in [
        "crates/core/src/fleet.rs:9: [panic] `unwrap()`: library code must degrade \
         gracefully (debug_assert + fallback) instead of panicking\n    \
         self.hosts.get(&model).unwrap()[0]\n",
        "crates/core/src/fleet.rs:14: [unordered-iter] `for … in self.hosts`: \
         `hosts` is a HashMap/HashSet — iteration order is the hasher's, not the program's\n    \
         for (_, tes) in &self.hosts {\n",
        "crates/gateway/src/facade.rs:4: [panic] `unwrap()`: library code must degrade \
         gracefully (debug_assert + fallback) instead of panicking\n    v.unwrap()\n",
        "crates/gateway/src/facade.rs:9: [unordered-iter] `for … in sessions`: \
         `sessions` is a HashMap/HashSet — iteration order is the hasher's, not the program's\n",
        "crates/simcore/src/bad_iter.rs:10: [unordered-iter] `for … in self.loads`: \
         `loads` is a HashMap/HashSet — iteration order is the hasher's, not the program's\n    \
         for (_, v) in &self.loads {\n",
        "crates/simcore/src/clock.rs:2: [wall-clock] `std::time`: sim code must read \
         SimTime, never the host clock\n",
        "crates/simcore/src/threading.rs:2: [thread] `thread::spawn`: threads are allowed \
         only in crates/core/src/cluster.rs, crates/core/src/pool.rs, \
         crates/detcheck/src/sched.rs\n",
        "crates/simcore/src/randomness.rs:2: [rng] `thread_rng`: randomness must flow \
         through simcore::SimRng\n",
        "crates/simcore/src/raw_sync.rs:2: [raw-sync] `std::sync::Mutex`: raw sync \
         primitives live only in crates/simcore/src/sync.rs, crates/core/src/pool.rs, \
         crates/detcheck/src/ — everything else goes through the detcheck-shimmed layer\n    \
         let m = std::sync::Mutex::new(7u32);\n",
        "crates/simcore/src/sync.rs:11: [lock-order] `.lock()` while `ga` is held: \
         nested lock acquisition risks deadlock by order inversion — waive with the \
         intended global lock order\n    \
         let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);\n",
        "crates/simcore/src/panics.rs:2: [panic] `unwrap()`: library code must degrade \
         gracefully (debug_assert + fallback) instead of panicking\n    v.unwrap()\n",
        "crates/simcore/src/unsafe_block.rs:2: [unsafe] `unsafe` without a `// SAFETY:` \
         comment on or directly above the line\n",
        "crates/simcore/src/bad_waiver.rs:3: [bad-waiver] malformed waiver: expected \
         `detlint: allow(<rule>) — <justification>`\n",
        "crates/simcore/src/bad_waiver.rs:2: [bad-waiver] waiver names unknown rule \
         `nonexistent-rule`\n",
    ] {
        assert!(
            text.contains(block),
            "missing diagnostic:\n{block}\n--- got ---\n{text}"
        );
    }

    // A waiver without a written justification does not suppress.
    assert!(
        text.contains(
            "crates/simcore/src/panics.rs:12: [panic] `unwrap()`: library code must degrade \
             gracefully (debug_assert + fallback) instead of panicking \
             (waiver present but missing justification)"
        ),
        "missing-justification waiver must still report:\n{text}"
    );

    // Summary footer.
    assert!(
        text.contains("detlint: 17 file(s) scanned, 16 violation(s), 12 waiver(s)"),
        "summary mismatch:\n{text}"
    );
}

#[test]
fn fixture_waiver_audit() {
    let report = scan(&fixture_root()).expect("fixture scan");
    assert_eq!(report.waivers.len(), 12);

    let by_loc: Vec<(&str, usize, &str, bool, bool)> = report
        .waivers
        .iter()
        .map(|w| {
            (
                w.file.as_str(),
                w.line,
                w.rule.as_str(),
                w.used,
                w.justification.is_empty(),
            )
        })
        .collect();
    let expected = [
        (
            "crates/core/src/fleet.rs",
            21,
            "unordered-iter",
            true,
            false,
        ),
        (
            "crates/gateway/src/facade.rs",
            16,
            "wall-clock",
            true,
            false,
        ),
        (
            "crates/simcore/src/bad_iter.rs",
            17,
            "unordered-iter",
            true,
            false,
        ),
        (
            "crates/simcore/src/bad_waiver.rs",
            2,
            "nonexistent-rule",
            false,
            false,
        ),
        ("crates/simcore/src/clock.rs", 7, "wall-clock", true, false),
        ("crates/simcore/src/panics.rs", 6, "panic", true, false),
        ("crates/simcore/src/panics.rs", 11, "panic", true, true),
        ("crates/simcore/src/randomness.rs", 7, "rng", true, false),
        ("crates/simcore/src/raw_sync.rs", 6, "raw-sync", true, false),
        ("crates/simcore/src/sync.rs", 17, "lock-order", true, false),
        ("crates/simcore/src/threading.rs", 6, "thread", true, false),
        ("crates/simcore/src/tricky.rs", 21, "panic", false, false),
    ];
    assert_eq!(
        by_loc, expected,
        "waiver audit must match the corpus exactly"
    );

    let audit = report.render_waivers();
    assert!(audit.starts_with("12 waiver(s) declared:\n"));
    assert!(audit.contains(
        "crates/simcore/src/raw_sync.rs:6: allow(raw-sync) — \
         one-shot init flag for a doc example, not sim state"
    ));
    assert!(audit.contains(
        "crates/simcore/src/sync.rs:17: allow(lock-order) — \
         global order is a-then-b, held everywhere"
    ));
    assert!(audit.contains(
        "crates/core/src/fleet.rs:21: allow(unordered-iter) — \
         commutative count; order is irrelevant"
    ));
    assert!(audit.contains(
        "crates/gateway/src/facade.rs:16: allow(wall-clock) — \
         the facade's sole sim-to-wall bridge"
    ));
    assert!(audit.contains(
        "crates/simcore/src/bad_iter.rs:17: allow(unordered-iter) — \
         commutative sum; order is irrelevant"
    ));
    assert!(audit.contains("crates/simcore/src/tricky.rs:21: allow(panic) [UNUSED]"));
    assert!(
        audit.contains("crates/simcore/src/panics.rs:11: allow(panic) — <missing justification>")
    );
}

#[test]
fn fixture_scope_exemptions_hold() {
    let report = scan(&fixture_root()).expect("fixture scan");
    // Wall-clock reads in crates/bench, threads in the cluster coordinator
    // and its worker pool, and anything (but unjustified `unsafe`) in
    // tests/ are all exempt.
    for exempt in [
        "crates/bench/src/timing.rs",
        "crates/core/src/cluster.rs",
        "crates/core/src/pool.rs",
        "crates/simcore/src/cfg_test.rs",
        "crates/simcore/src/tricky.rs",
    ] {
        assert!(
            report.violations.iter().all(|v| v.file != exempt),
            "{exempt} must scan clean"
        );
    }
    // The tests/ file is exempt from determinism rules but not from the
    // SAFETY-comment rule.
    let test_file_rules: Vec<&str> = report
        .violations
        .iter()
        .filter(|v| v.file == "crates/simcore/tests/integration.rs")
        .map(|v| v.rule.as_str())
        .collect();
    assert_eq!(test_file_rules, ["unsafe"]);
    // The shim swap points may name std::sync directly (raw-sync exempt
    // there), but lock-order applies exactly there: the nested acquisition
    // is flagged while the file's raw `use std::sync::Mutex` is not.
    let sync_rules: Vec<&str> = report
        .violations
        .iter()
        .filter(|v| v.file == "crates/simcore/src/sync.rs")
        .map(|v| v.rule.as_str())
        .collect();
    assert_eq!(sync_rules, ["lock-order"]);
}

#[test]
fn json_report_round_trips() {
    let report = scan(&fixture_root()).expect("fixture scan");
    let json = report.to_json();
    let value = serde_json::from_str(&json).expect("report JSON must parse");

    assert_eq!(
        value.get("schema_version").and_then(|v| v.as_u64()),
        Some(2)
    );
    assert_eq!(
        value.get("files_scanned").and_then(|v| v.as_u64()),
        Some(17)
    );

    let violations = value
        .get("violations")
        .and_then(|v| v.as_array())
        .expect("violations array");
    assert_eq!(violations.len(), report.violations.len());
    // Spot-check the first violation object field-for-field.
    let first = &violations[0];
    assert_eq!(
        first.get("file").and_then(|v| v.as_str()),
        Some("crates/core/src/fleet.rs")
    );
    assert_eq!(first.get("line").and_then(|v| v.as_u64()), Some(9));
    assert_eq!(first.get("rule").and_then(|v| v.as_str()), Some("panic"));
    assert_eq!(
        first.get("snippet").and_then(|v| v.as_str()),
        Some("self.hosts.get(&model).unwrap()[0]")
    );

    let waivers = value
        .get("waivers")
        .and_then(|v| v.as_array())
        .expect("waivers array");
    assert_eq!(waivers.len(), 12);
    assert_eq!(waivers[0].get("used").and_then(|v| v.as_bool()), Some(true));

    // Every diagnostic record carries its rule name.
    for v in violations {
        assert!(
            v.get("rule").and_then(|r| r.as_str()).is_some(),
            "violation record without a rule name: {v}"
        );
    }
    for w in waivers {
        assert!(
            w.get("rule").and_then(|r| r.as_str()).is_some(),
            "waiver record without a rule name: {w}"
        );
    }

    // Per-rule tallies: all eight rules in declaration order, then the
    // bad-waiver tally.
    let per_rule = value
        .get("per_rule")
        .and_then(|v| v.as_array())
        .expect("per_rule array");
    let rules: Vec<&str> = per_rule
        .iter()
        .filter_map(|rc| rc.get("rule").and_then(|v| v.as_str()))
        .collect();
    let expected_rules: Vec<&str> = detlint::RULES
        .iter()
        .copied()
        .chain(std::iter::once("bad-waiver"))
        .collect();
    assert_eq!(rules, expected_rules);
    for rc in per_rule {
        assert!(rc.get("violations").and_then(|v| v.as_u64()).is_some());
        assert!(rc.get("waivers").and_then(|v| v.as_u64()).is_some());
    }
    let bad = per_rule.last().expect("bad-waiver tally");
    assert_eq!(
        bad.get("violations").and_then(|v| v.as_u64()),
        Some(2),
        "the corpus seeds one malformed and one unknown-rule waiver"
    );

    // Full round trip: re-rendering the parsed value and parsing it again
    // loses nothing.
    let reparsed = serde_json::from_str(&value.to_string()).expect("re-parse");
    assert_eq!(value, reparsed, "JSON report must round-trip losslessly");
}

#[test]
fn exit_codes_split_bad_waivers_from_findings() {
    // The fixture corpus seeds bad waivers: internal-error exit code 2.
    let report = scan(&fixture_root()).expect("fixture scan");
    assert_eq!(report.exit_code(), 2);

    // Ordinary unwaived findings alone: exit code 1.
    let mut findings_only = detlint::Report::new("synthetic".to_string());
    findings_only.violations.push(detlint::Violation {
        rule: "panic".to_string(),
        file: "crates/simcore/src/x.rs".to_string(),
        line: 1,
        message: "synthetic".to_string(),
        snippet: String::new(),
    });
    findings_only.finish(1);
    assert_eq!(findings_only.exit_code(), 1);

    // Clean: 0.
    let mut clean = detlint::Report::new("synthetic".to_string());
    clean.finish(0);
    assert_eq!(clean.exit_code(), 0);
}

#[test]
fn real_workspace_is_clean() {
    let report = scan(&repo_root()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the workspace must pass its own determinism lint:\n{}",
        report.render_text(false)
    );
    // Every waiver in the real tree carries a written justification and
    // actually suppresses something.
    for w in &report.waivers {
        assert!(
            !w.justification.is_empty(),
            "{}:{}: waiver without justification",
            w.file,
            w.line
        );
        assert!(
            w.used,
            "{}:{}: unused waiver should be deleted",
            w.file, w.line
        );
    }
}
