//! The determinism & robustness rules and the per-file checking pass.
//!
//! Each rule protects one invariant behind the simulator's bit-identical
//! replay guarantee (see DESIGN.md §"Determinism lint"):
//!
//! | id              | invariant                                                      |
//! |-----------------|----------------------------------------------------------------|
//! | `unordered-iter`| no hash-order iteration feeds a report or trace                |
//! | `wall-clock`    | sim code reads `SimTime`, never the host clock                 |
//! | `thread`        | threads exist only in the cluster coordinator                  |
//! | `rng`           | randomness flows only through `simcore::SimRng`                |
//! | `panic`         | library code degrades gracefully instead of panicking          |
//! | `unsafe`        | every `unsafe` block justifies itself with a `// SAFETY:` note |
//! | `raw-sync`      | `std::sync` primitives stay inside the model-checked surface   |
//! | `lock-order`    | no nested lock acquisition without a written lock order        |
//!
//! A site can be waived with an inline comment carrying a written
//! justification:
//!
//! ```text
//! // detlint: allow(unordered-iter) — result is sorted two lines below
//! ```
//!
//! The waiver goes on the offending line or on a comment line directly
//! above it. A waiver without a justification does not suppress anything —
//! it is itself reported (`bad-waiver`).

use crate::lexer::LexedFile;
use std::collections::{BTreeMap, BTreeSet};

/// The eight enforced rules, in report order.
pub const RULES: [&str; 8] = [
    "unordered-iter",
    "wall-clock",
    "thread",
    "rng",
    "panic",
    "unsafe",
    "raw-sync",
    "lock-order",
];

/// Crates whose non-test code feeds reports/traces: hash-order iteration
/// and panics are banned there (rules `unordered-iter`, `panic`). The
/// gateway qualifies because its live run must replay bit-identically
/// from the session log — a panic or hash-order dependency in the serving
/// path would break that contract exactly like one in the simulator.
pub const REPORT_CRATES: [&str; 7] = [
    "simcore",
    "flowserve",
    "npu",
    "core",
    "model",
    "workload",
    "gateway",
];

/// The modules allowed to spawn threads: the cluster coordinator, the
/// persistent worker pool it dispatches waves into, and the detcheck
/// scheduler (which owns every OS thread a model run creates).
pub const THREAD_ALLOWED: [&str; 3] = [
    "crates/core/src/cluster.rs",
    "crates/core/src/pool.rs",
    "crates/detcheck/src/sched.rs",
];

/// The files allowed to name `std::sync` primitives directly: the shim
/// swap points that compile against either std or the detcheck scheduler.
/// Everything else must go through `simcore::sync` / `detcheck::sync` so
/// the model checker sees every lock, wait, notify and channel op. The
/// detcheck crate's own src tree (the shim implementation) is also
/// exempt — see [`raw_sync_allowed`].
pub const RAW_SYNC_ALLOWED: [&str; 2] = ["crates/simcore/src/sync.rs", "crates/core/src/pool.rs"];

/// `std::sync` members that carry synchronization semantics. `Arc` and
/// `PoisonError` are deliberately absent: sharing and poison handling are
/// inert, it is blocking/ordering primitives the model checker must own.
const RAW_SYNC_TYPES: [&str; 8] = [
    "Mutex", "RwLock", "Condvar", "Barrier", "OnceLock", "Once", "mpsc", "atomic",
];

/// Whether a workspace-relative path may use raw `std::sync` primitives.
pub fn raw_sync_allowed(rel: &str) -> bool {
    RAW_SYNC_ALLOWED.contains(&rel) || rel.starts_with("crates/detcheck/src/")
}

/// One rule violation at a source location.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Violation {
    /// Rule id (one of [`RULES`], or `bad-waiver`).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// A parsed waiver comment (valid or not, used or not).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Waiver {
    /// Rule id the waiver names.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The written justification (empty means invalid).
    pub justification: String,
    /// Whether the waiver suppressed at least one violation this run.
    pub used: bool,
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// `unordered-iter` (report/trace-feeding crate src trees only).
    pub d1: bool,
    /// `wall-clock` (everywhere but `crates/bench`).
    pub d2: bool,
    /// `thread` (everywhere but the cluster coordinator and its worker
    /// pool, [`THREAD_ALLOWED`]).
    pub d3: bool,
    /// `rng` (everywhere).
    pub d4: bool,
    /// `panic` (report/trace-feeding crate src trees only).
    pub d5: bool,
    /// `unsafe` (everywhere, including tests).
    pub d6: bool,
    /// `raw-sync` (everywhere but the shim swap points,
    /// [`raw_sync_allowed`]).
    pub d7: bool,
    /// `lock-order` (only *inside* the raw-sync surface — that is where
    /// real locks live, so that is where nesting can deadlock).
    pub d8: bool,
    /// Whole file is test code (`tests/`, `benches/` directories).
    pub test_file: bool,
}

impl Scope {
    /// Computes the rule scope for a workspace-relative path (forward
    /// slashes).
    pub fn for_path(rel: &str) -> Scope {
        let test_file = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
        let in_report_crate = REPORT_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
        let in_bench = rel.starts_with("crates/bench/");
        Scope {
            d1: in_report_crate && !test_file,
            d2: !in_bench && !test_file,
            d3: !THREAD_ALLOWED.contains(&rel) && !test_file,
            d4: !test_file,
            d5: in_report_crate && !test_file,
            d6: true,
            d7: !raw_sync_allowed(rel) && !test_file,
            d8: raw_sync_allowed(rel) && !test_file,
            test_file,
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `hay[pos..pos+needle.len()] == needle` with word boundaries on
/// both sides (for needles that start/end with ident chars).
fn word_at(hay: &[char], pos: usize, needle: &str) -> bool {
    let n: Vec<char> = needle.chars().collect();
    if pos + n.len() > hay.len() || hay[pos..pos + n.len()] != n[..] {
        return false;
    }
    let starts_word = n.first().is_some_and(|&c| is_ident_char(c));
    let ends_word = n.last().is_some_and(|&c| is_ident_char(c));
    if starts_word && pos > 0 && is_ident_char(hay[pos - 1]) {
        return false;
    }
    if ends_word && pos + n.len() < hay.len() && is_ident_char(hay[pos + n.len()]) {
        return false;
    }
    true
}

/// All word-boundary occurrences of `needle` in `line`.
fn find_word(line: &str, needle: &str) -> Vec<usize> {
    let hay: Vec<char> = line.chars().collect();
    (0..hay.len())
        .filter(|&i| word_at(&hay, i, needle))
        .collect()
}

/// Per-line mask of `#[cfg(test)]` / `#[test]` regions inside a file.
///
/// Tracks brace depth; an attribute arms a pending marker that fires on the
/// next `{` (the test item's body) and clears on a `;` at the same depth
/// (attribute on a braceless item such as `#[cfg(test)] use ...;`).
pub fn test_mask(file: &LexedFile) -> Vec<bool> {
    let mut mask = vec![false; file.len()];
    let mut depth: i32 = 0;
    let mut pending = false;
    let mut region_end: Option<i32> = None;
    for (idx, line) in file.code.iter().enumerate() {
        if region_end.is_some() {
            mask[idx] = true;
        }
        let has_attr = region_end.is_none()
            && (line.contains("#[cfg(test)")
                || line.contains("#[cfg(all(test")
                || line.contains("#[cfg(any(test")
                || line.contains("#[test]"));
        if has_attr {
            pending = true;
            mask[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && region_end.is_none() {
                        region_end = Some(depth - 1);
                        pending = false;
                        mask[idx] = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if region_end.is_some_and(|d| depth <= d) {
                        region_end = None;
                    }
                }
                ';' if pending && region_end.is_none() => {
                    pending = false;
                }
                _ => {}
            }
        }
    }
    mask
}

/// A waiver parsed from a comment, before it is matched to a target line.
#[derive(Debug, Clone)]
struct ParsedWaiver {
    rules: Vec<String>,
    justification: String,
    decl_line: usize,
}

/// Extracts waivers and maps each to the code line it covers: the comment's
/// own line when it trails code, otherwise the next line carrying code
/// (skipping further comment-only lines).
fn collect_waivers(file: &LexedFile) -> (BTreeMap<usize, Vec<ParsedWaiver>>, Vec<ParsedWaiver>) {
    let mut by_target: BTreeMap<usize, Vec<ParsedWaiver>> = BTreeMap::new();
    let mut all = Vec::new();
    for (idx, comment) in file.comment.iter().enumerate() {
        // Doc comments are prose, not waivers: a rule description quoting
        // the waiver syntax must not accidentally declare one.
        let trimmed = comment.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            continue;
        }
        let Some(pos) = comment.find("detlint:") else {
            continue;
        };
        let rest = &comment[pos + "detlint:".len()..];
        let parsed = parse_allow(rest).map(|(rules, justification)| ParsedWaiver {
            rules,
            justification,
            decl_line: idx + 1,
        });
        let Some(w) = parsed else {
            // Marker comment without a parseable allow(...) clause.
            all.push(ParsedWaiver {
                rules: Vec::new(),
                justification: String::new(),
                decl_line: idx + 1,
            });
            continue;
        };
        let own_code = !file.code[idx].trim().is_empty();
        let target = if own_code {
            idx
        } else {
            // Standalone comment: find the next line with code.
            let mut t = idx + 1;
            while t < file.len() && file.code[t].trim().is_empty() {
                t += 1;
            }
            t
        };
        by_target.entry(target).or_default().push(w.clone());
        all.push(w);
    }
    (by_target, all)
}

/// Parses `allow(rule[, rule...]) <sep> justification` from waiver comment
/// text. Returns `None` when the `allow(...)` clause is malformed.
fn parse_allow(rest: &str) -> Option<(Vec<String>, String)> {
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let mut just = rest[close + 1..].trim();
    // Accept an em-dash / hyphen / colon separator before the justification.
    for sep in ["\u{2014}", "—", "--", "-", ":"] {
        if let Some(stripped) = just.strip_prefix(sep) {
            just = stripped.trim();
            break;
        }
    }
    Some((rules, just.to_string()))
}

/// Identifiers declared with a hash-map/set type in this file, plus the
/// subset that is *ambiguous* (also rebound with some other type, e.g. a
/// local `let loads: Vec<usize>` shadowing a `loads: HashMap` field).
/// Ambiguous names are only flagged behind an explicit `self.` receiver.
#[derive(Debug, Default)]
pub struct HashIdents {
    names: BTreeSet<String>,
    ambiguous: BTreeSet<String>,
}

/// Walks one code line backwards from `colon` collecting the identifier in
/// front of a `name: Type` annotation. Skips `&`, `&'a`, `mut` between the
/// colon and the type.
fn ident_before_colon(chars: &[char], colon: usize) -> Option<String> {
    let mut k = colon;
    while k > 0 && chars[k - 1].is_whitespace() {
        k -= 1;
    }
    let end = k;
    while k > 0 && is_ident_char(chars[k - 1]) {
        k -= 1;
    }
    if k == end {
        return None;
    }
    let name: String = chars[k..end].iter().collect();
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name)
}

/// Collects hash-typed identifier declarations from non-test code lines.
pub fn collect_hash_idents(file: &LexedFile, mask: &[bool]) -> HashIdents {
    let mut out = HashIdents::default();
    let mut let_bindings: BTreeMap<String, (bool, bool)> = BTreeMap::new(); // name -> (hash, other)
    for (idx, line) in file.code.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let chars: Vec<char> = line.chars().collect();
        let hash_positions: Vec<usize> = ["HashMap", "HashSet"]
            .iter()
            .flat_map(|t| find_word(line, t))
            .collect();
        // `let [mut] name` bindings: classify by whether the line mentions a
        // hash type at all (initializer `HashMap::new()`, annotation, or
        // turbofished collect).
        for lp in find_word(line, "let") {
            let mut k = lp + 3;
            while chars.get(k).is_some_and(|c| c.is_whitespace()) {
                k += 1;
            }
            if word_at(&chars, k, "mut") {
                k += 3;
                while chars.get(k).is_some_and(|c| c.is_whitespace()) {
                    k += 1;
                }
            }
            let start = k;
            while chars.get(k).is_some_and(|&c| is_ident_char(c)) {
                k += 1;
            }
            if k > start {
                let name: String = chars[start..k].iter().collect();
                let entry = let_bindings.entry(name).or_insert((false, false));
                if hash_positions.is_empty() {
                    entry.1 = true;
                } else {
                    entry.0 = true;
                }
            }
        }
        // `name: HashMap<...>` / `name: &'a HashSet<...>` annotations
        // (struct fields, fn params, let annotations).
        for &hp in &hash_positions {
            let mut k = hp;
            // Skip type-prefix tokens backwards: whitespace, `&`, `mut`,
            // lifetimes.
            loop {
                while k > 0 && chars[k - 1].is_whitespace() {
                    k -= 1;
                }
                if k > 0 && chars[k - 1] == '&' {
                    k -= 1;
                    continue;
                }
                if k >= 3 && chars[k - 3..k] == ['m', 'u', 't'] {
                    k -= 3;
                    continue;
                }
                // Lifetime: 'ident
                let mut j = k;
                while j > 0 && is_ident_char(chars[j - 1]) {
                    j -= 1;
                }
                if j > 0 && chars[j - 1] == '\'' {
                    k = j - 1;
                    continue;
                }
                break;
            }
            if k > 0 && chars[k - 1] == ':' && !(k > 1 && chars[k - 2] == ':') {
                if let Some(name) = ident_before_colon(&chars, k - 1) {
                    out.names.insert(name);
                }
            }
        }
    }
    for (name, (hash, other)) in let_bindings {
        if hash {
            out.names.insert(name.clone());
            if other {
                out.ambiguous.insert(name);
            }
        } else if out.names.contains(&name) {
            // A field name rebound as a differently-typed local.
            out.ambiguous.insert(name);
        }
    }
    out
}

/// Iteration methods whose order is the hasher's, not the program's.
const ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".into_keys()",
    ".values()",
    ".values_mut()",
    ".into_values()",
    ".into_iter()",
    ".drain(",
];

/// The receiver identifier ending right before byte position `dot` (the
/// `.`), plus whether it is `self.`-qualified (`self.name.iter()`).
fn receiver_at(chars: &[char], dot: usize) -> Option<(String, bool)> {
    let end = dot;
    let mut k = dot;
    while k > 0 && is_ident_char(chars[k - 1]) {
        k -= 1;
    }
    if k == end {
        return None;
    }
    let name: String = chars[k..end].iter().collect();
    let self_qualified = k >= 5 && chars[k - 5..k] == ['s', 'e', 'l', 'f', '.'];
    Some((name, self_qualified))
}

/// The trailing identifier of the nearest preceding non-blank code line —
/// the receiver of a method call that rustfmt wrapped onto its own line.
fn prev_line_receiver(file: &LexedFile, idx: usize) -> Option<(String, bool)> {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let prev = file.code[j].trim_end();
        if prev.trim().is_empty() {
            continue;
        }
        let pchars: Vec<char> = prev.chars().collect();
        return receiver_at(&pchars, pchars.len());
    }
    None
}

/// The result of checking one file.
pub struct FileReport {
    /// Violations found (waived ones excluded).
    pub violations: Vec<Violation>,
    /// Every waiver declared in the file, marked used/unused.
    pub waivers: Vec<Waiver>,
}

/// Runs every in-scope rule over one lexed file.
pub fn check_file(rel: &str, file: &LexedFile, scope: Scope) -> FileReport {
    let mask = test_mask(file);
    let (waiver_map, all_waivers) = collect_waivers(file);
    let mut used: BTreeSet<(usize, String)> = BTreeSet::new(); // (decl_line, rule)
    let mut violations = Vec::new();

    // Raw candidate sites per rule, gathered below; waiver filtering last.
    let mut candidates: Vec<(usize, &'static str, String)> = Vec::new(); // (line idx, rule, message)

    let hash_idents = if scope.d1 {
        collect_hash_idents(file, &mask)
    } else {
        HashIdents::default()
    };

    for (idx, line) in file.code.iter().enumerate() {
        let in_test = mask[idx] || scope.test_file;

        // D1 — unordered-iter.
        if scope.d1 && !in_test {
            let chars: Vec<char> = line.chars().collect();
            for m in ITER_METHODS {
                let method = m.trim_start_matches('.');
                let mut from = 0;
                while let Some(off) = line[from..].find(m) {
                    let dot = line[..from + off].chars().count();
                    let receiver = receiver_at(&chars, dot).or_else(|| {
                        // rustfmt splits long chains: `self.transfers\n.iter()`.
                        // When nothing but whitespace precedes the dot, the
                        // receiver is the previous line's trailing identifier.
                        if chars[..dot].iter().all(|c| c.is_whitespace()) {
                            prev_line_receiver(file, idx)
                        } else {
                            None
                        }
                    });
                    if let Some((name, self_q)) = receiver {
                        let flag = hash_idents.names.contains(&name)
                            && (!hash_idents.ambiguous.contains(&name) || self_q);
                        if flag {
                            candidates.push((
                                idx,
                                "unordered-iter",
                                format!(
                                    "`{name}.{method}`: `{name}` is a HashMap/HashSet — \
                                     iteration order is the hasher's, not the program's"
                                ),
                            ));
                        }
                    }
                    from += off + m.len();
                }
            }
            // `for x in [&[mut ]]expr` where expr resolves to a hash ident.
            if let Some(fp) = find_word(line, "for").first().copied() {
                let after: String = chars[fp..].iter().collect();
                if let Some(inp) = find_word(&after, "in").first().copied() {
                    let expr: String = after.chars().skip(inp + 2).collect();
                    let expr = expr.split('{').next().unwrap_or("").trim();
                    let expr = expr
                        .trim_start_matches('&')
                        .trim_start_matches("mut ")
                        .trim();
                    let last = expr.rsplit('.').next().unwrap_or(expr);
                    if !expr.contains('(')
                        && !last.is_empty()
                        && last.chars().all(is_ident_char)
                        && hash_idents.names.contains(last)
                        && (!hash_idents.ambiguous.contains(last)
                            || expr.starts_with("self.")
                            || expr == last)
                    {
                        // Plain `for x in map` moves the map: unambiguous
                        // even for shadowed locals only when not ambiguous.
                        if !hash_idents.ambiguous.contains(last) || expr.starts_with("self.") {
                            candidates.push((
                                idx,
                                "unordered-iter",
                                format!(
                                    "`for … in {expr}`: `{last}` is a HashMap/HashSet — \
                                     iteration order is the hasher's, not the program's"
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // D2 — wall-clock.
        if scope.d2 && !in_test {
            for pat in ["std::time", "Instant::now", "SystemTime"] {
                let hit = if pat.contains("::") {
                    line.contains(pat)
                } else {
                    !find_word(line, pat).is_empty()
                };
                if hit {
                    candidates.push((
                        idx,
                        "wall-clock",
                        format!("`{pat}`: sim code must read SimTime, never the host clock"),
                    ));
                    break;
                }
            }
        }

        // D3 — thread.
        if scope.d3 && !in_test {
            if let Some(p) = line.find("thread::") {
                let after = &line[p + "thread::".len()..];
                for f in ["spawn", "scope", "Builder"] {
                    if after.starts_with(f) {
                        candidates.push((
                            idx,
                            "thread",
                            format!(
                                "`thread::{f}`: threads are allowed only in {}",
                                THREAD_ALLOWED.join(", ")
                            ),
                        ));
                        break;
                    }
                }
            }
        }

        // D4 — rng.
        if scope.d4 && !in_test {
            for pat in [
                "RandomState",
                "thread_rng",
                "from_entropy",
                "getrandom",
                "fastrand",
                "rand::",
                "rand_core",
                "rand_chacha",
            ] {
                let hit = if pat.ends_with("::") {
                    // Match `rand::` as a path segment, not `SimRng::` etc.
                    let mut found = false;
                    let mut from = 0;
                    while let Some(off) = line[from..].find(pat) {
                        let at = from + off;
                        let prev = line[..at].chars().next_back();
                        if !prev.is_some_and(|c| is_ident_char(c) || c == ':') {
                            found = true;
                            break;
                        }
                        from = at + pat.len();
                    }
                    found
                } else {
                    !find_word(line, pat).is_empty()
                };
                if hit {
                    candidates.push((
                        idx,
                        "rng",
                        format!("`{pat}`: randomness must flow through simcore::SimRng"),
                    ));
                    break;
                }
            }
        }

        // D5 — panic.
        if scope.d5 && !in_test {
            for pat in [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"] {
                let hit = if pat.starts_with('.') {
                    line.contains(pat)
                } else {
                    !find_word(line, pat.trim_end_matches('!')).is_empty() && line.contains(pat)
                };
                if hit {
                    candidates.push((
                        idx,
                        "panic",
                        format!(
                            "`{pat}`: library code must degrade gracefully \
                             (debug_assert + fallback) instead of panicking",
                            pat = pat.trim_start_matches('.')
                        ),
                    ));
                }
            }
        }

        // D7 — raw-sync.
        if scope.d7 && !in_test {
            if let Some(p) = line.find("std::sync::") {
                let tail = &line[p..];
                for t in RAW_SYNC_TYPES {
                    if tail.contains(t) {
                        candidates.push((
                            idx,
                            "raw-sync",
                            format!(
                                "`std::sync::{t}`: raw sync primitives live only in {}, \
                                 crates/detcheck/src/ — everything else goes through the \
                                 detcheck-shimmed layer",
                                RAW_SYNC_ALLOWED.join(", ")
                            ),
                        ));
                        break;
                    }
                }
            }
        }

        // D6 — unsafe (applies even in tests).
        if scope.d6 && !find_word(line, "unsafe").is_empty() {
            let mut has_safety = file.comment[idx].contains("SAFETY:");
            for back in 1..=3 {
                if idx >= back && file.comment[idx - back].contains("SAFETY:") {
                    has_safety = true;
                }
            }
            if !has_safety {
                candidates.push((
                    idx,
                    "unsafe",
                    "`unsafe` without a `// SAFETY:` comment on or directly above the line"
                        .to_string(),
                ));
            }
        }
    }

    // D8 — lock-order (stateful pass: guard liveness spans lines).
    if scope.d8 {
        lock_order_candidates(file, &mask, scope.test_file, &mut candidates);
    }

    // Waiver filtering.
    for (idx, rule, message) in candidates {
        let mut waived = false;
        if let Some(ws) = waiver_map.get(&idx) {
            for w in ws {
                if w.rules.iter().any(|r| r == rule) {
                    if w.justification.is_empty() {
                        violations.push(Violation {
                            rule: rule.to_string(),
                            file: rel.to_string(),
                            line: idx + 1,
                            message: format!(
                                "{message} (waiver present but missing justification)"
                            ),
                            snippet: snippet(file, idx),
                        });
                        used.insert((w.decl_line, rule.to_string()));
                        waived = true;
                    } else {
                        used.insert((w.decl_line, rule.to_string()));
                        waived = true;
                    }
                    break;
                }
            }
        }
        if !waived {
            violations.push(Violation {
                rule: rule.to_string(),
                file: rel.to_string(),
                line: idx + 1,
                message,
                snippet: snippet(file, idx),
            });
        }
    }

    // Malformed waivers and unknown rule names are themselves violations.
    let mut waivers = Vec::new();
    for w in &all_waivers {
        if w.rules.is_empty() {
            violations.push(Violation {
                rule: "bad-waiver".to_string(),
                file: rel.to_string(),
                line: w.decl_line,
                message: "malformed waiver: expected `detlint: allow(<rule>) — <justification>`"
                    .to_string(),
                snippet: snippet(file, w.decl_line - 1),
            });
            continue;
        }
        for r in &w.rules {
            if !RULES.contains(&r.as_str()) {
                violations.push(Violation {
                    rule: "bad-waiver".to_string(),
                    file: rel.to_string(),
                    line: w.decl_line,
                    message: format!("waiver names unknown rule `{r}`"),
                    snippet: snippet(file, w.decl_line - 1),
                });
            }
            waivers.push(Waiver {
                rule: r.clone(),
                file: rel.to_string(),
                line: w.decl_line,
                justification: w.justification.clone(),
                used: used.contains(&(w.decl_line, r.clone())),
            });
        }
    }

    FileReport {
        violations,
        waivers,
    }
}

/// D8 — lock-order: within the raw-sync surface, flag a `.lock(` while a
/// guard from an earlier `let … = ….lock(…)` on a previous line is still
/// live. A guard dies when its enclosing block closes or on an explicit
/// `drop(name)`. This is a conservative line-oriented heuristic (a
/// dereferenced `let v = *m.lock()…` temporary is tracked like a guard);
/// intentional nesting is waived with the written global lock order.
fn lock_order_candidates(
    file: &LexedFile,
    mask: &[bool],
    test_file: bool,
    candidates: &mut Vec<(usize, &'static str, String)>,
) {
    let mut depth: i32 = 0;
    let mut guards: Vec<(String, i32)> = Vec::new(); // (binding, decl depth)
    for (idx, line) in file.code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        // `drop(name)` releases a tracked guard early.
        for dp in find_word(line, "drop") {
            let open = dp + "drop".len();
            if chars.get(open) != Some(&'(') {
                continue;
            }
            let Some(close) = chars[open + 1..].iter().position(|&c| c == ')') else {
                continue;
            };
            let name: String = chars[open + 1..open + 1 + close].iter().collect();
            let name = name.trim();
            if let Some(at) = guards.iter().rposition(|(g, _)| g == name) {
                guards.remove(at);
            }
        }
        let locks_here = line.contains(".lock(");
        if locks_here && !(mask[idx] || test_file) {
            if let Some((held, _)) = guards.last() {
                candidates.push((
                    idx,
                    "lock-order",
                    format!(
                        "`.lock()` while `{held}` is held: nested lock acquisition \
                         risks deadlock by order inversion — waive with the intended \
                         global lock order"
                    ),
                ));
            }
        }
        // `let [mut] name = ….lock(…)` starts a tracked guard, scoped to
        // the block depth at the start of this line.
        if locks_here {
            if let Some(lp) = find_word(line, "let").first().copied() {
                let mut k = lp + "let".len();
                while chars.get(k).is_some_and(|c| c.is_whitespace()) {
                    k += 1;
                }
                if word_at(&chars, k, "mut") {
                    k += "mut".len();
                    while chars.get(k).is_some_and(|c| c.is_whitespace()) {
                        k += 1;
                    }
                }
                let start = k;
                while chars.get(k).is_some_and(|&c| is_ident_char(c)) {
                    k += 1;
                }
                if k > start {
                    let name: String = chars[start..k].iter().collect();
                    guards.push((name, depth));
                }
            }
        }
        for c in &chars {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|&(_, d)| depth >= d);
    }
}

fn snippet(file: &LexedFile, idx: usize) -> String {
    file.code
        .get(idx)
        .map(|l| l.trim().chars().take(120).collect())
        .unwrap_or_default()
}
