//! A hand-rolled Rust surface lexer.
//!
//! The rule engine works line-by-line on *code text*: source where every
//! comment, string literal, and char literal has been blanked out with
//! spaces (preserving line/column positions), so a pattern like
//! `Instant::now` inside a doc comment or an error-message string can never
//! trip a rule. Comment text is kept separately per line — that is where
//! waivers (`// detlint: allow(...)`) and `// SAFETY:` annotations live.
//!
//! This is deliberately not a full Rust lexer: it only needs to classify
//! every byte as code / comment / literal. The fiddly parts are nested
//! block comments, raw strings (`r#"..."#`, any number of hashes), byte
//! strings, and the char-literal vs. lifetime ambiguity (`'a'` vs `'a`).

/// One source file, split into per-line code text and comment text.
#[derive(Debug)]
pub struct LexedFile {
    /// Source lines with comments and literals blanked to spaces.
    pub code: Vec<String>,
    /// Comment text per line (everything else blanked). Doc comments
    /// included; literal contents are NOT comments and appear nowhere.
    pub comment: Vec<String>,
}

impl LexedFile {
    /// Number of lines.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file has no lines at all.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into per-line code/comment text.
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let mut prev_code_char = ' ';
    let mut i = 0usize;

    macro_rules! newline {
        () => {{
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
        }};
    }
    // Push `c` as code and a blank into the comment channel (or vice versa).
    macro_rules! emit_code {
        ($c:expr) => {{
            code.push($c);
            comment.push(' ');
        }};
    }
    macro_rules! emit_blank {
        () => {{
            code.push(' ');
            comment.push(' ');
        }};
    }
    macro_rules! emit_comment {
        ($c:expr) => {{
            code.push(' ');
            comment.push($c);
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            newline!();
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    emit_comment!('/');
                    emit_comment!('/');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    emit_comment!('/');
                    emit_comment!('*');
                    i += 2;
                } else if c == '"' {
                    state = State::Str { raw_hashes: None };
                    emit_blank!();
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident_char(prev_code_char) {
                    // Possible raw / byte string prefix: r", r#", b", br", br#".
                    let mut j = if c == 'b' { i + 1 } else { i };
                    let has_r = chars.get(j) == Some(&'r');
                    if has_r {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let valid_prefix = has_r || (c == 'b' && hashes == 0);
                    if chars.get(j) == Some(&'"') && valid_prefix {
                        for _ in i..=j {
                            emit_blank!();
                        }
                        i = j + 1;
                        state = State::Str {
                            raw_hashes: if has_r { Some(hashes) } else { None },
                        };
                    } else {
                        prev_code_char = c;
                        emit_code!(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime?
                    if next == Some('\\') {
                        // Escaped char literal: blank through the closing quote.
                        let mut j = i + 2;
                        // Skip the escape payload (handles \', \\, \u{..}, \x7f).
                        if chars.get(j) == Some(&'u') && chars.get(j + 1) == Some(&'{') {
                            while j < chars.len() && chars[j] != '}' {
                                j += 1;
                            }
                        }
                        j += 1;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        for _ in i..=j.min(chars.len() - 1) {
                            emit_blank!();
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') && next.is_some_and(|n| n != '\'') {
                        // Plain 'x' char literal.
                        emit_blank!();
                        emit_blank!();
                        emit_blank!();
                        i += 3;
                    } else {
                        // Lifetime: keep as code.
                        prev_code_char = c;
                        emit_code!(c);
                        i += 1;
                    }
                } else {
                    prev_code_char = c;
                    emit_code!(c);
                    i += 1;
                }
            }
            State::LineComment => {
                emit_comment!(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    emit_comment!('/');
                    emit_comment!('*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    emit_comment!('*');
                    emit_comment!('/');
                    i += 2;
                } else {
                    emit_comment!(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            emit_blank!();
                            if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                                emit_blank!();
                                i += 2;
                            } else {
                                i += 1;
                            }
                        } else if c == '"' {
                            state = State::Normal;
                            prev_code_char = ' ';
                            emit_blank!();
                            i += 1;
                        } else {
                            emit_blank!();
                            i += 1;
                        }
                    }
                    Some(h) => {
                        // Raw string: ends at `"` followed by `h` hashes.
                        if c == '"' {
                            let mut ok = true;
                            for k in 0..h {
                                if chars.get(i + 1 + k as usize) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                for _ in 0..=h {
                                    emit_blank!();
                                }
                                i += 1 + h as usize;
                                state = State::Normal;
                                prev_code_char = ' ';
                                continue;
                            }
                        }
                        emit_blank!();
                        i += 1;
                    }
                }
            }
        }
    }
    newline!();
    LexedFile {
        code: code_lines,
        comment: comment_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let f = lex("let a = 1; // HashMap.iter()\n/* Instant::now */ let b = 2;");
        assert!(!f.code[0].contains("HashMap"));
        assert!(f.comment[0].contains("HashMap.iter()"));
        assert!(!f.code[1].contains("Instant"));
        assert!(f.code[1].contains("let b = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let f = lex("/* outer /* inner */ still comment */ code()");
        assert!(!f.code[0].contains("outer"));
        assert!(!f.code[0].contains("still"));
        assert!(f.code[0].contains("code()"));
    }

    #[test]
    fn strips_string_literals_and_escapes() {
        let f = lex(r#"let s = "panic! \" .unwrap()"; s.len()"#);
        assert!(!f.code[0].contains("panic!"));
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.code[0].contains("s.len()"));
    }

    #[test]
    fn strips_raw_strings_with_hashes() {
        let f = lex(r###"let s = r#"thread::spawn "quoted" here"#; tail()"###);
        assert!(!f.code[0].contains("spawn"));
        assert!(f.code[0].contains("tail()"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let f = lex("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }");
        // Lifetimes survive as code; the quote char literal is blanked so
        // it cannot open a bogus string.
        assert!(f.code[0].contains("<'a>"));
        assert!(f.code[0].contains("&'a str"));
        assert!(!f.code[0].contains("'x'"));
    }

    #[test]
    fn multiline_string_keeps_line_count() {
        let src = "let s = \"line one\nline two\";\nafter();";
        let f = lex(src);
        assert_eq!(f.len(), 3);
        assert!(!f.code[1].contains("line two"));
        assert!(f.code[2].contains("after();"));
    }

    #[test]
    fn byte_strings_are_literals() {
        let f = lex(r#"let b = b"SystemTime"; ok()"#);
        assert!(!f.code[0].contains("SystemTime"));
        assert!(f.code[0].contains("ok()"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let f = lex(r#"let tracer = make(); tracer"used""#);
        assert!(f.code[0].contains("let tracer = make();"));
        // The `"used"` literal is blanked but `tracer` before it survives.
        assert!(!f.code[0].contains("used"));
    }
}
