//! `detlint` — the workspace determinism & robustness lint.
//!
//! The simulator's crown-jewel guarantee is bit-identical replay: a run is
//! a pure function of `(seed, plan)`, and reports/traces are byte-equal
//! across fast-forward and thread counts. That guarantee rests on a handful
//! of coding invariants (no hash-order iteration on report paths, no wall
//! clock, no stray threads, no foreign RNG, no panicking library paths,
//! justified `unsafe`, raw `std::sync` primitives contained to the
//! model-checked shim surface, and no nested locking without a written
//! lock order). This crate enforces them statically: a hand-rolled
//! lexer strips comments/literals, a line-level rule engine flags
//! violations, and an inline waiver syntax records the justification for
//! every deliberate exception.
//!
//! Run it with `cargo run -p detlint`; audit exceptions with
//! `cargo run -p detlint -- --list-waivers`. The machine-readable report
//! lands in `target/detlint.json`. See DESIGN.md §"Determinism lint".

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

pub use report::Report;
pub use rules::{Scope, Violation, Waiver, RULES};
pub use scan::scan;
