//! Workspace walker: finds the `.rs` files detlint owns and runs the rule
//! pass over each, in a deterministic order.

use crate::lexer;
use crate::report::Report;
use crate::rules::{self, Scope};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory prefixes (workspace-relative) that are never scanned.
///
/// - `target`: build output.
/// - `vendor`: offline stand-ins for external crates — not our code, and
///   deliberately mirroring foreign APIs.
/// - `crates/detlint/fixtures`: the lint's own test corpus of deliberate
///   violations.
const SKIP_PREFIXES: [&str; 4] = ["target", "vendor", ".git", "crates/detlint/fixtures"];

/// Recursively collects workspace-relative paths of `.rs` files under
/// `root`, sorted for deterministic reports.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = rel_path(root, &path);
        if SKIP_PREFIXES
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
        {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans the workspace rooted at `root` and returns the full report.
pub fn scan(root: &Path) -> io::Result<Report> {
    let files = collect_rust_files(root)?;
    let mut report = Report::new(root.display().to_string());
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        let lexed = lexer::lex(&src);
        let scope = Scope::for_path(rel);
        let file_report = rules::check_file(rel, &lexed, scope);
        report.absorb(file_report);
    }
    report.finish(files.len());
    Ok(report)
}
