//! CLI for the workspace determinism lint.
//!
//! ```text
//! cargo run -p detlint                    # scan, print diagnostics, write JSON
//! cargo run -p detlint -- --list-waivers  # audit every declared waiver
//! cargo run -p detlint -- --quiet         # summary only
//! cargo run -p detlint -- --root <dir> --json <path>
//! ```
//!
//! Exit codes: 0 clean, 1 unwaived violations, 2 bad waivers (malformed
//! or naming an unknown rule) and usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    list_waivers: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: detlint [--root <dir>] [--json <path>] [--list-waivers] [--quiet]"
}

/// The workspace root: `--root`, else two levels above this crate's
/// manifest (cargo sets `CARGO_MANIFEST_DIR` for `cargo run`), else cwd.
fn default_root() -> PathBuf {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let md = PathBuf::from(md);
        if let Some(ws) = md.ancestors().nth(2) {
            if ws.join("Cargo.toml").is_file() {
                return ws.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        json: None,
        list_waivers: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a value")?));
            }
            "--list-waivers" => args.list_waivers = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match detlint::scan(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed under {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if args.list_waivers {
        print!("{}", report.render_waivers());
        return ExitCode::SUCCESS;
    }
    let json_path = args
        .json
        .unwrap_or_else(|| args.root.join("target").join("detlint.json"));
    if let Some(dir) = json_path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("detlint: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("detlint: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    print!("{}", report.render_text(args.quiet));
    ExitCode::from(report.exit_code())
}
