//! Aggregated scan results: text rendering and the machine-readable JSON
//! report (`target/detlint.json`).

use crate::rules::{FileReport, Violation, Waiver, RULES};

/// Schema version of the JSON report. Bump on any breaking shape change;
/// the fixture suite pins the current shape. v2: added the `raw-sync` and
/// `lock-order` rules and a `bad-waiver` entry in `per_rule`.
pub const SCHEMA_VERSION: u64 = 2;

/// Per-rule tallies in the JSON report.
#[derive(Debug, serde::Serialize)]
pub struct RuleCount {
    /// Rule id.
    pub rule: String,
    /// Unwaived violations of this rule.
    pub violations: usize,
    /// Declared waivers naming this rule.
    pub waivers: usize,
}

/// The whole scan result. Serialized to `target/detlint.json`.
#[derive(Debug, serde::Serialize)]
pub struct Report {
    /// JSON schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Scan root (absolute path, informational only).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unwaived violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Every declared waiver, sorted by (file, line, rule).
    pub waivers: Vec<Waiver>,
    /// Per-rule tallies, in [`RULES`] order, with a trailing `bad-waiver`
    /// entry (malformed or unknown-rule waivers).
    pub per_rule: Vec<RuleCount>,
}

impl Report {
    /// An empty report for the given root.
    pub fn new(root: String) -> Report {
        Report {
            schema_version: SCHEMA_VERSION,
            root,
            files_scanned: 0,
            violations: Vec::new(),
            waivers: Vec::new(),
            per_rule: Vec::new(),
        }
    }

    /// Folds one file's findings in.
    pub fn absorb(&mut self, file: FileReport) {
        self.violations.extend(file.violations);
        self.waivers.extend(file.waivers);
    }

    /// Sorts findings and computes tallies once all files are absorbed.
    pub fn finish(&mut self, files_scanned: usize) {
        self.files_scanned = files_scanned;
        self.violations
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.waivers
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.per_rule = RULES
            .iter()
            .copied()
            .chain(std::iter::once("bad-waiver"))
            .map(|r| RuleCount {
                rule: r.to_string(),
                violations: self.violations.iter().filter(|v| v.rule == r).count(),
                waivers: self.waivers.iter().filter(|w| w.rule == r).count(),
            })
            .collect();
    }

    /// Whether the scan is clean (no unwaived violations).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Process exit code for this report: 0 clean, 1 unwaived rule
    /// violations, 2 when any waiver itself is broken (`bad-waiver`). A
    /// broken waiver means the suppression surface cannot be trusted, so
    /// it outranks ordinary findings the way an internal error would.
    pub fn exit_code(&self) -> u8 {
        if self.violations.iter().any(|v| v.rule == "bad-waiver") {
            2
        } else if self.violations.is_empty() {
            0
        } else {
            1
        }
    }

    /// Human-readable diagnostics, one violation per block.
    pub fn render_text(&self, quiet: bool) -> String {
        let mut out = String::new();
        if !quiet {
            for v in &self.violations {
                out.push_str(&format!(
                    "{}:{}: [{}] {}\n    {}\n",
                    v.file, v.line, v.rule, v.message, v.snippet
                ));
            }
        }
        out.push_str(&format!(
            "detlint: {} file(s) scanned, {} violation(s), {} waiver(s)\n",
            self.files_scanned,
            self.violations.len(),
            self.waivers.len()
        ));
        for rc in &self.per_rule {
            if rc.violations > 0 || rc.waivers > 0 {
                out.push_str(&format!(
                    "  {:<15} {} violation(s), {} waiver(s)\n",
                    rc.rule, rc.violations, rc.waivers
                ));
            }
        }
        out
    }

    /// The `--list-waivers` audit view.
    pub fn render_waivers(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} waiver(s) declared:\n", self.waivers.len()));
        for w in &self.waivers {
            out.push_str(&format!(
                "{}:{}: allow({}){} — {}\n",
                w.file,
                w.line,
                w.rule,
                if w.used { "" } else { " [UNUSED]" },
                if w.justification.is_empty() {
                    "<missing justification>"
                } else {
                    &w.justification
                }
            ));
        }
        out
    }

    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}
