//! Criterion microbenchmarks of the hot data structures: the operations
//! that sit on the scheduling critical path in a real deployment (the
//! paper's v3 optimizations were exactly "data structures, sampling, and
//! so on").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use deepserve::{GlobalPromptTree, Heatmap, TeId};
use flowserve::block::BlockPool;
use flowserve::rtc::{Rtc, RtcConfig};
use flowserve::{synthetic_tokens, Tokenizer};
use simcore::{EventQueue, SharedLink, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1_000u64 {
                    q.push(SimTime::from_nanos(i * 7919 % 1000), i);
                }
                while let Some(x) = q.pop() {
                    black_box(x);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_block_pool(c: &mut Criterion) {
    c.bench_function("block_pool/alloc_free_4k", |b| {
        b.iter_batched(
            || BlockPool::new(4096),
            |mut p| {
                let blocks = p.alloc_many(4096).expect("capacity");
                for blk in blocks {
                    p.decref(blk);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_radix_tree(c: &mut Criterion) {
    // Insert 256 prompts of 64 blocks then match against them — the RTC
    // master's per-request work at steady state.
    let prompts: Vec<Vec<flowserve::TokenId>> = (0..256)
        .map(|i| synthetic_tokens(i, 1024, 64_000))
        .collect();
    c.bench_function("rtc/insert_256x1k", |b| {
        b.iter_batched(
            || {
                Rtc::new(RtcConfig {
                    block_size: 16,
                    npu_blocks: 256 * 64 + 64,
                    dram_blocks: 0,
                })
            },
            |mut rtc| {
                for p in &prompts {
                    let blocks = rtc.alloc_blocks(64).expect("sized for it");
                    rtc.insert_prefix(SimTime::ZERO, p, &blocks);
                    rtc.free(&blocks);
                }
            },
            BatchSize::SmallInput,
        )
    });
    let mut warm = Rtc::new(RtcConfig {
        block_size: 16,
        npu_blocks: 256 * 64 + 64,
        dram_blocks: 0,
    });
    for p in &prompts {
        let blocks = warm.alloc_blocks(64).expect("sized for it");
        warm.insert_prefix(SimTime::ZERO, p, &blocks);
        warm.free(&blocks);
    }
    c.bench_function("rtc/match_1k_prompt", |b| {
        let mut i = 0;
        b.iter(|| {
            let m = warm.match_by_prefix_token(&prompts[i % prompts.len()]);
            i += 1;
            black_box(m.tokens)
        })
    });
}

fn bench_tokenizer(c: &mut Criterion) {
    let t = Tokenizer::default();
    let text = "The quick brown fox jumps over the lazy dog. ".repeat(200);
    c.bench_function("tokenizer/9k_chars", |b| {
        b.iter(|| black_box(t.tokenize(&text).len()))
    });
}

fn bench_prompt_tree(c: &mut Criterion) {
    let mut tree = GlobalPromptTree::new(16, 500_000);
    for te in 0..16u32 {
        for p in 0..64u64 {
            tree.insert(
                SimTime::ZERO,
                TeId(te),
                &synthetic_tokens(te as u64 * 1000 + p, 512, 64_000),
            );
        }
    }
    let query = synthetic_tokens(3 * 1000 + 7, 640, 64_000);
    c.bench_function("prompt_tree/match_16te", |b| {
        b.iter(|| black_box(tree.best_te(&query)))
    });
}

fn bench_heatmap(c: &mut Criterion) {
    let h = Heatmap::default_production();
    c.bench_function("heatmap/lookup", |b| {
        let mut i: usize = 0;
        b.iter(|| {
            i = i.wrapping_add(997);
            black_box(h.lookup(i % 20_000, (i % 4_000) as u32))
        })
    });
}

fn bench_shared_link(c: &mut Criterion) {
    c.bench_function("shared_link/64_flows", |b| {
        b.iter_batched(
            || SharedLink::new(56e9, SimDuration::from_micros(10)),
            |mut link| {
                let t0 = SimTime::ZERO;
                for _ in 0..64 {
                    link.start_flow(t0, 1 << 28);
                }
                let mut now = t0;
                while link.active_flows() > 0 {
                    let next = link.next_completion(now).expect("flows active");
                    black_box(link.advance_to(next).len());
                    now = next;
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn engine_34b() -> flowserve::Engine {
    use llm_model::{ExecCostModel, ModelSpec, Parallelism};
    use npu::specs::ClusterSpec;
    let cl = ClusterSpec::gen2_cluster(1);
    let cost = ExecCostModel::new(
        cl.server.chip.clone(),
        cl.hccs,
        ModelSpec::internal_34b(),
        Parallelism::tp(4),
    );
    flowserve::Engine::new(flowserve::EngineConfig::colocated(), cost)
}

fn drive_engine(mut engine: flowserve::Engine) {
    use flowserve::{NewRequest, RequestId};
    for i in 0..16u64 {
        engine.submit(
            SimTime::ZERO,
            NewRequest {
                id: RequestId(i),
                prompt: synthetic_tokens(i, 512, 64_000).into(),
                target_output: 32,
                arrival: SimTime::ZERO,
                cache_id: None,
            },
        );
    }
    let mut now = SimTime::ZERO;
    while let Some(wake) = engine.next_wake(now) {
        now = wake;
        black_box(engine.advance(now).len());
    }
}

/// The acceptance bar for the tracing layer: a disabled tracer must not
/// slow the engine loop. Compare `engine/16req_untraced` against
/// `engine/16req_traced_full` — the first must match the pre-tracing
/// baseline, the second prices full-detail tracing.
fn bench_engine_step(c: &mut Criterion) {
    use simcore::TraceLevel;
    c.bench_function("engine/16req_untraced", |b| {
        b.iter_batched(engine_34b, drive_engine, BatchSize::SmallInput)
    });
    c.bench_function("engine/16req_traced_full", |b| {
        b.iter_batched(
            || {
                let mut e = engine_34b();
                e.enable_tracing(TraceLevel::Full, 1 << 20);
                e
            },
            drive_engine,
            BatchSize::SmallInput,
        )
    });
}

/// Builds an engine sitting in steady-state decode: `n_req` small prompts
/// all past prefill, KV sized to ~60% of capacity so the measured loop
/// never hits swap or preemption.
fn saturated_decode_engine(n_req: u64) -> (flowserve::Engine, SimTime) {
    use flowserve::{NewRequest, RequestId};
    let mut engine = engine_34b();
    let cap = engine.cost_model().kv_capacity_tokens(0.1);
    let target_output = (cap as f64 * 0.6 / n_req as f64) as u32 - 128;
    for i in 0..n_req {
        engine.submit(
            SimTime::ZERO,
            NewRequest {
                id: RequestId(i),
                prompt: synthetic_tokens(i, 128, 64_000).into(),
                target_output,
                arrival: SimTime::ZERO,
                cache_id: None,
            },
        );
    }
    // Drain every prefill chunk (n_req * 128 tokens / 512-token budget),
    // leaving a pure decode batch.
    let mut now = SimTime::ZERO;
    for _ in 0..(n_req * 128 / 512 + 8) {
        let Some(wake) = engine.next_wake(now) else {
            break;
        };
        now = wake;
        engine.advance(now);
    }
    (engine, now)
}

/// The hot-path allocation purge's acceptance bench: one single-step
/// `Engine::advance` on a saturated 64-sequence decode batch (completes an
/// iteration, re-forms the batch, starts the next). Compare before/after
/// the scratch-buffer rework of `form_batch`.
fn bench_engine_decode_advance(c: &mut Criterion) {
    use flowserve::Pacing;
    c.bench_function("engine/advance_decode64_single_step", |b| {
        let (mut engine, mut now) = saturated_decode_engine(64);
        // The cluster's hot path: `advance_paced` with a reused event
        // buffer (the plain `advance` wrapper allocates a Vec per call).
        let mut events = Vec::new();
        b.iter(|| {
            match engine.next_wake(now) {
                Some(wake) => {
                    now = wake;
                    events.clear();
                    engine.advance_paced(now, Pacing::SingleStep, &mut events);
                    black_box(events.len());
                }
                None => {
                    // Batch drained (setup amortized over ~100k advances).
                    let fresh = saturated_decode_engine(64);
                    engine = fresh.0;
                    now = fresh.1;
                }
            }
        })
    });
}

/// One small decode-heavy cluster run at the given thread count.
fn cluster_run(threads: usize) -> u64 {
    use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
    use npu::specs::ClusterSpec;
    use simcore::SimRng;
    use workloads::FixedShape;
    let shape = FixedShape {
        prefill: 128,
        decode: 128,
        rps: 1024.0,
        count: 64,
    };
    let mut rng = SimRng::seed_from_u64(42);
    let trace = shape.generate(&mut rng);
    let cfg = ClusterConfig {
        cluster: ClusterSpec::gen2_cluster(2),
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let mut sim = ClusterSim::new(cfg, &[TeRole::Colocated; 4]);
    sim.set_threads(threads);
    sim.inject(materialize_trace(&trace, 64_000));
    let report = sim.run_to_completion();
    report.latency.completed()
}

/// Prices the parallel-stepping coordinator: batch collection, worker
/// dispatch and the ordered merge. Compare `cluster/step_batch_merge`
/// (threads=2, batching machinery engaged) against
/// `cluster/step_sequential` (threads=1, classic loop) — the gap is the
/// coordination overhead a multi-core host must amortize.
fn bench_cluster_step_batch(c: &mut Criterion) {
    c.bench_function("cluster/step_sequential", |b| {
        b.iter(|| black_box(cluster_run(1)))
    });
    c.bench_function("cluster/step_batch_merge", |b| {
        b.iter(|| black_box(cluster_run(2)))
    });
}

/// Prices per-window dispatch for 1/4/8-member windows at 4 threads:
/// `cluster/pool_handoff/pool/N` hands the window to the persistent
/// `WorkerPool` (channel handoff to parked workers + coordinator
/// stealing), `cluster/pool_handoff/scope/N` replays the pre-pool
/// dispatch (`std::thread::scope` spawn + join per window, coordinator
/// working the first chunk). Engines are empty, so each advance is a
/// near-no-op and the measurement is dispatch overhead itself — the
/// thing the persistent pool exists to amortize. Width-1 windows bypass
/// dispatch in both generations (the real `advance_wave` runs them
/// inline), so `pool/1` vs `scope/1` measure the same direct call and
/// serve as the floor; the pool must be strictly cheaper at 4 and 8.
fn bench_pool_handoff(c: &mut Criterion) {
    use deepserve::{PoolMember, WorkerPool};
    use flowserve::{Engine, EngineEvent, Pacing};
    const THREADS: usize = 4;
    let at = SimTime::from_micros(1);
    for n in [1usize, 4, 8] {
        c.bench_function(&format!("cluster/pool_handoff/pool/{n}"), move |b| {
            let mut pool = WorkerPool::new(THREADS);
            let mut members: Vec<PoolMember> = (0..n)
                .map(|_| PoolMember {
                    at,
                    engine: engine_34b(),
                    buf: Vec::new(),
                })
                .collect();
            b.iter(|| {
                if THREADS.min(members.len()) <= 1 {
                    for m in &mut members {
                        m.engine.advance_paced(m.at, Pacing::SingleStep, &mut m.buf);
                    }
                } else {
                    pool.advance(Pacing::SingleStep, &mut members);
                }
                black_box(members.len());
            })
        });
        c.bench_function(&format!("cluster/pool_handoff/scope/{n}"), move |b| {
            let mut engines: Vec<Engine> = (0..n).map(|_| engine_34b()).collect();
            let mut bufs: Vec<Vec<EngineEvent>> = (0..n).map(|_| Vec::new()).collect();
            b.iter(|| {
                let mut work: Vec<(&mut Engine, &mut Vec<EngineEvent>)> =
                    engines.iter_mut().zip(bufs.iter_mut()).collect();
                let workers = THREADS.min(work.len());
                if workers <= 1 {
                    for (eng, buf) in &mut work {
                        eng.advance_paced(at, Pacing::SingleStep, buf);
                    }
                } else {
                    let chunk = work.len().div_ceil(workers);
                    std::thread::scope(|s| {
                        let mut chunks = work.chunks_mut(chunk);
                        let mine = chunks.next();
                        for theirs in chunks {
                            s.spawn(move || {
                                for (eng, buf) in theirs {
                                    eng.advance_paced(at, Pacing::SingleStep, buf);
                                }
                            });
                        }
                        if let Some(mine) = mine {
                            for (eng, buf) in mine {
                                eng.advance_paced(at, Pacing::SingleStep, buf);
                            }
                        }
                    });
                }
                black_box(bufs.len());
            })
        });
    }
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_block_pool,
    bench_radix_tree,
    bench_tokenizer,
    bench_prompt_tree,
    bench_heatmap,
    bench_shared_link,
    bench_engine_step,
    bench_engine_decode_advance,
    bench_cluster_step_batch,
    bench_pool_handoff
);
criterion_main!(benches);
