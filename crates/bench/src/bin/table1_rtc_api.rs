//! Table 1: the core APIs of the Relational Tensor Cache — printed from
//! the live implementation, each exercised once against a real RTC
//! instance so the table is backed by running code, not prose.
//!
//! Run: `cargo run --release -p deepserve-bench --bin table1_rtc_api`

use deepserve_bench::header;
use flowserve::rtc::{CacheId, PopulateStatus, Rtc, RtcConfig};
use flowserve::synthetic_tokens;
use simcore::SimTime;

fn main() {
    header("Table 1: The Core APIs of Relational Tensor Cache");
    let rows: [(&str, &str); 8] = [
        ("MatchByPrefixToken", "Find preserved KV cache by tokens"),
        ("MatchByID", "Find preserved KV cache by ID"),
        ("Populate", "Fetch preserved KV cache into NPU"),
        ("QueryPopulate", "Check populate status"),
        ("AllocBlocks", "Alloc blocks for prefill"),
        ("AppendBlock", "Alloc block for decode"),
        ("Copy", "Copy blocks from NPU to DRAM"),
        ("Free", "Free blocks"),
    ];
    println!("{:<20} | Description", "API");
    println!("{:-<20}-+-{:-<40}", "", "");
    for (api, desc) in rows {
        println!("{api:<20} | {desc}");
    }

    header("Live demonstration against flowserve::rtc::Rtc");
    let mut rtc = Rtc::new(RtcConfig {
        block_size: 16,
        npu_blocks: 64,
        dram_blocks: 64,
    });
    let t0 = SimTime::ZERO;
    let tokens = synthetic_tokens(1, 64, 64_000);

    // AllocBlocks: a prefill request takes 4 blocks.
    let blocks = rtc.alloc_blocks(4).expect("pool has room");
    println!("AllocBlocks(4)        -> {blocks:?}");

    // AppendBlock: a decode step crosses a block boundary.
    let extra = rtc.append_block().expect("pool has room");
    println!("AppendBlock()         -> {extra:?}");

    // Implicit insertion + MatchByPrefixToken.
    let chain = rtc.insert_prefix(t0, &tokens, &blocks);
    let m = rtc.match_by_prefix_token(&tokens);
    println!(
        "MatchByPrefixToken    -> {} tokens matched, {} NPU-resident",
        m.tokens,
        m.npu_tokens(16)
    );

    // MatchByID via explicit registration.
    rtc.register_id(CacheId(7), chain);
    let by_id = rtc.match_by_id(CacheId(7)).expect("registered");
    println!("MatchByID(7)          -> {} tokens", by_id.tokens);
    rtc.release_id(CacheId(7));

    // Copy: demote the cold tail to DRAM.
    let moved = rtc.copy_to_dram(62);
    println!("Copy (to DRAM)        -> {moved} tokens demoted");

    // Populate: plan fetching it back, then complete.
    let m2 = rtc.match_by_prefix_token(&tokens);
    let plan = rtc.populate(t0, &m2).expect("something to populate");
    println!(
        "Populate              -> ticket {:?}, {} tokens in flight",
        plan.ticket, plan.tokens
    );
    println!(
        "QueryPopulate         -> {:?}",
        rtc.query_populate(plan.ticket)
    );
    rtc.complete_populate(plan.ticket);
    assert_eq!(rtc.query_populate(plan.ticket), PopulateStatus::Done);
    println!(
        "QueryPopulate (later) -> {:?}",
        rtc.query_populate(plan.ticket)
    );

    // Free: the request releases its references.
    rtc.free(&blocks);
    rtc.free(&[extra]);
    println!(
        "Free                  -> {} HBM blocks free",
        rtc.npu_free_blocks()
    );
}
