//! Ablation: decode-length predictor accuracy for PD-aware scheduling.
//!
//! §5.3.2 integrates "a set of decode length predictors with varying
//! accuracy" — the oracle is the upper bound, production uses 90%. This
//! sweep shows how JCT degrades as predictions get noisier (mispredicted
//! requests land in the wrong heatmap bucket and get the wrong TE type).
//!
//! Run: `cargo run --release -p deepserve-bench --bin ablation_predictor`

use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_bench::{header, write_json};
use serde::Serialize;
use simcore::SimRng;
use workloads::CodeGenTrace;

#[derive(Serialize)]
struct Row {
    predictor: String,
    jct_mean_ms: f64,
    jct_p99_ms: f64,
    tpot_mean_ms: f64,
}

fn run(accuracy: Option<f64>, label: String, rows: &mut Vec<Row>) {
    let mut rng = SimRng::seed_from_u64(55);
    let trace = CodeGenTrace::paper(6.0).generate(&mut rng, 300);
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        predictor_accuracy: accuracy,
        ..ClusterConfig::standard_34b()
    };
    let roles = [
        TeRole::Colocated,
        TeRole::Colocated,
        TeRole::Prefill,
        TeRole::Decode,
    ];
    let mut sim = ClusterSim::new(cfg, &roles);
    sim.inject(materialize_trace(&trace, 64_000));
    let mut report = sim.run_to_completion();
    // Fault-free run: empty stats mean a broken setup — fail loudly
    // rather than writing fabricated zeros into the artifact.
    let jct = report.latency.jct_ms().non_empty().expect("no completions");
    let tpot = report
        .latency
        .tpot_ms()
        .non_empty()
        .expect("no completions");
    let r = Row {
        predictor: label,
        jct_mean_ms: jct.mean,
        jct_p99_ms: jct.p99,
        tpot_mean_ms: tpot.mean,
    };
    println!(
        "{:>12} {:>12.0} {:>12.0} {:>12.1}",
        r.predictor, r.jct_mean_ms, r.jct_p99_ms, r.tpot_mean_ms
    );
    rows.push(r);
}

fn main() {
    header("Ablation: decode-length predictor accuracy (combined policy, 2C + 1P1D)");
    println!(
        "\n{:>12} {:>12} {:>12} {:>12}",
        "predictor", "JCT mean", "JCT p99", "TPOT mean"
    );
    let mut rows = Vec::new();
    run(None, "oracle".into(), &mut rows);
    for acc in [0.9, 0.7, 0.5, 0.0] {
        run(Some(acc), format!("{:.0}%", acc * 100.0), &mut rows);
    }
    println!(
        "\nobservation: JCT is nearly flat in predictor accuracy — decode-length\n\
         noise rarely flips the heatmap *sign* for this trace (prefill length\n\
         dominates the cell), and the overload guard absorbs the rest. This is\n\
         exactly why the paper ships a cheap 90%-accurate predictor instead of\n\
         an expensive exact one: the marginal accuracy buys almost nothing."
    );
    write_json("ablation_predictor", &rows);
}
