//! Scale sweep: streaming workloads, macro-stepping and wide parallel
//! windows vs the classic single-threaded single-step loop.
//!
//! Sweeps (TEs x requests x users) on decode-heavy [`ScaleTrace`]
//! workloads and runs every configuration under several execution
//! strategies — the classic one-wake-per-iteration loop, macro-stepping on
//! one thread, macro-stepping on a worker pool, and macro-stepping on a
//! worker pool with the trace *streamed* through `inject_stream` (one
//! request resident per pull instead of the whole trace). All runs of a
//! configuration are checked for bit-identical `RunReport`s, so the sweep
//! doubles as an end-to-end equivalence test at scale for every strategy,
//! streaming included.
//!
//! Reported throughput is *logical iterations per wall-clock second*: the
//! logical iteration count is invariant under fast-forward (the macro-step
//! commits the same per-iteration work), so the ratio of two modes'
//! rates equals the wall-clock speedup. Raw events/sec is reported too,
//! but note fast-forward *shrinks* the event count by design. Peak RSS
//! (VmHWM) is recorded per run — the dimension streaming injection exists
//! to bound.
//!
//! On PD-disaggregated configurations the sweep additionally A/B-tests
//! *wide parallel windows* (prefill wakes joining wake batches behind a
//! KV-migration fence) against the narrow PR-4 collection rule, asserting
//! report identity and recording the mean batch-width gain.
//!
//! Run: `cargo run --release -p deepserve-bench --bin scale_sweep`
//! CI:  `cargo run --release -p deepserve-bench --bin scale_sweep -- --smoke --threads 4`
//!
//! `--threads N` sets the worker-pool size for the parallel runs; without
//! it, `DEEPSERVE_THREADS` applies, else the host's available parallelism
//! capped at 4. `--max-wall-ms B` (default 120000) skips any strategy
//! whose *predicted* wall exceeds the budget (prediction: the measured
//! fast-forward wall scaled by the measured event reduction), so the
//! million-request configurations never fall into an hours-long
//! single-step run. `--smoke` runs one small configuration plus a large
//! streamed configuration (256 TEs x 65k requests) and exits non-zero
//! unless all reports match, fast-forward achieves at least the
//! single-step iteration rate, and the streamed run stays under a fixed
//! RSS budget. A full run also snapshots the results to
//! `BENCH_scale.json` at the repo root to track the perf trajectory.

use deepserve::{materialize_trace, stream_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_bench::{
    header, numeric_flag, peak_rss_kb, reset_peak_rss, threads_flag, write_json,
};
use npu::specs::ClusterSpec;
use serde::Serialize;
use simcore::SimRng;
use std::time::Instant;
use workloads::ScaleTrace;

/// Above this request count only streamed strategies run: materializing
/// the trace would defeat the memory bound the configuration measures.
const MAT_LIMIT: usize = 1 << 18;
/// RSS ceiling for the smoke gate's large streamed run, in megabytes.
/// 256 TEs x 65k requests fits comfortably; a regression that makes
/// memory scale with trace length instead of in-flight load blows it.
const SMOKE_RSS_BUDGET_MB: f64 = 2048.0;

/// TE role layout of a configuration.
#[derive(Clone, Copy, PartialEq)]
enum Shape {
    /// All TEs colocated (chunked prefill + decode).
    Colocated,
    /// Alternating prefill/decode TEs (KV migrations on every request).
    PdPairs,
}

/// One sweep configuration.
#[derive(Clone, Copy)]
struct GridCfg {
    servers: usize,
    tes: usize,
    requests: usize,
    prefill_tokens: usize,
    output_tokens: u32,
    users: usize,
    rps_per_te: f64,
    shape: Shape,
}

/// One (configuration, execution strategy) measurement.
#[derive(Serialize, Clone)]
struct Row {
    tes: usize,
    requests: usize,
    output_tokens: u32,
    users: usize,
    mode: &'static str,
    threads: usize,
    /// Whether the trace was streamed through `inject_stream` (one
    /// request resident per pull) or fully materialized up front.
    streamed: bool,
    wall_ms: f64,
    events_processed: u64,
    sim_iterations: u64,
    ff_windows: u64,
    ff_iterations: u64,
    /// Logical iterations retired per wall-clock second (mode-invariant
    /// numerator — the honest throughput metric).
    iters_per_sec: f64,
    /// Raw simulator events per wall-clock second.
    events_per_sec: f64,
    makespan_s: f64,
    completed: usize,
    /// Peak resident set size during the run (VmHWM), megabytes; 0 where
    /// the kernel interface is unavailable.
    peak_rss_mb: f64,
    /// Parallel wake batches executed and their member counts — the
    /// parallel-window width telemetry.
    exec_batches: u64,
    exec_members: u64,
    exec_prefill_members: u64,
    /// Wake events forced through the sequential path (width-1 windows).
    exec_seq_wakes: u64,
    /// Effective mean window width over ALL wake executions:
    /// `(members + seq) / (batches + seq)` — forced-sequential wakes count
    /// as width-1 windows, so modes that exclude work from the parallel
    /// path cannot inflate their mean.
    batch_width: f64,
    /// Logical cores available on the measuring host — recorded so the
    /// perf trajectory in BENCH_scale.json is interpretable (a 1.0x
    /// `speedup_threads` on a 1-core host is expected, not a regression).
    host_cores: usize,
}

/// Per-configuration comparison of the execution strategies.
#[derive(Serialize)]
struct Combo {
    tes: usize,
    requests: usize,
    output_tokens: u32,
    users: usize,
    threads: usize,
    /// Single-step wall / single-thread fast-forward wall; `None` when
    /// the single-step run was skipped by the wall budget.
    speedup_ff: Option<f64>,
    /// Single-thread fast-forward wall / threaded fast-forward wall (the
    /// parallel-stepping gain; compounds with `speedup_ff`).
    speedup_threads: f64,
    /// Single-step events / fast-forward events.
    event_reduction: Option<f64>,
    reports_identical: bool,
    /// Mean parallel batch width of the threaded run (wide windows on).
    batch_width: f64,
    /// Mean batch width with wide windows disabled (PR-4 collection
    /// rule); PD configurations only.
    batch_width_narrow: Option<f64>,
    /// `batch_width / batch_width_narrow`; PD configurations only.
    width_gain: Option<f64>,
    /// Largest per-run peak RSS across the configuration's runs, MB.
    peak_rss_mb: f64,
    /// True when the wall budget skipped the single-step run.
    single_step_skipped: bool,
}

struct RunOut {
    row: Row,
    report_json: String,
}

fn roles_of(gc: &GridCfg) -> Vec<TeRole> {
    match gc.shape {
        Shape::Colocated => vec![TeRole::Colocated; gc.tes],
        Shape::PdPairs => (0..gc.tes)
            .map(|i| {
                if i % 2 == 0 {
                    TeRole::Prefill
                } else {
                    TeRole::Decode
                }
            })
            .collect(),
    }
}

fn run_one(
    gc: &GridCfg,
    mode: &'static str,
    fast_forward: bool,
    threads: usize,
    streamed: bool,
    wide: bool,
) -> RunOut {
    // Decode-heavy scale shape: small per-user prompts, sustained decode,
    // arrival rate matched to service capacity so the in-flight window —
    // and therefore streamed memory — stays bounded at any trace length.
    let scale = ScaleTrace {
        prefill: gc.prefill_tokens,
        decode: gc.output_tokens,
        rps: gc.rps_per_te * gc.tes as f64,
        count: gc.requests,
        users: gc.users,
    };
    let cfg = ClusterConfig {
        cluster: ClusterSpec::gen2_cluster(gc.servers),
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let roles = roles_of(gc);
    let mut sim = ClusterSim::new(cfg, &roles);
    sim.set_fast_forward(fast_forward);
    sim.set_threads(threads);
    sim.set_wide_windows(wide);
    reset_peak_rss();
    // The timer covers trace generation too: at streaming scale the
    // workload is produced inside the run, so excluding it from the
    // materialized side would flatter materialization.
    let start = Instant::now();
    if streamed {
        sim.inject_stream(stream_trace(
            scale.stream(SimRng::seed_from_u64(42).fork()),
            64_000,
        ));
    } else {
        let mut rng = SimRng::seed_from_u64(42);
        let trace = scale.generate(&mut rng);
        sim.inject(materialize_trace(&trace, 64_000));
    }
    let mut report = sim.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    let events = sim.events_processed();
    let stats = sim.engine_stats_total();
    let (exec_batches, exec_members, exec_prefill_members, exec_seq_wakes) = sim.exec_stats();
    let row = Row {
        tes: gc.tes,
        requests: gc.requests,
        output_tokens: gc.output_tokens,
        users: gc.users,
        mode,
        threads,
        streamed,
        wall_ms: wall * 1e3,
        events_processed: events,
        sim_iterations: stats.iterations,
        ff_windows: stats.ff_windows,
        ff_iterations: stats.ff_iterations,
        iters_per_sec: stats.iterations as f64 / wall,
        events_per_sec: events as f64 / wall,
        makespan_s: report.makespan.as_secs_f64(),
        completed: report.latency.completed() as usize,
        peak_rss_mb: peak_rss_kb().map_or(0.0, |kb| kb as f64 / 1024.0),
        exec_batches,
        exec_members,
        exec_prefill_members,
        exec_seq_wakes,
        batch_width: if exec_batches + exec_seq_wakes > 0 {
            (exec_members + exec_seq_wakes) as f64 / (exec_batches + exec_seq_wakes) as f64
        } else {
            0.0
        },
        host_cores: host_cores(),
    };
    RunOut {
        row,
        report_json: report.to_json().to_json(),
    }
}

fn best_of(
    gc: &GridCfg,
    mode: &'static str,
    fast_forward: bool,
    threads: usize,
    streamed: bool,
    reps: usize,
) -> RunOut {
    let mut best = run_one(gc, mode, fast_forward, threads, streamed, true);
    for _ in 1..reps {
        let r = run_one(gc, mode, fast_forward, threads, streamed, true);
        if r.row.wall_ms < best.row.wall_ms {
            best.row = r.row;
        }
    }
    best
}

fn print_row(r: &Row) {
    println!(
        "{:>5} {:>8} {:>6} {:>12} {:>4} {:>3} {:>10.1} {:>12} {:>12} {:>12.0} {:>8.1} {:>8.1} {:>6.2}",
        r.tes,
        r.requests,
        r.users,
        r.mode,
        r.threads,
        if r.streamed { "yes" } else { "no" },
        r.wall_ms,
        r.events_processed,
        r.sim_iterations,
        r.iters_per_sec,
        r.makespan_s,
        r.peak_rss_mb,
        r.batch_width,
    );
}

/// Runs one configuration under every applicable strategy; returns its
/// rows and the cross-strategy comparison.
fn run_config(gc: &GridCfg, threads: usize, max_wall_ms: f64) -> (Vec<Row>, Combo) {
    // Timing repetitions: best-of-3 absorbs scheduler/allocator noise on
    // the small configurations; the big ones are long enough to be stable
    // (and expensive enough that repeating them would dominate the sweep).
    let reps = if gc.requests < 1 << 16 { 3 } else { 1 };
    // Above MAT_LIMIT the trace is never materialized — the configuration
    // exists to demonstrate O(in-flight) memory — so the single-thread
    // and threaded baselines stream too.
    let big = gc.requests > MAT_LIMIT;
    let mut rows = Vec::new();
    let mut reports = Vec::new();

    let ff1 = best_of(gc, "fast_forward", true, 1, big, reps);
    let fft = best_of(gc, "fast_forward", true, threads, big, reps);
    rows.push(ff1.row.clone());
    rows.push(fft.row.clone());
    reports.push(ff1.report_json);
    reports.push(fft.report_json);

    // Streamed-vs-materialized A/B (identity + RSS): only meaningful when
    // the baselines above materialized.
    if !big {
        let ffs = best_of(gc, "ff_streamed", true, threads, true, reps);
        rows.push(ffs.row.clone());
        reports.push(ffs.report_json);
    }

    // Single-step baseline, behind the wall budget: predict its wall from
    // the measured fast-forward wall scaled by the event reduction
    // (single-step processes ~one event per logical iteration).
    let predicted_ss_ms =
        ff1.row.wall_ms * ff1.row.sim_iterations as f64 / (ff1.row.events_processed.max(1)) as f64;
    let run_ss = !big && predicted_ss_ms <= max_wall_ms;
    let mut speedup_ff = None;
    let mut event_reduction = None;
    if run_ss {
        let ss = best_of(gc, "single_step", false, 1, false, reps);
        speedup_ff = Some(ss.row.wall_ms / ff1.row.wall_ms);
        event_reduction = Some(ss.row.events_processed as f64 / ff1.row.events_processed as f64);
        rows.push(ss.row.clone());
        reports.push(ss.report_json);
    } else if !big {
        println!(
            "    [single_step skipped: predicted {predicted_ss_ms:.0} ms > budget {max_wall_ms:.0} ms]"
        );
    }

    // Wide-window A/B on PD shapes: disabling wide windows must not move
    // the report by a byte, and must narrow the mean batch width.
    let mut batch_width_narrow = None;
    let mut width_gain = None;
    if gc.shape == Shape::PdPairs && threads > 1 {
        let narrow = run_one(gc, "ff_narrow", true, threads, big, false);
        reports.push(narrow.report_json);
        batch_width_narrow = Some(narrow.row.batch_width);
        if narrow.row.batch_width > 0.0 {
            width_gain = Some(fft_width(&rows) / narrow.row.batch_width);
        }
        rows.push(narrow.row);
    }

    let ff1_row = &rows[0];
    let fft_row = &rows[1];
    let combo = Combo {
        tes: gc.tes,
        requests: gc.requests,
        output_tokens: gc.output_tokens,
        users: gc.users,
        threads,
        speedup_ff,
        speedup_threads: ff1_row.wall_ms / fft_row.wall_ms,
        event_reduction,
        reports_identical: reports.windows(2).all(|w| w[0] == w[1]),
        batch_width: fft_row.batch_width,
        batch_width_narrow,
        width_gain,
        peak_rss_mb: rows.iter().map(|r| r.peak_rss_mb).fold(0.0, f64::max),
        single_step_skipped: !run_ss,
    };
    (rows, combo)
}

/// Width of the threaded wide-window run (row index 1 by construction).
fn fft_width(rows: &[Row]) -> f64 {
    rows[1].batch_width
}

#[derive(Serialize)]
struct Sweep {
    rows: Vec<Row>,
    pairs: Vec<Combo>,
}

/// Worker-pool size for the parallel runs: the explicit `--threads` flag,
/// else the `DEEPSERVE_THREADS` env default, else the host's available
/// parallelism capped at 4 (so an unconfigured laptop run still exercises
/// the parallel path without oversubscribing).
/// Logical cores on this host (1 when the query fails).
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn sweep_threads() -> usize {
    if let Some(n) = threads_flag() {
        return n;
    }
    let env = deepserve::default_threads();
    if env > 1 {
        return env;
    }
    host_cores().min(4)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = sweep_threads();
    let max_wall_ms = numeric_flag("max-wall-ms").unwrap_or(120_000.0);
    header(if smoke {
        "scale_sweep --smoke: streaming + macro-stepping + parallel-stepping sanity check"
    } else {
        "scale_sweep: streaming, fast-forward & wide parallel windows vs single-step (34B TP=4)"
    });
    println!("[parallel runs use {threads} worker threads; wall budget {max_wall_ms:.0} ms]");
    let grid: &[GridCfg] = if smoke {
        &[
            GridCfg {
                servers: 2,
                tes: 4,
                requests: 256,
                output_tokens: 256,
                users: 32,
                prefill_tokens: 128,
                rps_per_te: 256.0,
                shape: Shape::Colocated,
            },
            // A compact PD-disaggregated config so the smoke gate also
            // covers the wide-window (waved) collection path: multi-chunk
            // prefills force mid-batch prefill members and KV-migration
            // fences.
            GridCfg {
                servers: 16,
                tes: 32,
                requests: 1024,
                prefill_tokens: 4608,
                output_tokens: 64,
                users: 512,
                rps_per_te: 2.0,
                shape: Shape::PdPairs,
            },
            // The CI scale gate: a large trace that must run streamed in
            // bounded memory with bit-identical reports at 1 / N threads
            // and streamed / materialized.
            GridCfg {
                servers: 128,
                tes: 256,
                requests: 1 << 16,
                output_tokens: 64,
                users: 1024,
                prefill_tokens: 128,
                rps_per_te: 24.0,
                shape: Shape::Colocated,
            },
        ]
    } else {
        &[
            GridCfg {
                servers: 2,
                tes: 4,
                requests: 256,
                output_tokens: 128,
                users: 32,
                prefill_tokens: 128,
                rps_per_te: 256.0,
                shape: Shape::Colocated,
            },
            GridCfg {
                servers: 4,
                tes: 8,
                requests: 512,
                output_tokens: 256,
                users: 64,
                prefill_tokens: 128,
                rps_per_te: 256.0,
                shape: Shape::Colocated,
            },
            GridCfg {
                servers: 8,
                tes: 16,
                requests: 1024,
                output_tokens: 512,
                users: 128,
                prefill_tokens: 128,
                rps_per_te: 256.0,
                shape: Shape::Colocated,
            },
            GridCfg {
                servers: 16,
                tes: 32,
                requests: 2048,
                output_tokens: 512,
                users: 256,
                prefill_tokens: 128,
                rps_per_te: 256.0,
                shape: Shape::Colocated,
            },
            // PD-disaggregated: every request migrates KV; the wide-window
            // A/B runs here. Multi-chunk prefills (4608 tokens = two
            // chunks at the 4096 budget) give most prefill wakes a long
            // iteration-end fence, so decode runs merge across them.
            GridCfg {
                servers: 128,
                tes: 256,
                requests: 8192,
                prefill_tokens: 4608,
                output_tokens: 256,
                users: 8192,
                rps_per_te: 2.0,
                shape: Shape::PdPairs,
            },
            // The 100x-scale configurations: streamed only, bounded RSS.
            GridCfg {
                servers: 128,
                tes: 256,
                requests: 1 << 18,
                output_tokens: 64,
                users: 4096,
                prefill_tokens: 128,
                rps_per_te: 24.0,
                shape: Shape::Colocated,
            },
            GridCfg {
                servers: 512,
                tes: 1024,
                requests: 1 << 20,
                output_tokens: 64,
                users: 16384,
                prefill_tokens: 128,
                rps_per_te: 24.0,
                shape: Shape::Colocated,
            },
        ]
    };
    println!(
        "{:>5} {:>8} {:>6} {:>12} {:>4} {:>3} {:>10} {:>12} {:>12} {:>12} {:>8} {:>8} {:>6}",
        "TEs",
        "reqs",
        "users",
        "mode",
        "thr",
        "str",
        "wall ms",
        "events",
        "iters",
        "iters/s",
        "sim s",
        "rss MB",
        "width"
    );
    let mut rows = Vec::new();
    let mut pairs = Vec::new();
    for gc in grid {
        let (cfg_rows, combo) = run_config(gc, threads, max_wall_ms);
        for r in &cfg_rows {
            print_row(r);
        }
        println!(
            "{:>38} ff {}   threads {:>5.2}x   width {:.2}{}   identical: {}",
            "->",
            combo
                .speedup_ff
                .map_or("   (skipped)".into(), |s| format!("{s:>5.1}x")),
            combo.speedup_threads,
            combo.batch_width,
            combo
                .width_gain
                .map_or(String::new(), |g| format!(" ({g:.2}x vs narrow)")),
            combo.reports_identical
        );
        rows.extend(cfg_rows);
        pairs.push(combo);
    }

    let all_identical = pairs.iter().all(|p| p.reports_identical);
    let sweep = Sweep { rows, pairs };
    write_json("scale_sweep", &sweep);

    if !all_identical {
        eprintln!("FAIL: an execution strategy diverged on at least one config");
        std::process::exit(1);
    }
    if smoke {
        // Parity gate on the small config only (single-core CI hosts make
        // threaded wall-clock assertions meaningless): fast-forward must
        // at least match the single-step iteration rate.
        let ss = sweep
            .rows
            .iter()
            .find(|r| r.mode == "single_step")
            .expect("smoke grid runs single_step");
        let ff = sweep
            .rows
            .iter()
            .find(|r| r.mode == "fast_forward" && r.tes == ss.tes && r.threads == 1)
            .expect("smoke grid runs fast_forward");
        if ff.iters_per_sec < ss.iters_per_sec {
            eprintln!("FAIL: fast-forward below single-step iteration rate");
            std::process::exit(1);
        }
        // Calibration gate: on a genuinely multi-core host the persistent
        // worker pool must deliver real wall-clock speedup on the compact
        // PD config (the one with wide enough windows to amortize
        // handoff). Skipped — loudly — on hosts without the cores to
        // show it.
        let cores = host_cores();
        let pd = sweep
            .pairs
            .iter()
            .find(|p| p.tes == 32)
            .expect("smoke grid runs the compact PD config");
        if cores >= 4 && threads >= 4 {
            if pd.speedup_threads < 1.3 {
                eprintln!(
                    "FAIL: parallel-stepping calibration: speedup_threads {:.2}x < 1.3x \
                     on the compact PD config ({cores} cores, {threads} threads)",
                    pd.speedup_threads
                );
                std::process::exit(1);
            }
            println!(
                "calibration OK: compact-PD speedup_threads {:.2}x >= 1.3x \
                 ({cores} cores, {threads} threads)",
                pd.speedup_threads
            );
        } else {
            println!(
                "calibration skipped: host has {cores} core(s) / {threads} sweep thread(s); \
                 the >= 1.3x compact-PD speedup gate needs 4 of each"
            );
        }
        // RSS gate on the large streamed run.
        let streamed_peak = sweep
            .rows
            .iter()
            .filter(|r| r.streamed && r.requests >= 1 << 16)
            .map(|r| r.peak_rss_mb)
            .fold(0.0, f64::max);
        if streamed_peak > SMOKE_RSS_BUDGET_MB {
            eprintln!(
                "FAIL: streamed run peak RSS {streamed_peak:.0} MB exceeds budget {SMOKE_RSS_BUDGET_MB:.0} MB"
            );
            std::process::exit(1);
        }
        println!(
            "\nsmoke OK: reports identical (streamed included), streamed peak RSS {streamed_peak:.0} MB \
             <= {SMOKE_RSS_BUDGET_MB:.0} MB budget"
        );
        return;
    }
    // Full run: snapshot next to Cargo.toml for the perf trajectory.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scale.json");
    let json = serde_json::to_string_pretty(&sweep).expect("serializable sweep");
    std::fs::write(&root, json).expect("write BENCH_scale.json");
    println!("[snapshot written to {}]", root.display());
    let worst_t = sweep
        .pairs
        .iter()
        .map(|p| p.speedup_threads)
        .fold(f64::INFINITY, f64::min);
    let best_t = sweep
        .pairs
        .iter()
        .map(|p| p.speedup_threads)
        .fold(0.0, f64::max);
    let peak = sweep
        .pairs
        .iter()
        .map(|p| p.peak_rss_mb)
        .fold(0.0, f64::max);
    println!(
        "\nparallel-stepping speedup at {threads} threads: min {worst_t:.2}x, max {best_t:.2}x; \
         peak RSS across the sweep: {peak:.0} MB"
    );
}
