//! Scale sweep: decode fast-forward (macro-stepping) vs single-stepping.
//!
//! Sweeps (TEs x requests x output length) on decode-heavy fixed-shape
//! workloads and runs every configuration twice — once with the cluster's
//! default macro-stepping pacing, once forced to the classic one-wake-per-
//! iteration loop — recording wall-clock, simulator events processed, and
//! throughput. Each pair is also checked for bit-identical `RunReport`s,
//! so the sweep doubles as an end-to-end equivalence test at scale.
//!
//! Reported throughput is *logical iterations per wall-clock second*: the
//! logical iteration count is invariant under fast-forward (the macro-step
//! commits the same per-iteration work), so the ratio of the two modes'
//! rates equals the wall-clock speedup. Raw events/sec is reported too,
//! but note fast-forward *shrinks* the event count by design.
//!
//! Run: `cargo run --release -p deepserve-bench --bin scale_sweep`
//! CI:  `cargo run --release -p deepserve-bench --bin scale_sweep -- --smoke`
//!
//! `--smoke` runs one small configuration and exits non-zero unless
//! fast-forward achieves at least the single-step iteration rate.
//! A full run also snapshots the results to `BENCH_scale.json` at the
//! repo root (next to `Cargo.toml`) to track the perf trajectory.

use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_bench::{header, write_json};
use npu::specs::ClusterSpec;
use serde::Serialize;
use simcore::SimRng;
use std::time::Instant;
use workloads::FixedShape;

const PREFILL_TOKENS: usize = 128;

/// One (configuration, pacing mode) measurement.
#[derive(Serialize)]
struct Row {
    tes: usize,
    requests: usize,
    output_tokens: u32,
    mode: &'static str,
    wall_ms: f64,
    events_processed: u64,
    sim_iterations: u64,
    ff_windows: u64,
    ff_iterations: u64,
    /// Logical iterations retired per wall-clock second (mode-invariant
    /// numerator — the honest throughput metric).
    iters_per_sec: f64,
    /// Raw simulator events per wall-clock second.
    events_per_sec: f64,
    makespan_s: f64,
    completed: usize,
}

/// Per-configuration comparison of the two modes.
#[derive(Serialize)]
struct Pair {
    tes: usize,
    requests: usize,
    output_tokens: u32,
    speedup_wall: f64,
    event_reduction: f64,
    reports_identical: bool,
}

struct RunOut {
    row: Row,
    report_json: String,
}

fn run_one(
    servers: usize,
    tes: usize,
    requests: usize,
    output_tokens: u32,
    fast_forward: bool,
) -> RunOut {
    // Decode-heavy fixed shape: small distinct prompts, long outputs, and
    // near-burst arrivals (the whole trace lands within ~1 simulated
    // second) so the run is dominated by steady decode, not admission.
    let shape = FixedShape {
        prefill: PREFILL_TOKENS,
        decode: output_tokens,
        rps: 256.0 * tes as f64,
        count: requests,
    };
    let mut rng = SimRng::seed_from_u64(42);
    let trace = shape.generate(&mut rng);
    let cfg = ClusterConfig {
        cluster: ClusterSpec::gen2_cluster(servers),
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let roles = vec![TeRole::Colocated; tes];
    let mut sim = ClusterSim::new(cfg, &roles);
    sim.set_fast_forward(fast_forward);
    sim.inject(materialize_trace(&trace, 64_000));
    let start = Instant::now();
    let mut report = sim.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    let events = sim.events_processed();
    let stats = sim.engine_stats_total();
    let row = Row {
        tes,
        requests,
        output_tokens,
        mode: if fast_forward {
            "fast_forward"
        } else {
            "single_step"
        },
        wall_ms: wall * 1e3,
        events_processed: events,
        sim_iterations: stats.iterations,
        ff_windows: stats.ff_windows,
        ff_iterations: stats.ff_iterations,
        iters_per_sec: stats.iterations as f64 / wall,
        events_per_sec: events as f64 / wall,
        makespan_s: report.makespan.as_secs_f64(),
        completed: report.latency.completed() as usize,
    };
    RunOut {
        row,
        report_json: report.to_json().to_json(),
    }
}

/// Timing repetitions per (config, mode); best-of-N absorbs scheduler and
/// allocator noise. The simulation itself is deterministic, so every rep
/// produces the identical report — only wall-clock varies.
const REPS: usize = 3;

fn run_pair(servers: usize, tes: usize, requests: usize, output_tokens: u32) -> (Row, Row, Pair) {
    let mut ss = run_one(servers, tes, requests, output_tokens, false);
    let mut ff = run_one(servers, tes, requests, output_tokens, true);
    for _ in 1..REPS {
        let s = run_one(servers, tes, requests, output_tokens, false);
        if s.row.wall_ms < ss.row.wall_ms {
            ss.row = s.row;
        }
        let f = run_one(servers, tes, requests, output_tokens, true);
        if f.row.wall_ms < ff.row.wall_ms {
            ff.row = f.row;
        }
    }
    let pair = Pair {
        tes,
        requests,
        output_tokens,
        speedup_wall: ss.row.wall_ms / ff.row.wall_ms,
        event_reduction: ss.row.events_processed as f64 / ff.row.events_processed as f64,
        reports_identical: ss.report_json == ff.report_json,
    };
    (ss.row, ff.row, pair)
}

fn print_row(r: &Row) {
    println!(
        "{:>4} {:>6} {:>5} {:>13} {:>10.1} {:>12} {:>12} {:>12.0} {:>10.1}",
        r.tes,
        r.requests,
        r.output_tokens,
        r.mode,
        r.wall_ms,
        r.events_processed,
        r.sim_iterations,
        r.iters_per_sec,
        r.makespan_s
    );
}

#[derive(Serialize)]
struct Sweep {
    rows: Vec<Row>,
    pairs: Vec<Pair>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(if smoke {
        "scale_sweep --smoke: macro-stepping sanity check"
    } else {
        "scale_sweep: decode fast-forward vs single-step (34B TP=4, colocated)"
    });
    // (servers, TEs, requests, output tokens); gen2 servers hold two TP=4
    // TEs each.
    let grid: &[(usize, usize, usize, u32)] = if smoke {
        &[(2, 4, 256, 256)]
    } else {
        &[
            (2, 4, 256, 128),
            (4, 8, 512, 256),
            (8, 16, 1024, 512),
            (16, 32, 2048, 512),
            (16, 32, 2048, 1024),
        ]
    };
    println!(
        "{:>4} {:>6} {:>5} {:>13} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "TEs", "reqs", "out", "mode", "wall ms", "events", "iters", "iters/s", "sim s"
    );
    let mut rows = Vec::new();
    let mut pairs = Vec::new();
    for &(servers, tes, requests, output) in grid {
        let (ss, ff, pair) = run_pair(servers, tes, requests, output);
        print_row(&ss);
        print_row(&ff);
        println!(
            "{:>31} speedup {:>5.1}x   events {:>5.1}x fewer   reports identical: {}",
            "->", pair.speedup_wall, pair.event_reduction, pair.reports_identical
        );
        rows.push(ss);
        rows.push(ff);
        pairs.push(pair);
    }

    let all_identical = pairs.iter().all(|p| p.reports_identical);
    let all_at_least_parity = rows
        .chunks(2)
        .all(|c| c[1].iters_per_sec >= c[0].iters_per_sec);
    let sweep = Sweep { rows, pairs };
    write_json("scale_sweep", &sweep);

    if !all_identical {
        eprintln!("FAIL: fast-forward diverged from single-step on at least one config");
        std::process::exit(1);
    }
    if smoke {
        if !all_at_least_parity {
            eprintln!("FAIL: fast-forward below single-step iteration rate");
            std::process::exit(1);
        }
        println!("\nsmoke OK: reports identical, fast-forward >= single-step iters/sec");
        return;
    }
    // Full run: snapshot next to Cargo.toml for the perf trajectory.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scale.json");
    let json = serde_json::to_string_pretty(&sweep).expect("serializable sweep");
    std::fs::write(&root, json).expect("write BENCH_scale.json");
    println!("[snapshot written to {}]", root.display());
    let worst = sweep
        .pairs
        .iter()
        .map(|p| p.speedup_wall)
        .fold(f64::INFINITY, f64::min);
    let best = sweep
        .pairs
        .iter()
        .map(|p| p.speedup_wall)
        .fold(0.0, f64::max);
    println!("\nwall-clock speedup: min {worst:.1}x, max {best:.1}x across the grid");
}
