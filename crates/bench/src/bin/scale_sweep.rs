//! Scale sweep: decode fast-forward (macro-stepping) and conservative
//! parallel stepping vs the classic single-threaded single-step loop.
//!
//! Sweeps (TEs x requests x output length) on decode-heavy fixed-shape
//! workloads and runs every configuration three times — the classic
//! one-wake-per-iteration loop, macro-stepping on one thread, and
//! macro-stepping on a worker pool — recording wall-clock, simulator
//! events processed, and throughput. All three runs of a configuration
//! are checked for bit-identical `RunReport`s, so the sweep doubles as an
//! end-to-end equivalence test at scale for both execution strategies.
//!
//! Reported throughput is *logical iterations per wall-clock second*: the
//! logical iteration count is invariant under fast-forward (the macro-step
//! commits the same per-iteration work), so the ratio of two modes'
//! rates equals the wall-clock speedup. Raw events/sec is reported too,
//! but note fast-forward *shrinks* the event count by design.
//!
//! Run: `cargo run --release -p deepserve-bench --bin scale_sweep`
//! CI:  `cargo run --release -p deepserve-bench --bin scale_sweep -- --smoke --threads 4`
//!
//! `--threads N` sets the worker-pool size for the parallel runs; without
//! it, `DEEPSERVE_THREADS` applies, else the host's available parallelism
//! capped at 4. `--smoke` runs one small configuration and exits non-zero
//! unless all reports match and fast-forward achieves at least the
//! single-step iteration rate (no speed assertion on the thread run —
//! single-core CI hosts are legitimate). A full run also snapshots the
//! results to `BENCH_scale.json` at the repo root (next to `Cargo.toml`)
//! to track the perf trajectory.

use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_bench::{header, threads_flag, write_json};
use npu::specs::ClusterSpec;
use serde::Serialize;
use simcore::SimRng;
use std::time::Instant;
use workloads::FixedShape;

const PREFILL_TOKENS: usize = 128;

/// One (configuration, execution strategy) measurement.
#[derive(Serialize)]
struct Row {
    tes: usize,
    requests: usize,
    output_tokens: u32,
    mode: &'static str,
    threads: usize,
    wall_ms: f64,
    events_processed: u64,
    sim_iterations: u64,
    ff_windows: u64,
    ff_iterations: u64,
    /// Logical iterations retired per wall-clock second (mode-invariant
    /// numerator — the honest throughput metric).
    iters_per_sec: f64,
    /// Raw simulator events per wall-clock second.
    events_per_sec: f64,
    makespan_s: f64,
    completed: usize,
}

/// Per-configuration comparison of the three execution strategies.
#[derive(Serialize)]
struct Trio {
    tes: usize,
    requests: usize,
    output_tokens: u32,
    threads: usize,
    /// Single-step wall / single-thread fast-forward wall.
    speedup_ff: f64,
    /// Single-thread fast-forward wall / threaded fast-forward wall (the
    /// parallel-stepping gain; compounds with `speedup_ff`).
    speedup_threads: f64,
    event_reduction: f64,
    reports_identical: bool,
}

struct RunOut {
    row: Row,
    report_json: String,
}

fn run_one(
    servers: usize,
    tes: usize,
    requests: usize,
    output_tokens: u32,
    fast_forward: bool,
    threads: usize,
) -> RunOut {
    // Decode-heavy fixed shape: small distinct prompts, long outputs, and
    // near-burst arrivals (the whole trace lands within ~1 simulated
    // second) so the run is dominated by steady decode, not admission.
    let shape = FixedShape {
        prefill: PREFILL_TOKENS,
        decode: output_tokens,
        rps: 256.0 * tes as f64,
        count: requests,
    };
    let mut rng = SimRng::seed_from_u64(42);
    let trace = shape.generate(&mut rng);
    let cfg = ClusterConfig {
        cluster: ClusterSpec::gen2_cluster(servers),
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let roles = vec![TeRole::Colocated; tes];
    let mut sim = ClusterSim::new(cfg, &roles);
    sim.set_fast_forward(fast_forward);
    sim.set_threads(threads);
    sim.inject(materialize_trace(&trace, 64_000));
    let start = Instant::now();
    let mut report = sim.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    let events = sim.events_processed();
    let stats = sim.engine_stats_total();
    let row = Row {
        tes,
        requests,
        output_tokens,
        mode: if fast_forward {
            "fast_forward"
        } else {
            "single_step"
        },
        threads,
        wall_ms: wall * 1e3,
        events_processed: events,
        sim_iterations: stats.iterations,
        ff_windows: stats.ff_windows,
        ff_iterations: stats.ff_iterations,
        iters_per_sec: stats.iterations as f64 / wall,
        events_per_sec: events as f64 / wall,
        makespan_s: report.makespan.as_secs_f64(),
        completed: report.latency.completed() as usize,
    };
    RunOut {
        row,
        report_json: report.to_json().to_json(),
    }
}

/// Timing repetitions per (config, mode); best-of-N absorbs scheduler and
/// allocator noise. The simulation itself is deterministic, so every rep
/// produces the identical report — only wall-clock varies.
const REPS: usize = 3;

fn best_of(
    servers: usize,
    tes: usize,
    requests: usize,
    output_tokens: u32,
    fast_forward: bool,
    threads: usize,
) -> RunOut {
    let mut best = run_one(servers, tes, requests, output_tokens, fast_forward, threads);
    for _ in 1..REPS {
        let r = run_one(servers, tes, requests, output_tokens, fast_forward, threads);
        if r.row.wall_ms < best.row.wall_ms {
            best.row = r.row;
        }
    }
    best
}

fn run_trio(
    servers: usize,
    tes: usize,
    requests: usize,
    output_tokens: u32,
    threads: usize,
) -> (Vec<Row>, Trio) {
    let ss = best_of(servers, tes, requests, output_tokens, false, 1);
    let ff = best_of(servers, tes, requests, output_tokens, true, 1);
    let par = best_of(servers, tes, requests, output_tokens, true, threads);
    let trio = Trio {
        tes,
        requests,
        output_tokens,
        threads,
        speedup_ff: ss.row.wall_ms / ff.row.wall_ms,
        speedup_threads: ff.row.wall_ms / par.row.wall_ms,
        event_reduction: ss.row.events_processed as f64 / ff.row.events_processed as f64,
        reports_identical: ss.report_json == ff.report_json && ff.report_json == par.report_json,
    };
    (vec![ss.row, ff.row, par.row], trio)
}

fn print_row(r: &Row) {
    println!(
        "{:>4} {:>6} {:>5} {:>13} {:>4} {:>10.1} {:>12} {:>12} {:>12.0} {:>10.1}",
        r.tes,
        r.requests,
        r.output_tokens,
        r.mode,
        r.threads,
        r.wall_ms,
        r.events_processed,
        r.sim_iterations,
        r.iters_per_sec,
        r.makespan_s
    );
}

#[derive(Serialize)]
struct Sweep {
    rows: Vec<Row>,
    pairs: Vec<Trio>,
}

/// Worker-pool size for the parallel runs: the explicit `--threads` flag,
/// else the `DEEPSERVE_THREADS` env default, else the host's available
/// parallelism capped at 4 (so an unconfigured laptop run still exercises
/// the parallel path without oversubscribing).
fn sweep_threads() -> usize {
    if let Some(n) = threads_flag() {
        return n;
    }
    let env = deepserve::default_threads();
    if env > 1 {
        return env;
    }
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(4)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = sweep_threads();
    header(if smoke {
        "scale_sweep --smoke: macro-stepping + parallel-stepping sanity check"
    } else {
        "scale_sweep: fast-forward & parallel stepping vs single-step (34B TP=4, colocated)"
    });
    println!("[parallel runs use {threads} worker threads]");
    // (servers, TEs, requests, output tokens); gen2 servers hold two TP=4
    // TEs each.
    let grid: &[(usize, usize, usize, u32)] = if smoke {
        &[(2, 4, 256, 256)]
    } else {
        &[
            (2, 4, 256, 128),
            (4, 8, 512, 256),
            (8, 16, 1024, 512),
            (16, 32, 2048, 512),
            (16, 32, 2048, 1024),
        ]
    };
    println!(
        "{:>4} {:>6} {:>5} {:>13} {:>4} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "TEs", "reqs", "out", "mode", "thr", "wall ms", "events", "iters", "iters/s", "sim s"
    );
    let mut rows = Vec::new();
    let mut pairs = Vec::new();
    for &(servers, tes, requests, output) in grid {
        let (trio_rows, trio) = run_trio(servers, tes, requests, output, threads);
        for r in &trio_rows {
            print_row(r);
        }
        println!(
            "{:>36} ff {:>5.1}x   threads {:>5.2}x   events {:>5.1}x fewer   identical: {}",
            "->",
            trio.speedup_ff,
            trio.speedup_threads,
            trio.event_reduction,
            trio.reports_identical
        );
        rows.extend(trio_rows);
        pairs.push(trio);
    }

    let all_identical = pairs.iter().all(|p| p.reports_identical);
    // Parity check over (single_step, fast_forward@1) only: the threaded
    // run's wall-clock depends on host cores, which a smoke gate must not.
    let all_at_least_parity = rows
        .chunks(3)
        .all(|c| c[1].iters_per_sec >= c[0].iters_per_sec);
    let sweep = Sweep { rows, pairs };
    write_json("scale_sweep", &sweep);

    if !all_identical {
        eprintln!("FAIL: an execution strategy diverged on at least one config");
        std::process::exit(1);
    }
    if smoke {
        if !all_at_least_parity {
            eprintln!("FAIL: fast-forward below single-step iteration rate");
            std::process::exit(1);
        }
        println!(
            "\nsmoke OK: reports identical across single-step / fast-forward / {threads} threads"
        );
        return;
    }
    // Full run: snapshot next to Cargo.toml for the perf trajectory.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scale.json");
    let json = serde_json::to_string_pretty(&sweep).expect("serializable sweep");
    std::fs::write(&root, json).expect("write BENCH_scale.json");
    println!("[snapshot written to {}]", root.display());
    let worst_ff = sweep
        .pairs
        .iter()
        .map(|p| p.speedup_ff)
        .fold(f64::INFINITY, f64::min);
    let best_ff = sweep.pairs.iter().map(|p| p.speedup_ff).fold(0.0, f64::max);
    let worst_t = sweep
        .pairs
        .iter()
        .map(|p| p.speedup_threads)
        .fold(f64::INFINITY, f64::min);
    let best_t = sweep
        .pairs
        .iter()
        .map(|p| p.speedup_threads)
        .fold(0.0, f64::max);
    println!(
        "\nfast-forward speedup: min {worst_ff:.1}x, max {best_ff:.1}x; \
         parallel-stepping speedup at {threads} threads: min {worst_t:.2}x, max {best_t:.2}x"
    );
}
