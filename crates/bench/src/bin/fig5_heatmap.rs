//! Figure 5: the PD-disaggregated vs PD-colocated heatmap.
//!
//! Paper setup: y-axis prefill length, x-axis decode/prefill ratio; for
//! each cell, a batch of identical requests at fixed RPS runs on both a
//! PD-disaggregated setup and a PD-colocated one (w/ chunked prefill),
//! cell value = JCT(coloc) / JCT(disagg) - 1; repeated across several RPS
//! levels. 34B model, TP=4. Comparison basis: one PD-colocated TE vs one
//! 1-prefill + 1-decode pair — per-phase-equal engines, so the heatmap
//! isolates prefill/decode *interference* (what disaggregation removes)
//! from aggregate capacity.
//!
//! Paper shape to reproduce: (1) disaggregation wins for long prefill +
//! short decode, and its advantage grows with prefill length; (2) wins are
//! larger than losses; (3) >80% of cells keep their sign across RPS.
//!
//! Run: `cargo run --release -p deepserve-bench --bin fig5_heatmap`

use deepserve::heatmap::{Heatmap, COLS, PREFILL_EDGES, RATIO_EDGES, ROWS};
use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_bench::{header, write_json};
use serde::Serialize;
use simcore::SimRng;
use workloads::FixedShape;

const CELL_REQUESTS: usize = 12;
const RPS_LEVELS: [f64; 3] = [0.25, 0.5, 1.0];

fn cell_jct(roles: &[TeRole], prefill: usize, decode: u32, rps: f64, seed: u64) -> f64 {
    let mut rng = SimRng::seed_from_u64(seed);
    let trace = FixedShape {
        prefill,
        decode,
        rps,
        count: CELL_REQUESTS,
    }
    .generate(&mut rng);
    let cfg = ClusterConfig {
        policy: Policy::RoundRobin, // fixed-shape cells: no routing games
        ..ClusterConfig::standard_34b()
    };
    let mut sim = ClusterSim::new(cfg, roles);
    sim.inject(materialize_trace(&trace, 64_000));
    let mut report = sim.run_to_completion();
    // Fault-free cell: fail loudly on an empty distribution rather than
    // writing a fabricated zero into the heatmap.
    report
        .latency
        .jct_ms()
        .non_empty()
        .expect("no completions")
        .mean
}

#[derive(Serialize)]
struct Output {
    rps_levels: Vec<f64>,
    maps: Vec<Heatmap>,
    combined: Heatmap,
    sign_stability: f64,
}

fn main() {
    header("Figure 5: PD-disaggregated vs PD-colocated heatmap (34B TP=4)");
    println!(
        "cells: {CELL_REQUESTS} identical requests; value = JCT(coloc)/JCT(disagg) - 1\n\
         resources: 1 colocated engine vs 1P + 1D pair (per-phase equal)"
    );

    let coloc_roles = [TeRole::Colocated];
    let disagg_roles = [TeRole::Prefill, TeRole::Decode];
    let mut maps = Vec::new();
    for (li, &rps) in RPS_LEVELS.iter().enumerate() {
        let mut map = Heatmap::zeros(format!("rps={rps}"));
        for (r, &prefill) in PREFILL_EDGES.iter().enumerate() {
            for (c, &ratio) in RATIO_EDGES.iter().enumerate() {
                let decode = ((prefill as f64 * ratio).round() as u32).max(1);
                let seed = (li * ROWS * COLS + r * COLS + c) as u64;
                let jc = cell_jct(&coloc_roles, prefill, decode, rps, 10_000 + seed);
                let jd = cell_jct(&disagg_roles, prefill, decode, rps, 10_000 + seed);
                map.set(r, c, jc / jd - 1.0);
            }
        }
        println!("\n{}", map.render());
        maps.push(map);
    }

    let combined = Heatmap::combine(&maps);
    println!("{}", combined.render());
    let stability = Heatmap::sign_stability(&maps);

    header("Shape check");
    let max_win = combined
        .cells
        .iter()
        .flatten()
        .copied()
        .fold(f64::MIN, f64::max);
    let max_loss = combined
        .cells
        .iter()
        .flatten()
        .copied()
        .fold(f64::MAX, f64::min);
    println!(
        "long-prefill/short-decode cell (16K, 1/64): {:+.2}",
        combined.cells[ROWS - 1][0]
    );
    println!(
        "short-prefill/long-decode cell (256, 1.0):  {:+.2}",
        combined.cells[0][COLS - 1]
    );
    println!("max win {max_win:+.2} vs max loss {max_loss:+.2} (paper: wins > losses)");
    println!(
        "sign stability across RPS: {:.0}% (paper: >80%)",
        stability * 100.0
    );

    write_json(
        "fig5_heatmap",
        &Output {
            rps_levels: RPS_LEVELS.to_vec(),
            maps,
            combined,
            sign_stability: stability,
        },
    );
}
