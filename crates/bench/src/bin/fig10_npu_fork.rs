//! Figure 10: NPU-fork scalability and sensitivity (Llama3-8B, TP=1, HCCS).
//!
//! (a) scaling 1 -> 64 TEs in parallel from one running source TE (HCCL
//!     pipelined broadcast keeps the curve nearly flat);
//! (b) time to scale to 32 TEs while the source TE prefills sequences of
//!     different lengths;
//! (c) scaling time while the source TE decodes batches of 1K-token
//!     sequences.
//!
//! Paper shape: near-flat scaling to 64; limited sensitivity to source
//! load thanks to the dedicated AICPU transfer path.
//!
//! Run: `cargo run --release -p deepserve-bench --bin fig10_npu_fork`

use deepserve::{LoadPath, ScalingModel, SourceLoad};
use deepserve_bench::{cost_34b_tp4, header, write_json};
use llm_model::{BatchWork, Checkpoint, ExecCostModel, ModelSpec, Parallelism};
use npu::pagecache::FileId;
use npu::specs::ClusterSpec;
use serde::Serialize;

#[derive(Serialize, Default)]
struct Output {
    scaling: Vec<(usize, f64)>,
    prefill_sensitivity: Vec<(u64, f64)>,
    decode_sensitivity: Vec<(u64, f64)>,
}

/// Source-TE busyness while prefilling a sequence of `len` tokens: the
/// fraction of a 1-second scaling window the NPU spends in prefill compute.
fn prefill_intensity(cost: &ExecCostModel, len: u64) -> f64 {
    let t = cost.step_time(&BatchWork::prefill(len, 0)).as_secs_f64();
    (t / (t + 0.05)).clamp(0.0, 1.0)
}

/// Source-TE busyness while decoding `batch` sequences of 1K tokens:
/// decode keeps the NPU continuously busy; intensity grows with batch.
fn decode_intensity(cost: &ExecCostModel, batch: u64) -> f64 {
    let t = cost.decode_iter_time(batch, 1024).as_secs_f64();
    let floor = cost.decode_iter_time(1, 1024).as_secs_f64();
    (0.5 + 0.5 * (1.0 - floor / t)).clamp(0.0, 1.0)
}

fn main() {
    header("Figure 10: NPU-fork scalability & sensitivity (Llama3-8B TP=1, HCCS)");
    let m = ScalingModel::new(ClusterSpec::gen2_cluster(16));
    let ckpt = Checkpoint::new(FileId(1), ModelSpec::llama3_8b());
    let par = Parallelism::tp(1);
    let mut out = Output::default();

    // (a) parallel fan-out.
    println!("\n(a) scaling N TEs in parallel from one source:");
    println!("{:>8} {:>12}", "N", "time (s)");
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let t = m
            .te_load(
                &ckpt,
                par,
                LoadPath::NpuForkHccs { fanout: n },
                SourceLoad::idle(),
            )
            .as_secs_f64();
        println!("{n:>8} {t:>12.2}");
        out.scaling.push((n, t));
    }
    let flatness = out.scaling.last().unwrap().1 / out.scaling[0].1;
    println!("64-way vs 1-way: {flatness:.2}x (paper: nearly flat, pipelined broadcast)");

    // (b) source prefilling different lengths, scale to 32.
    // The source runs a real engine workload; its compute intensity feeds
    // the AICPU contention model.
    let src_cost = cost_34b_tp4(); // the paper's source serves real traffic
    println!("\n(b) scale to 32 TEs while source prefills a sequence of length L:");
    println!("{:>10} {:>12}", "L (tok)", "time (s)");
    for len in [0u64, 1024, 2048, 4096, 8192, 16384] {
        let intensity = if len == 0 {
            0.0
        } else {
            prefill_intensity(&src_cost, len)
        };
        let t = m
            .te_load(
                &ckpt,
                par,
                LoadPath::NpuForkHccs { fanout: 32 },
                SourceLoad { intensity },
            )
            .as_secs_f64();
        println!("{len:>10} {t:>12.2}");
        out.prefill_sensitivity.push((len, t));
    }

    // (c) source decoding batches of 1K-token sequences.
    println!("\n(c) scale to 32 TEs while source decodes a batch of B x 1K-token seqs:");
    println!("{:>10} {:>12}", "B", "time (s)");
    for batch in [0u64, 1, 8, 32, 64, 128, 256] {
        let intensity = if batch == 0 {
            0.0
        } else {
            decode_intensity(&src_cost, batch)
        };
        let t = m
            .te_load(
                &ckpt,
                par,
                LoadPath::NpuForkHccs { fanout: 32 },
                SourceLoad { intensity },
            )
            .as_secs_f64();
        println!("{batch:>10} {t:>12.2}");
        out.decode_sensitivity.push((batch, t));
    }

    header("Shape check");
    let idle32 = out.prefill_sensitivity[0].1;
    let worst = out
        .prefill_sensitivity
        .iter()
        .chain(&out.decode_sensitivity)
        .map(|&(_, t)| t)
        .fold(f64::MIN, f64::max);
    println!(
        "worst-case busy-source slowdown: {:.1}% (paper: 'contention is limited' — \
         dedicated AICPU)",
        (worst / idle32 - 1.0) * 100.0
    );
    println!(
        "scale-to-64 completes in {:.1}s — 'scale up to 64 instances in parallel within seconds'",
        out.scaling.last().unwrap().1
    );
    write_json("fig10_npu_fork", &out);
}
