//! Figure 9: TE-Load study — local loading (DRAM-hit / DRAM-miss /
//! theoretical) vs NPU-fork (HCCS / RoCE) across three models at their
//! production parallelism.
//!
//! Paper shapes to reproduce: DRAM-miss >> DRAM-hit > theoretical; the
//! hit-vs-theoretical gap grows with TP rank (PCIe link sharing) plus the
//! fixed 0.3 s tensor-init cost; NPU-fork over HCCS beats RoCE and local
//! loading; fork time is roughly model-invariant because per-NPU bytes are
//! roughly constant across (model, production-TP) pairs.
//!
//! Run: `cargo run --release -p deepserve-bench --bin fig9_te_load`

use deepserve::{LoadPath, ScalingModel, SourceLoad};
use deepserve_bench::{header, write_json};
use llm_model::{Checkpoint, ModelSpec, Parallelism};
use npu::pagecache::FileId;
use npu::specs::ClusterSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    tp: u32,
    per_npu_gb: f64,
    theoretical_s: f64,
    dram_hit_s: f64,
    dram_miss_s: f64,
    fork_hccs_s: f64,
    fork_roce_s: f64,
}

fn main() {
    header("Figure 9: TE-Load time by path (seconds)");
    // Accepted for CLI uniformity with the other figure binaries; this
    // study is analytic (no ClusterSim runs), so there is nothing to
    // parallelize.
    let _ = deepserve_bench::threads_arg();
    let m = ScalingModel::new(ClusterSpec::gen2_cluster(4));
    let cases = [
        (ModelSpec::llama3_8b(), Parallelism::tp(1)),
        (ModelSpec::internal_34b(), Parallelism::tp(4)),
        (ModelSpec::llama3_70b(), Parallelism::tp(8)),
    ];
    println!(
        "{:>14} {:>4} {:>10} {:>13} {:>10} {:>11} {:>11} {:>11}",
        "model", "TP", "GB/NPU", "theoretical", "DRAM-hit", "DRAM-miss", "fork-HCCS", "fork-RoCE"
    );
    let mut rows = Vec::new();
    for (spec, par) in cases {
        let name = spec.name;
        let ckpt = Checkpoint::new(FileId(1), spec);
        let idle = SourceLoad::idle();
        let r = Row {
            model: name,
            tp: par.tp,
            per_npu_gb: ckpt.partition_bytes(par) as f64 / (1u64 << 30) as f64,
            theoretical_s: m.te_load_theoretical(&ckpt, par).as_secs_f64(),
            dram_hit_s: m.te_load(&ckpt, par, LoadPath::DramHit, idle).as_secs_f64(),
            dram_miss_s: m
                .te_load(&ckpt, par, LoadPath::DramMiss, idle)
                .as_secs_f64(),
            fork_hccs_s: m
                .te_load(&ckpt, par, LoadPath::NpuForkHccs { fanout: 1 }, idle)
                .as_secs_f64(),
            fork_roce_s: m
                .te_load(&ckpt, par, LoadPath::NpuForkRoce { fanout: 1 }, idle)
                .as_secs_f64(),
        };
        println!(
            "{:>14} {:>4} {:>10.1} {:>13.2} {:>10.2} {:>11.2} {:>11.2} {:>11.2}",
            r.model,
            r.tp,
            r.per_npu_gb,
            r.theoretical_s,
            r.dram_hit_s,
            r.dram_miss_s,
            r.fork_hccs_s,
            r.fork_roce_s
        );
        rows.push(r);
    }

    header("Shape check");
    for r in &rows {
        assert!(r.theoretical_s < r.dram_hit_s);
        assert!(r.dram_hit_s < r.dram_miss_s);
        assert!(r.fork_hccs_s < r.fork_roce_s);
    }
    println!("ordering per model: theoretical < DRAM-hit < DRAM-miss; HCCS fork < RoCE fork  [ok]");
    let gap = |r: &Row| r.dram_hit_s / r.theoretical_s;
    println!(
        "DRAM-hit/theoretical gap grows with TP: {:.2}x (TP1) -> {:.2}x (TP4) -> {:.2}x (TP8)",
        gap(&rows[0]),
        gap(&rows[1]),
        gap(&rows[2])
    );
    let fork_spread = rows.iter().map(|r| r.fork_hccs_s).fold(f64::MIN, f64::max)
        / rows.iter().map(|r| r.fork_hccs_s).fold(f64::MAX, f64::min);
    println!(
        "NPU-fork (HCCS) spread across models: {fork_spread:.2}x (paper: roughly constant, \
         per-NPU bytes are ~equal)"
    );
    write_json("fig9_te_load", &rows);
}
