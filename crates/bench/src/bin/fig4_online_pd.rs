//! Figure 4: FlowServe online serving — PD-disaggregated vs PD-colocated.
//!
//! Paper setup: 34B model, TP=4, internal trace (~2K input / 200 output),
//! three setups: (1) 2 prefill + 2 decode, (2) 2 prefill + 1 decode,
//! (3) 4 PD-colocated; RPS swept 0.2 -> 1.2 in steps of 0.2.
//!
//! Paper shape to reproduce: disaggregation "greatly improves throughput
//! under certain SLA and lowers TPOT with the same throughput".
//!
//! Axis note: our simulated Gen2 engines are roughly 10x the paper
//! testbed's per-engine throughput, so the offered-load sweep is the
//! paper's 0.2 -> 1.2 RPS grid scaled by 10 (2 -> 12 RPS). Crossovers are
//! compared at matched utilization, not absolute RPS.
//!
//! Run: `cargo run --release -p deepserve-bench --bin fig4_online_pd`

use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_bench::{header, trace_out, write_json, write_trace};
use serde::value::{Number, Value};
use serde::Serialize;
use simcore::{SimRng, TraceLevel};
use workloads::ChatTrace;

const REQUESTS: usize = 240;
const RPS_SCALE: f64 = 10.0;
const TPOT_SLA_MS: f64 = 50.0;
const TTFT_SLA_MS: f64 = 3_000.0;

#[derive(Serialize)]
struct Point {
    setup: &'static str,
    rps: f64,
    ttft_p50_ms: f64,
    ttft_p99_ms: f64,
    tpot_p50_ms: f64,
    tpot_p99_ms: f64,
    jct_p50_ms: f64,
    throughput_tok_s: f64,
    tpot_sla_attainment: f64,
    ttft_sla_attainment: f64,
}

fn setups() -> Vec<(&'static str, Vec<TeRole>)> {
    vec![
        (
            "2P2D",
            vec![
                TeRole::Prefill,
                TeRole::Prefill,
                TeRole::Decode,
                TeRole::Decode,
            ],
        ),
        (
            "2P1D",
            vec![TeRole::Prefill, TeRole::Prefill, TeRole::Decode],
        ),
        ("4C", vec![TeRole::Colocated; 4]),
    ]
}

fn main() {
    header("Figure 4: online serving, PD-disaggregated vs PD-colocated (34B TP=4)");
    println!("trace: ~2K input / 200 output, Poisson arrivals, {REQUESTS} requests/point");
    let trace_path = trace_out("fig4_online_pd");
    let mut trace_runs: Vec<Value> = Vec::new();
    let mut points = Vec::new();
    println!(
        "\n{:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "setup",
        "rps",
        "TTFT p50",
        "TTFT p99",
        "TPOT p50",
        "TPOT p99",
        "thr tok/s",
        "TPOT SLA",
        "TTFT SLA"
    );
    for (name, roles) in setups() {
        for step in 1..=6 {
            let rps = 0.2 * step as f64 * RPS_SCALE;
            // Identical trace across setups at each RPS.
            let mut rng = SimRng::seed_from_u64(1000 + step);
            let trace = ChatTrace::paper(rps).generate(&mut rng, REQUESTS);
            let cfg = ClusterConfig {
                policy: Policy::Combined,
                ..ClusterConfig::standard_34b()
            };
            let mut sim = ClusterSim::new(cfg, &roles);
            // Trace the heaviest step of each setup: lifecycle-level spans for
            // every request, plus the run's metrics registry.
            let traced = trace_path.is_some() && step == 6;
            if traced {
                sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
            }
            sim.inject(materialize_trace(&trace, 64_000));
            let mut report = sim.run_to_completion();
            if traced {
                trace_runs.push(Value::Object(vec![
                    ("setup".into(), Value::String(name.to_string())),
                    ("rps".into(), Value::Number(Number::F64(rps))),
                    ("trace".into(), report.trace.to_json()),
                    ("metrics".into(), report.metrics.to_json()),
                ]));
            }
            // Fault-free run: empty stats mean a broken setup — fail
            // loudly rather than writing fabricated zeros.
            let ttft = report
                .latency
                .ttft_ms()
                .non_empty()
                .expect("no completions");
            let tpot = report
                .latency
                .tpot_ms()
                .non_empty()
                .expect("no completions");
            let jct = report.latency.jct_ms().non_empty().expect("no completions");
            let p = Point {
                setup: name,
                rps,
                ttft_p50_ms: ttft.p50,
                ttft_p99_ms: ttft.p99,
                tpot_p50_ms: tpot.p50,
                tpot_p99_ms: tpot.p99,
                jct_p50_ms: jct.p50,
                throughput_tok_s: report.throughput(),
                tpot_sla_attainment: report
                    .latency
                    .tpot_sla_attainment(TPOT_SLA_MS)
                    .unwrap_or(0.0),
                ttft_sla_attainment: report
                    .latency
                    .ttft_sla_attainment(TTFT_SLA_MS)
                    .unwrap_or(0.0),
            };
            println!(
                "{:>6} {:>6.1} {:>10.0} {:>10.0} {:>10.1} {:>10.1} {:>12.1} {:>9.0}% {:>9.0}%",
                p.setup,
                p.rps,
                p.ttft_p50_ms,
                p.ttft_p99_ms,
                p.tpot_p50_ms,
                p.tpot_p99_ms,
                p.throughput_tok_s,
                p.tpot_sla_attainment * 100.0,
                p.ttft_sla_attainment * 100.0
            );
            points.push(p);
        }
        println!();
    }

    header("Shape check");
    // Max RPS sustaining >= 95% TPOT-SLA attainment, per setup.
    for (name, _) in setups() {
        let max_rps = points
            .iter()
            .filter(|p| p.setup == name && p.tpot_sla_attainment >= 0.95)
            .map(|p| p.rps)
            .fold(0.0, f64::max);
        println!("{name}: highest RPS with >=95% TPOT<=50ms attainment: {max_rps:.1}");
    }
    println!(
        "\npaper shape: disaggregated setups sustain higher RPS under the SLA\n\
         and show lower TPOT than 4C at matched load."
    );
    write_json("fig4_online_pd", &points);
    if let Some(path) = &trace_path {
        write_trace(
            path,
            &Value::Object(vec![("runs".into(), Value::Array(trace_runs))]),
        );
    }
}
