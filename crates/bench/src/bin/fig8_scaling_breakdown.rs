//! Figure 8 + Table 2: end-to-end scaling latency breakdown, before and
//! after optimizations.
//!
//! Paper shape to reproduce: every optimization shrinks its step; after
//! optimization, TE-Pre-Load dominates the remaining pipeline unless TEs
//! are pre-warmed (§6.1), at which point the whole scale-up takes seconds.
//!
//! Run: `cargo run --release -p deepserve-bench --bin fig8_scaling_breakdown`

use deepserve::{LoadPath, ScalingBreakdown, ScalingModel, ScalingOptimizations, SourceLoad};
use deepserve_bench::{header, trace_out, write_json, write_trace};
use llm_model::{Checkpoint, ModelSpec, Parallelism};
use npu::pagecache::FileId;
use npu::specs::ClusterSpec;
use serde::Serialize;
use simcore::{SimTime, Trace, TraceLevel, Tracer};

#[derive(Serialize)]
struct Row {
    model: &'static str,
    config: &'static str,
    scaler_pre_s: f64,
    te_pre_load_s: f64,
    te_load_s: f64,
    te_post_load_s: f64,
    scaler_post_s: f64,
    total_s: f64,
}

fn row(model: &'static str, config: &'static str, b: ScalingBreakdown) -> Row {
    Row {
        model,
        config,
        scaler_pre_s: b.scaler_pre.as_secs_f64(),
        te_pre_load_s: b.te_pre_load.as_secs_f64(),
        te_load_s: b.te_load.as_secs_f64(),
        te_post_load_s: b.te_post_load.as_secs_f64(),
        scaler_post_s: b.scaler_post.as_secs_f64(),
        total_s: b.total().as_secs_f64(),
    }
}

fn print_row(r: &Row) {
    println!(
        "{:>12} {:>26} {:>10.2} {:>12.2} {:>9.2} {:>13.2} {:>12.2} {:>9.2}",
        r.model,
        r.config,
        r.scaler_pre_s,
        r.te_pre_load_s,
        r.te_load_s,
        r.te_post_load_s,
        r.scaler_post_s,
        r.total_s
    );
}

fn main() {
    header("Figure 8 / Table 2: end-to-end scaling breakdown (seconds)");
    println!(
        "{:>12} {:>26} {:>10} {:>12} {:>9} {:>13} {:>12} {:>9}",
        "model",
        "config",
        "ScalerPre",
        "TE-Pre-Load",
        "TE-Load",
        "TE-Post-Load",
        "Scaler-Post",
        "TOTAL"
    );

    let cluster = ClusterSpec::gen2_cluster(4);
    let m = ScalingModel::new(cluster);
    let mut rows = Vec::new();

    let trace_path = trace_out("fig8_scaling_breakdown");
    let mut combined = Trace::default();
    let mut record_trace = |component: &str, b: &ScalingBreakdown| {
        if trace_path.is_none() {
            return;
        }
        let mut t = Tracer::enabled(TraceLevel::Lifecycle, 64);
        b.emit_trace(&mut t, SimTime::ZERO);
        combined.absorb(component, t.take());
    };

    let cases = [
        (
            "internal-34b",
            ModelSpec::internal_34b(),
            Parallelism::tp(4),
        ),
        ("llama3-70b", ModelSpec::llama3_70b(), Parallelism::tp(8)),
    ];
    for (name, spec, par) in cases {
        let ckpt = Checkpoint::new(FileId(1), spec);

        // Before: nothing optimized, cold SSD load.
        let before = m.breakdown(
            &ckpt,
            par,
            ScalingOptimizations::none(),
            LoadPath::DramMiss,
            SourceLoad::idle(),
        );
        record_trace(&format!("{name}/before"), &before);
        let r = row(name, "before (cold)", before);
        print_row(&r);
        rows.push(r);

        // After software opts, but no pre-warmed TE pool: the paper's
        // "TE-Pre-load remains the dominant factor" configuration.
        let opts_no_prewarm = ScalingOptimizations {
            prewarmed_tes: false,
            npu_fork: false,
            ..ScalingOptimizations::all()
        };
        let after_sw = m.breakdown(
            &ckpt,
            par,
            opts_no_prewarm,
            LoadPath::DramHit,
            SourceLoad::idle(),
        );
        record_trace(&format!("{name}/after-sw"), &after_sw);
        let r = row(name, "after (opt, no TE prewarm)", after_sw);
        print_row(&r);
        rows.push(r);

        // Everything on: pre-warmed TEs + NPU-fork.
        let after_all = m.breakdown(
            &ckpt,
            par,
            ScalingOptimizations::all(),
            LoadPath::NpuForkHccs { fanout: 1 },
            SourceLoad::idle(),
        );
        record_trace(&format!("{name}/after-all"), &after_all);
        let r = row(name, "after (all optimizations)", after_all);
        print_row(&r);
        rows.push(r);
        println!();
    }

    header("Table 2 mapping (step -> issue -> solution)");
    for line in [
        "1 Scaler-Pre   | resource allocation slow      | pre-warmed pods",
        "2 TE-Pre-Load  | Python/NPU init slow          | late import, parallel init, pre-warmed TEs",
        "3 TE-Load      | model weights large           | DRAM pre-loading, NPU-fork",
        "4 TE-Post-Load | warmup + block alloc slow     | offline profiling, async alloc, dummy req",
        "5 Scaler-Post  | TE-list retrieval interval    | proactive pushing",
    ] {
        println!("  {line}");
    }

    header("Shape check");
    let before = &rows[0];
    let mid = &rows[1];
    let after = &rows[2];
    println!(
        "34B cold total {:.1}s -> software-optimized {:.1}s -> fully pre-warmed {:.1}s",
        before.total_s, mid.total_s, after.total_s
    );
    println!(
        "TE-Pre-Load share after software opts: {:.0}% (paper: dominant)",
        mid.te_pre_load_s / mid.total_s * 100.0
    );
    println!(
        "fully optimized scale-up lands in seconds: {}",
        if after.total_s < 5.0 { "yes" } else { "NO" }
    );
    write_json("fig8_scaling_breakdown", &rows);
    if let Some(path) = &trace_path {
        write_trace(path, &combined.to_json());
    }
}
