//! Fault sweep: goodput and tail-latency degradation under TE crashes.
//!
//! Sweeps crash rate (Poisson crashes per second across the pool) against
//! the health monitor's miss threshold (faster detection vs more false-
//! positive risk in a real deployment) on a 4-TE colocated pool serving the
//! chat trace. For each cell we report goodput (completed requests over the
//! makespan), p99 TTFT/JCT degradation vs the zero-fault baseline, and the
//! recovery counters (detections, repairs, re-dispatches, RTC tokens saved
//! on re-prefill).
//!
//! The headline property: goodput degrades *gracefully* with crash rate —
//! no cliff to zero while spare capacity exists — because re-dispatch plus
//! the fast-scaling repair path keeps the pool serving.
//!
//! Run: `cargo run --release -p deepserve-bench --bin fault_sweep`

use deepserve::{
    materialize_trace, ClusterConfig, ClusterSim, FaultRecoveryConfig, HealthConfig, Policy, TeRole,
};
use deepserve_bench::{header, write_json};
use serde::Serialize;
use simcore::{FaultPlan, SimDuration, SimRng};
use workloads::ChatTrace;

const N_TES: u32 = 4;
const REQUESTS: usize = 120;
const RPS: f64 = 1.2;
const WORKLOAD_SEED: u64 = 71;
const PLAN_SEED: u64 = 1009;
const HORIZON: SimDuration = SimDuration::from_secs(300);

#[derive(Serialize)]
struct Cell {
    crash_rate_per_sec: f64,
    miss_threshold: u32,
    crashes_planned: usize,
    completed: u64,
    failed: u64,
    goodput_rps: f64,
    /// `None` when no request completed in this cell — an all-fail cell
    /// must serialize as `null`, not as a fabricated perfect latency.
    ttft_p99_ms: Option<f64>,
    jct_p99_ms: Option<f64>,
    detected: u64,
    repaired: u64,
    requeued: u64,
    requeue_cache_hit_tokens: u64,
    /// `None` when no repair finished (e.g. the zero-fault baseline).
    repair_latency_ms_mean: Option<f64>,
}

#[derive(Serialize, Default)]
struct Output {
    baseline_goodput_rps: f64,
    baseline_ttft_p99_ms: Option<f64>,
    baseline_jct_p99_ms: Option<f64>,
    cells: Vec<Cell>,
}

/// Renders an optional statistic for the console table (`-` = no data).
fn opt(ms: Option<f64>) -> String {
    ms.map_or_else(|| "-".to_string(), |v| format!("{v:.0}"))
}

fn run_cell(rate: f64, miss_threshold: u32) -> Cell {
    let mut rng = SimRng::seed_from_u64(WORKLOAD_SEED);
    let reqs = materialize_trace(&ChatTrace::paper(RPS).generate(&mut rng, REQUESTS), 64_000);
    let plan = FaultPlan::random_crashes(PLAN_SEED, N_TES, HORIZON, rate);
    let crashes_planned = plan.events.len();

    let cfg = ClusterConfig {
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let mut sim = ClusterSim::new(cfg, &[TeRole::Colocated; N_TES as usize]);
    sim.inject(reqs);
    let recovery = FaultRecoveryConfig {
        health: HealthConfig {
            miss_threshold,
            ..HealthConfig::default()
        },
        ..FaultRecoveryConfig::default()
    };
    sim.install_faults(&plan, recovery);
    let mut report = sim.run_to_completion();
    let (done, sub) = sim.progress();
    assert_eq!(done + sim.failed(), sub, "conservation in every cell");

    let goodput = done as f64 / report.makespan.as_secs_f64().max(1e-9);
    let repair_mean = report
        .metrics
        .summary("cluster.repair_latency_ms")
        .and_then(simcore::Summary::non_empty)
        .map(|s| s.mean);
    Cell {
        crash_rate_per_sec: rate,
        miss_threshold,
        crashes_planned,
        completed: done,
        failed: sim.failed(),
        goodput_rps: goodput,
        ttft_p99_ms: report.latency.ttft_ms().non_empty().map(|s| s.p99),
        jct_p99_ms: report.latency.jct_ms().non_empty().map(|s| s.p99),
        detected: report.counters.get("cluster.detected_down"),
        repaired: report.counters.get("cluster.repaired"),
        requeued: report.counters.get("sim.requeued"),
        requeue_cache_hit_tokens: report.counters.get("sim.requeue_cache_hit_tokens"),
        repair_latency_ms_mean: repair_mean,
    }
}

fn main() {
    let mut out = Output::default();

    header("Fault sweep: crash rate x detection threshold (4 colocated TEs)");
    let baseline = run_cell(0.0, 3);
    out.baseline_goodput_rps = baseline.goodput_rps;
    out.baseline_ttft_p99_ms = baseline.ttft_p99_ms;
    out.baseline_jct_p99_ms = baseline.jct_p99_ms;
    println!(
        "baseline (no faults): goodput {:.3} req/s, TTFT p99 {} ms, JCT p99 {} ms",
        baseline.goodput_rps,
        opt(baseline.ttft_p99_ms),
        opt(baseline.jct_p99_ms)
    );

    println!(
        "\n{:>10} {:>6} {:>8} {:>10} {:>8} {:>11} {:>10} {:>9} {:>9}",
        "rate/s",
        "miss",
        "crashes",
        "goodput",
        "done",
        "TTFTp99 ms",
        "JCTp99 ms",
        "requeued",
        "repair ms"
    );
    for &rate in &[0.0, 0.005, 0.01, 0.02, 0.05] {
        for &miss in &[1u32, 3, 5] {
            let cell = run_cell(rate, miss);
            println!(
                "{:>10.3} {:>6} {:>8} {:>10.3} {:>8} {:>11} {:>10} {:>9} {:>9}",
                cell.crash_rate_per_sec,
                cell.miss_threshold,
                cell.crashes_planned,
                cell.goodput_rps,
                cell.completed,
                opt(cell.ttft_p99_ms),
                opt(cell.jct_p99_ms),
                cell.requeued,
                opt(cell.repair_latency_ms_mean),
            );
            out.cells.push(cell);
        }
    }

    // Graceful-degradation check: goodput never collapses to zero while
    // spare capacity exists, and stays within a sane band of the baseline.
    let min_goodput = out
        .cells
        .iter()
        .map(|c| c.goodput_rps)
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_goodput > 0.25 * out.baseline_goodput_rps,
        "goodput cliff: {min_goodput:.3} vs baseline {:.3}",
        out.baseline_goodput_rps
    );
    println!(
        "\nexpected: goodput shrinks smoothly with crash rate (worst cell {:.0}% of\nbaseline); higher miss thresholds detect later and stretch the JCT tail.",
        100.0 * min_goodput / out.baseline_goodput_rps
    );

    write_json("fault_sweep", &out);
}
