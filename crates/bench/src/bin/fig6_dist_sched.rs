//! Figure 6: distributed scheduling policy study — PD-aware vs round-robin.
//!
//! Paper setup: 34B model TP=4; an internal trace sampled from a code
//! generation service; cluster of four servers hosting two PD-colocated
//! TEs and one PD-disaggregated pair (1P1D); report JCT and TPOT across
//! RPS levels.
//!
//! Paper shape to reproduce: (1) at mid RPS the PD-aware policy beats RR;
//! (2) at low RPS they tie (no interference to avoid); (3) at very high
//! RPS PD-aware degrades — the disaggregated pair, with the same
//! resources, overloads first — but not catastrophically vs RR.
//!
//! Axis note: RPS values are scaled to this simulator's engine throughput
//! (see fig4's note); the paper's "e.g. 10 reqs/s" mid-point corresponds
//! to the middle of our sweep.
//!
//! Run: `cargo run --release -p deepserve-bench --bin fig6_dist_sched`

use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_bench::{header, threads_arg, write_json};
use serde::Serialize;
use simcore::SimRng;
use workloads::CodeGenTrace;

const REQUESTS: usize = 240;

#[derive(Serialize)]
struct Point {
    policy: &'static str,
    rps: f64,
    jct_mean_ms: f64,
    jct_p99_ms: f64,
    tpot_mean_ms: f64,
    tpot_p99_ms: f64,
    throughput_tok_s: f64,
}

fn run(policy: Policy, rps: f64, seed: u64, threads: usize) -> Point {
    let mut rng = SimRng::seed_from_u64(seed);
    let trace = CodeGenTrace::paper(rps).generate(&mut rng, REQUESTS);
    let cfg = ClusterConfig {
        policy,
        ..ClusterConfig::standard_34b()
    };
    let roles = [
        TeRole::Colocated,
        TeRole::Colocated,
        TeRole::Prefill,
        TeRole::Decode,
    ];
    let mut sim = ClusterSim::new(cfg, &roles);
    // Execution-strategy knob only: the figure's numbers are bit-identical
    // at any thread count.
    sim.set_threads(threads);
    sim.inject(materialize_trace(&trace, 64_000));
    let mut report = sim.run_to_completion();
    // Fault-free run: empty stats mean a broken setup — fail loudly
    // rather than writing fabricated zeros into the artifact.
    let jct = report.latency.jct_ms().non_empty().expect("no completions");
    let tpot = report
        .latency
        .tpot_ms()
        .non_empty()
        .expect("no completions");
    Point {
        policy: match policy {
            Policy::RoundRobin => "RR",
            Policy::PdAware => "PD-aware",
            Policy::Combined => "Combined",
            _ => "other",
        },
        rps,
        jct_mean_ms: jct.mean,
        jct_p99_ms: jct.p99,
        tpot_mean_ms: tpot.mean,
        tpot_p99_ms: tpot.p99,
        throughput_tok_s: report.throughput(),
    }
}

fn main() {
    header("Figure 6: distributed scheduling (code-gen trace, 2C + 1P1D, 34B TP=4)");
    let threads = threads_arg();
    if threads > 1 {
        println!("[parallel stepping: {threads} worker threads]");
    }
    let rps_levels = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
    let policies = [Policy::RoundRobin, Policy::PdAware, Policy::Combined];
    let mut points = Vec::new();
    println!(
        "\n{:>10} {:>6} {:>12} {:>12} {:>11} {:>11} {:>12}",
        "policy", "rps", "JCT mean", "JCT p99", "TPOT mean", "TPOT p99", "thr tok/s"
    );
    for &rps in &rps_levels {
        for &policy in &policies {
            // Same seed per RPS: all policies see the same trace.
            let p = run(policy, rps, 7_000 + (rps * 10.0) as u64, threads);
            println!(
                "{:>10} {:>6.1} {:>12.0} {:>12.0} {:>11.1} {:>11.1} {:>12.1}",
                p.policy,
                p.rps,
                p.jct_mean_ms,
                p.jct_p99_ms,
                p.tpot_mean_ms,
                p.tpot_p99_ms,
                p.throughput_tok_s
            );
            points.push(p);
        }
        println!();
    }

    header("Shape check (PD-aware JCT relative to RR)");
    for &rps in &rps_levels {
        let rr = points
            .iter()
            .find(|p| p.policy == "RR" && p.rps == rps)
            .unwrap();
        let pd = points
            .iter()
            .find(|p| p.policy == "PD-aware" && p.rps == rps)
            .unwrap();
        let delta = (pd.jct_mean_ms / rr.jct_mean_ms - 1.0) * 100.0;
        println!("rps {rps:>5.1}: PD-aware JCT {delta:+.1}% vs RR");
    }
    println!(
        "\npaper shape: ~0% at low RPS, negative (better) at mid RPS,\n\
         mildly positive (graceful degradation) at the highest RPS."
    );
    write_json("fig6_dist_sched", &points);
}
