//! Fleet sweep: serverless multi-model cold-start economics (§6.2).
//!
//! A skewed 100+-model trace (Zipf popularity, chat-shaped bodies) hits a
//! shared cluster under three cold-start strategies:
//!
//! * `prewarm_miss` — the single-model baseline's miss path: every cold
//!   model streams its whole checkpoint from the remote store;
//! * `hierarchy` — the four-tier storage hierarchy (HBM ← DRAM ← local
//!   SSD ← remote) faults in only the bytes missing per tier;
//! * `hierarchy_multicast` — hierarchy plus λScale-style binary-tree
//!   multicast when scaling hot models out to more TEs.
//!
//! For each mode the sweep reports the cold-start latency distribution,
//! queued-request cold-wait, per-tier SLA attainment, tier load counts and
//! eviction/replica churn — and re-runs the identical configuration on a
//! 4-thread worker pool to check the report is byte-identical (the
//! determinism contract extends to the fleet layer).
//!
//! Run: `cargo run --release -p deepserve-bench --bin fleet_sweep`
//! CI:  `cargo run --release -p deepserve-bench --bin fleet_sweep -- --smoke`
//!
//! Exits non-zero unless every mode's thread-1 and thread-4 reports match
//! AND both hierarchy modes beat the pre-warm-miss baseline's mean cold
//! start. A full run snapshots results to `BENCH_fleet.json` at the repo
//! root.

use deepserve::{
    fleet_catalog, materialize_fleet_trace, ClusterConfig, ClusterSim, ColdStartMode, FleetConfig,
    Policy, TeRole,
};
use deepserve_bench::{header, write_json};
use npu::specs::ClusterSpec;
use serde::Serialize;
use simcore::SimRng;
use workloads::FleetTrace;

const TIERS: [&str; 4] = ["hbm", "dram", "ssd", "remote"];

/// One (mode) measurement over the shared trace.
#[derive(Serialize)]
struct Row {
    mode: &'static str,
    models: usize,
    requests: usize,
    completed: u64,
    failed: u64,
    cold_starts: u64,
    /// Cold-start latency (checkpoint fetch + 5-step scaling), ms.
    cold_ms_mean: f64,
    cold_ms_p50: f64,
    cold_ms_p99: f64,
    cold_ms_max: f64,
    /// Arrival-to-dispatch wait of requests parked behind a load, ms.
    wait_ms_mean: f64,
    wait_ms_p99: f64,
    /// Per-tier loads: how many cold starts sourced from each tier.
    loads: Vec<(String, u64)>,
    /// Per-tier cold-start SLA attainment (ok / (ok + miss)); `None` for
    /// tiers that never sourced a load.
    sla: Vec<(String, Option<f64>)>,
    /// Overall cold SLA attainment across tiers.
    sla_overall: Option<f64>,
    evictions: u64,
    replicas_added: u64,
    makespan_s: f64,
    /// Thread-1 vs thread-4 reports byte-identical.
    reports_identical: bool,
}

struct ModeOut {
    row: Row,
    report_json: String,
}

fn run_mode(mode: ColdStartMode, models: usize, n_reqs: usize, threads: usize) -> ModeOut {
    let mut rng = SimRng::seed_from_u64(2026);
    let specs = FleetTrace::skewed(models, 6.0).generate(&mut rng, n_reqs);
    let cfg = ClusterConfig {
        cluster: ClusterSpec::gen2_cluster(4),
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let roles = vec![TeRole::Colocated; 8];
    let mut sim = ClusterSim::new(cfg, &roles);
    sim.set_threads(threads);
    sim.enable_fleet(
        fleet_catalog(models),
        FleetConfig {
            mode,
            ..FleetConfig::default()
        },
    );
    sim.stage_fleet_on_ssd();
    sim.inject(materialize_fleet_trace(&specs, 64_000));
    let mut report = sim.run_to_completion();
    let (done, sub) = sim.progress();
    assert_eq!(done + sim.failed(), sub, "fleet conservation");

    let cold = report
        .metrics
        .summary("fleet.cold_start_ms")
        .unwrap_or_default();
    let wait = report
        .metrics
        .summary("fleet.cold_wait_ms")
        .unwrap_or_default();
    let loads: Vec<(String, u64)> = TIERS
        .iter()
        .map(|t| {
            let key: &'static str = match *t {
                "hbm" => "fleet.loads_hbm",
                "dram" => "fleet.loads_dram",
                "ssd" => "fleet.loads_ssd",
                _ => "fleet.loads_remote",
            };
            (t.to_string(), report.counters.get(key))
        })
        .collect();
    let tier_sla = |t: &str| -> (u64, u64) {
        let (ok_key, miss_key): (&'static str, &'static str) = match t {
            "hbm" => ("fleet.cold_sla_ok.hbm", "fleet.cold_sla_miss.hbm"),
            "dram" => ("fleet.cold_sla_ok.dram", "fleet.cold_sla_miss.dram"),
            "ssd" => ("fleet.cold_sla_ok.ssd", "fleet.cold_sla_miss.ssd"),
            _ => ("fleet.cold_sla_ok.remote", "fleet.cold_sla_miss.remote"),
        };
        (report.counters.get(ok_key), report.counters.get(miss_key))
    };
    let sla: Vec<(String, Option<f64>)> = TIERS
        .iter()
        .map(|t| {
            let (ok, miss) = tier_sla(t);
            let att = if ok + miss == 0 {
                None
            } else {
                Some(ok as f64 / (ok + miss) as f64)
            };
            (t.to_string(), att)
        })
        .collect();
    let (ok_total, miss_total) = TIERS.iter().fold((0u64, 0u64), |(o, m), t| {
        let (ok, miss) = tier_sla(t);
        (o + ok, m + miss)
    });
    let sla_overall = if ok_total + miss_total == 0 {
        None
    } else {
        Some(ok_total as f64 / (ok_total + miss_total) as f64)
    };

    let row = Row {
        mode: mode.as_str(),
        models,
        requests: n_reqs,
        completed: done,
        failed: sim.failed(),
        cold_starts: report.counters.get("fleet.cold_starts"),
        cold_ms_mean: cold.mean,
        cold_ms_p50: cold.p50,
        cold_ms_p99: cold.p99,
        cold_ms_max: cold.max,
        wait_ms_mean: wait.mean,
        wait_ms_p99: wait.p99,
        loads,
        sla,
        sla_overall,
        evictions: report.counters.get("fleet.evictions"),
        replicas_added: report.counters.get("fleet.replicas_added"),
        makespan_s: report.makespan.as_secs_f64(),
        reports_identical: false,
    };
    ModeOut {
        row,
        report_json: report.to_json().to_json(),
    }
}

#[derive(Serialize)]
struct Sweep {
    models: usize,
    requests: usize,
    rows: Vec<Row>,
}

fn print_row(r: &Row) {
    let sla = r
        .sla_overall
        .map_or("   -".to_string(), |a| format!("{:.0}%", a * 100.0));
    println!(
        "{:>20} {:>6} {:>10.0} {:>10.0} {:>10.0} {:>9.0} {:>5} {:>5} {:>6} {:>8.1}",
        r.mode,
        r.cold_starts,
        r.cold_ms_mean,
        r.cold_ms_p99,
        r.wait_ms_mean,
        r.wait_ms_p99,
        sla,
        r.evictions,
        r.replicas_added,
        r.makespan_s
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (models, n_reqs) = if smoke { (24, 80) } else { (120, 600) };
    header(if smoke {
        "fleet_sweep --smoke: serverless cold-start ablation sanity check"
    } else {
        "fleet_sweep: cold-start ablation on a skewed multi-model trace (gen2 x4, 8 TEs)"
    });
    println!("[{models} models, {n_reqs} requests, Zipf(1.0) popularity]");
    println!(
        "{:>20} {:>6} {:>10} {:>10} {:>10} {:>9} {:>5} {:>5} {:>6} {:>8}",
        "mode",
        "colds",
        "cold mean",
        "cold p99",
        "wait mean",
        "wait p99",
        "SLA",
        "evict",
        "forks",
        "sim s"
    );

    let mut rows = Vec::new();
    let mut all_identical = true;
    for mode in [
        ColdStartMode::PrewarmMiss,
        ColdStartMode::Hierarchy,
        ColdStartMode::HierarchyMulticast,
    ] {
        let seq = run_mode(mode, models, n_reqs, 1);
        let par = run_mode(mode, models, n_reqs, 4);
        let mut row = seq.row;
        row.reports_identical = seq.report_json == par.report_json;
        all_identical &= row.reports_identical;
        print_row(&row);
        rows.push(row);
    }

    let prewarm_mean = rows[0].cold_ms_mean;
    let hierarchy_beats = rows[1].cold_ms_mean < prewarm_mean;
    let multicast_beats = rows[2].cold_ms_mean < prewarm_mean;
    println!(
        "\nhierarchy {:.0} ms vs pre-warm-miss {:.0} ms ({:.1}x); multicast {:.0} ms ({:.1}x)",
        rows[1].cold_ms_mean,
        prewarm_mean,
        prewarm_mean / rows[1].cold_ms_mean,
        rows[2].cold_ms_mean,
        prewarm_mean / rows[2].cold_ms_mean,
    );

    let sweep = Sweep {
        models,
        requests: n_reqs,
        rows,
    };
    write_json("fleet_sweep", &sweep);

    if !all_identical {
        eprintln!("FAIL: a fleet run diverged between 1 and 4 worker threads");
        std::process::exit(1);
    }
    if !(hierarchy_beats && multicast_beats) {
        eprintln!("FAIL: storage-hierarchy cold starts must beat the pre-warm-miss baseline");
        std::process::exit(1);
    }
    if smoke {
        println!("\nsmoke OK: reports identical at 1 vs 4 threads; hierarchy beats pre-warm miss");
        return;
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_fleet.json");
    let json = serde_json::to_string_pretty(&sweep).expect("serializable sweep");
    std::fs::write(&root, json).expect("write BENCH_fleet.json");
    println!("[snapshot written to {}]", root.display());
}
