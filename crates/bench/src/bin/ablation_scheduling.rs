//! Ablation: scheduling-policy ladder on locality-rich traffic.
//!
//! Compares every JE policy (round-robin, load-only, locality-only,
//! PD-aware, combined) on the shared-prefix multi-turn chat workload —
//! the MemServe/Preble-style study behind §5.2/§5.4's design choices.
//!
//! Run: `cargo run --release -p deepserve-bench --bin ablation_scheduling`

use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_bench::{header, write_json};
use serde::Serialize;
use simcore::SimRng;
use workloads::SharedPrefixChat;

#[derive(Serialize)]
struct Row {
    policy: &'static str,
    ttft_mean_ms: f64,
    ttft_p99_ms: f64,
    jct_mean_ms: f64,
    throughput_tok_s: f64,
}

fn main() {
    header("Ablation: scheduling policies on shared-prefix chat (3 colocated TEs)");
    let policies = [
        (Policy::RoundRobin, "round-robin"),
        (Policy::LoadAware, "load-only"),
        (Policy::LocalityAware, "locality-only"),
        (Policy::PdAware, "pd-aware"),
        (Policy::Combined, "combined"),
    ];
    let mut rows = Vec::new();
    println!(
        "\n{:>14} {:>12} {:>12} {:>12} {:>12}",
        "policy", "TTFT mean", "TTFT p99", "JCT mean", "thr tok/s"
    );
    for (policy, name) in policies {
        let mut rng = SimRng::seed_from_u64(77);
        let trace = SharedPrefixChat::standard(1.5).generate(&mut rng, 300);
        let cfg = ClusterConfig {
            policy,
            ..ClusterConfig::standard_34b()
        };
        let mut sim = ClusterSim::new(cfg, &[TeRole::Colocated; 3]);
        sim.inject(materialize_trace(&trace, 64_000));
        let mut report = sim.run_to_completion();
        // Fault-free run: empty stats mean a broken setup — fail loudly
        // rather than writing fabricated zeros into the artifact.
        let ttft = report
            .latency
            .ttft_ms()
            .non_empty()
            .expect("no completions");
        let jct = report.latency.jct_ms().non_empty().expect("no completions");
        let r = Row {
            policy: name,
            ttft_mean_ms: ttft.mean,
            ttft_p99_ms: ttft.p99,
            jct_mean_ms: jct.mean,
            throughput_tok_s: report.throughput(),
        };
        println!(
            "{:>14} {:>12.0} {:>12.0} {:>12.0} {:>12.1}",
            r.policy, r.ttft_mean_ms, r.ttft_p99_ms, r.jct_mean_ms, r.throughput_tok_s
        );
        rows.push(r);
    }
    println!(
        "\nexpected: locality-aware routing (locality-only / combined) cuts TTFT\n\
         vs load-only and round-robin by reusing per-conversation KV."
    );
    write_json("ablation_scheduling", &rows);
}
