//! Figure 3: FlowServe offline serving performance across engine versions.
//!
//! Paper setup: a 34B model with TP=4; prefill sequence lengths of 2K and
//! 4K; 256 decoding iterations; report average TPOT and decoding
//! throughput for engine versions v1 -> v2 -> v3.
//!
//! Paper shape to reproduce: v1 -> v2 gives "more than 2x improvements when
//! the TPOT SLA was set to 50ms" (async scheduling + IPC optimization);
//! v2 -> v3 gives "roughly 20% improvement" (data structures, sampling).
//!
//! Run: `cargo run --release -p deepserve-bench --bin fig3_offline_perf`

use deepserve_bench::{cost_34b_tp4, header, write_json};
use flowserve::{
    synthetic_tokens, Engine, EngineConfig, EngineEvent, EngineVersion, NewRequest, RequestId,
};
use serde::Serialize;
use simcore::SimTime;

const DECODE_ITERS: u32 = 256;
const SLA_MS: f64 = 50.0;

#[derive(Serialize)]
struct Point {
    version: &'static str,
    prefill: usize,
    batch: usize,
    tpot_ms: f64,
    decode_throughput_tok_s: f64,
}

/// Runs one offline measurement: `batch` identical requests, all resident,
/// decoding `DECODE_ITERS` tokens each; returns (avg TPOT ms, decode tok/s).
fn run_offline(version: EngineVersion, prefill: usize, batch: usize) -> (f64, f64) {
    let cfg = EngineConfig {
        version,
        max_batch: 512,
        // Offline measurement protocol: prefill the whole batch up front
        // (one giant prefill pass), then measure pure decode — matching
        // the paper's "256 decoding iterations" methodology.
        prefill_chunk_tokens: prefill * batch,
        ..EngineConfig::colocated()
    };
    let mut engine = Engine::new(cfg, cost_34b_tp4());
    for i in 0..batch {
        engine.submit(
            SimTime::ZERO,
            NewRequest {
                id: RequestId(i as u64),
                prompt: synthetic_tokens(i as u64 + 1, prefill, 64_000).into(),
                target_output: DECODE_ITERS + 1,
                arrival: SimTime::ZERO,
                cache_id: None,
            },
        );
    }
    let mut now = SimTime::ZERO;
    let mut tpots = Vec::new();
    let mut first_token_at = SimTime::ZERO;
    let mut last_finish = SimTime::ZERO;
    while let Some(wake) = engine.next_wake(now) {
        now = wake;
        for ev in engine.advance(now) {
            match ev {
                EngineEvent::FirstToken { at, .. } => {
                    first_token_at = first_token_at.max_of(at);
                }
                EngineEvent::Finished { latency, at, .. } => {
                    tpots.push(latency.tpot.as_millis_f64());
                    last_finish = at;
                }
                _ => {}
            }
        }
    }
    assert_eq!(tpots.len(), batch, "all requests must finish");
    let tpot = tpots.iter().sum::<f64>() / tpots.len() as f64;
    // Decode throughput over the decode phase (after the last prefill).
    let decode_span = last_finish.since(first_token_at).as_secs_f64();
    let tokens = batch as f64 * DECODE_ITERS as f64;
    (tpot, tokens / decode_span.max(1e-9))
}

fn main() {
    header("Figure 3: FlowServe offline decode perf (34B, TP=4, 256 decode iters)");
    let versions = [
        EngineVersion::v1(),
        EngineVersion::v2(),
        EngineVersion::v3(),
    ];
    let batches = [
        1usize, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64, 80, 96, 112, 128, 160, 192, 224, 256,
    ];
    let mut points = Vec::new();
    // (version, prefill) -> series of (tpot, throughput), batch-ordered.
    let mut series: std::collections::HashMap<(&str, usize), Vec<(f64, f64)>> =
        std::collections::HashMap::new();

    for prefill in [2048usize, 4096] {
        println!("\n--- prefill = {prefill} tokens ---");
        println!(
            "{:>6} {:>8} {:>12} {:>16}",
            "ver", "batch", "TPOT(ms)", "decode tok/s"
        );
        for v in versions {
            for &batch in &batches {
                let (tpot, thr) = run_offline(v, prefill, batch);
                println!("{:>6} {:>8} {:>12.2} {:>16.1}", v.name, batch, tpot, thr);
                series
                    .entry((v.name, prefill))
                    .or_default()
                    .push((tpot, thr));
                points.push(Point {
                    version: v.name,
                    prefill,
                    batch,
                    tpot_ms: tpot,
                    decode_throughput_tok_s: thr,
                });
            }
        }
    }

    // Linear interpolation of throughput at the exact SLA crossing.
    let thr_at_sla = |s: &[(f64, f64)]| -> f64 {
        let mut best: f64 = 0.0;
        for w in s.windows(2) {
            let (t0, y0) = w[0];
            let (t1, y1) = w[1];
            if t0 <= SLA_MS && t1 > SLA_MS {
                let f = (SLA_MS - t0) / (t1 - t0);
                best = best.max(y0 + f * (y1 - y0));
            } else if t1 <= SLA_MS {
                best = best.max(y1);
            } else if t0 <= SLA_MS {
                best = best.max(y0);
            }
        }
        best
    };

    header("Throughput at the 50ms TPOT SLA (the paper's comparison point)");
    for prefill in [2048usize, 4096] {
        let v1 = thr_at_sla(&series[&("v1", prefill)]);
        let v2 = thr_at_sla(&series[&("v2", prefill)]);
        let v3 = thr_at_sla(&series[&("v3", prefill)]);
        println!(
            "prefill {prefill}: v1 {v1:.0} tok/s | v2 {v2:.0} tok/s ({:.2}x over v1) | v3 {v3:.0} tok/s (+{:.0}% over v2)",
            v2 / v1.max(1e-9),
            (v3 / v2.max(1e-9) - 1.0) * 100.0
        );
    }
    println!("\npaper shape: v2 >= ~2x v1 at the 50ms SLA; v3 ~= +20% over v2.");
    write_json("fig3_offline_perf", &points);
}
