//! Ablation: engine design knobs.
//!
//! Three sweeps over a single colocated engine serving the chat trace:
//!
//! 1. **chunked-prefill budget** — the TTFT/TPOT trade-off behind §4.2's
//!    chunk distribution design;
//! 2. **populate cost model on/off** — §4.2's "fitted cost model to decide
//!    if reusing the cache is beneficial";
//! 3. **KV-transfer by-layer overlap vs by-req** — §4.5's "by-req or
//!    by-layer" choice, measured on a 1P1D pair.
//!
//! Run: `cargo run --release -p deepserve-bench --bin ablation_engine_knobs`

use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_bench::{header, write_json};
use flowserve::EngineConfig;
use serde::Serialize;
use simcore::SimRng;
use workloads::ChatTrace;

#[derive(Serialize, Default)]
struct Output {
    chunk_sweep: Vec<(usize, f64, f64)>, // (chunk, ttft_mean, tpot_mean)
    kv_overlap: Vec<(f64, f64, f64)>,    // (overlap, ttft_mean, jct_mean)
}

fn run_chat(cfg: ClusterConfig, roles: &[TeRole], seed: u64, rps: f64) -> (f64, f64, f64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let trace = ChatTrace::paper(rps).generate(&mut rng, 200);
    let mut sim = ClusterSim::new(cfg, roles);
    sim.inject(materialize_trace(&trace, 64_000));
    let mut report = sim.run_to_completion();
    // Fault-free run: an empty latency distribution here is a broken
    // setup, not a zero-latency miracle — fail loudly instead of writing
    // fabricated zeros into the artifact.
    let ttft = report
        .latency
        .ttft_ms()
        .non_empty()
        .expect("no completions");
    let tpot = report
        .latency
        .tpot_ms()
        .non_empty()
        .expect("no completions");
    let jct = report.latency.jct_ms().non_empty().expect("no completions");
    (ttft.mean, tpot.mean, jct.mean)
}

fn main() {
    let mut out = Output::default();

    header("Ablation 1: chunked-prefill budget (1 colocated TE, chat at 3 rps)");
    println!("{:>8} {:>12} {:>12}", "chunk", "TTFT mean", "TPOT mean");
    for chunk in [128usize, 256, 512, 1024, 2048, 4096] {
        let cfg = ClusterConfig {
            policy: Policy::RoundRobin,
            engine: EngineConfig {
                prefill_chunk_tokens: chunk,
                ..EngineConfig::colocated()
            },
            ..ClusterConfig::standard_34b()
        };
        let (ttft, tpot, _) = run_chat(cfg, &[TeRole::Colocated], 31, 3.0);
        println!("{chunk:>8} {ttft:>12.0} {tpot:>12.1}");
        out.chunk_sweep.push((chunk, ttft, tpot));
    }
    println!("expected: bigger chunks cut TTFT but inflate TPOT (decode rides along\nbehind heavier mixed iterations).");

    header("Ablation 2: KV-transfer by-layer overlap (1P1D, chat at 3 rps)");
    println!("{:>9} {:>12} {:>12}", "overlap", "TTFT mean", "JCT mean");
    for overlap in [0.0, 0.4, 0.8, 0.95] {
        let cfg = ClusterConfig {
            policy: Policy::Combined,
            kv_transfer_overlap: overlap,
            ..ClusterConfig::standard_34b()
        };
        let (ttft, _, jct) = run_chat(cfg, &[TeRole::Prefill, TeRole::Decode], 32, 3.0);
        println!("{overlap:>9.2} {ttft:>12.0} {jct:>12.0}");
        out.kv_overlap.push((overlap, ttft, jct));
    }
    println!("expected: by-layer streaming (high overlap) hides the KV handoff,\nshrinking JCT vs pure by-req transfer (overlap 0).");

    write_json("ablation_engine_knobs", &out);
}
