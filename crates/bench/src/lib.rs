//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every `fig*` binary prints a human-readable table mirroring the paper's
//! figure and writes the raw series to `target/figures/<id>.json` so
//! EXPERIMENTS.md numbers are machine-checkable.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Directory figure data lands in.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Writes a figure's data as pretty JSON.
pub fn write_json<T: Serialize>(id: &str, data: &T) {
    let path = figures_dir().join(format!("{id}.json"));
    let json = serde_json::to_string_pretty(data).expect("serializable figure data");
    fs::write(&path, json).expect("write figure JSON");
    println!("\n[data written to {}]", path.display());
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Parses a `--trace [path]` CLI flag. Bare `--trace` defaults to
/// `target/figures/<id>.trace.json`; `None` means tracing was not
/// requested.
pub fn trace_out(id: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let pos = args.iter().position(|a| a == "--trace")?;
    Some(match args.get(pos + 1) {
        Some(p) if !p.starts_with('-') => PathBuf::from(p),
        _ => figures_dir().join(format!("{id}.trace.json")),
    })
}

/// Writes an already-rendered trace JSON value compactly (traces are large;
/// pretty-printing them doubles the file for no benefit).
pub fn write_trace(path: &std::path::Path, value: &serde::value::Value) {
    fs::write(path, value.to_json()).expect("write trace JSON");
    println!("[trace written to {}]", path.display());
}

/// Parses an explicit `--threads N` CLI flag (`None` when absent or
/// malformed). Results are bit-identical at any thread count, so the flag
/// only trades wall-clock for cores.
pub fn threads_flag() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let pos = args.iter().position(|a| a == "--threads")?;
    match args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) => Some(n.max(1)),
        None => {
            eprintln!("--threads requires a positive integer; using the default");
            None
        }
    }
}

/// Worker-thread count for a bench binary: the `--threads N` flag, else
/// the `DEEPSERVE_THREADS` environment default (see
/// [`deepserve::default_threads`]), else 1.
pub fn threads_arg() -> usize {
    threads_flag().unwrap_or_else(deepserve::default_threads)
}

/// Parses a `--<name> N` CLI flag into a number (`None` when absent or
/// malformed).
pub fn numeric_flag(name: &str) -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    let flag = format!("--{name}");
    let pos = args.iter().position(|a| *a == flag)?;
    match args.get(pos + 1).and_then(|v| v.parse::<f64>().ok()) {
        Some(n) => Some(n),
        None => {
            eprintln!("{flag} requires a number; using the default");
            None
        }
    }
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`); `None` off Linux. The honest memory metric for a
/// streaming-vs-materialized comparison: it captures the high-water mark,
/// not the (already freed) instantaneous value.
pub fn peak_rss_kb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Resets the kernel's peak-RSS counter (Linux `clear_refs`), so each
/// benchmark run reports its own high-water mark instead of the process
/// lifetime maximum. Best-effort: silently a no-op where unsupported, in
/// which case peaks are monotone across runs (still a valid upper bound).
pub fn reset_peak_rss() {
    let _ = fs::write("/proc/self/clear_refs", "5");
}

/// Builds the paper's standard 34B TP=4 cost model on a Gen2 chip.
pub fn cost_34b_tp4() -> llm_model::ExecCostModel {
    let c = npu::specs::ClusterSpec::gen2_cluster(1);
    llm_model::ExecCostModel::new(
        c.server.chip.clone(),
        c.hccs,
        llm_model::ModelSpec::internal_34b(),
        llm_model::Parallelism::tp(4),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn figures_dir_is_creatable() {
        let d = super::figures_dir();
        assert!(d.exists());
    }
}
