//! Parallelism strategies and weight/KV partitioning.
//!
//! FlowServe runs every engine as one SPMD master plus `world_size`
//! executors, regardless of the TP/PP/DP/SP mix (§6.1: "regardless of
//! TP/PP/SP configurations, all TEs follow a master-SPMD architecture").
//! This module computes who holds which slice of the weights and the KV
//! cache.

use crate::spec::ModelSpec;
use serde::Serialize;

/// A TP/PP/DP/SP configuration for one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct Parallelism {
    /// Tensor-parallel degree (weights split within a layer).
    pub tp: u32,
    /// Pipeline-parallel degree (layers split across stages).
    pub pp: u32,
    /// Data-parallel degree (replicated engines behind one master;
    /// meaningful for MLA models, §4.2).
    pub dp: u32,
    /// Sequence-parallel degree (activation split; affects comm, not
    /// weight placement).
    pub sp: u32,
}

impl Parallelism {
    /// Pure tensor parallelism of degree `tp`.
    pub fn tp(tp: u32) -> Self {
        Parallelism {
            tp,
            pp: 1,
            dp: 1,
            sp: 1,
        }
    }

    /// Tensor x pipeline parallelism.
    pub fn tp_pp(tp: u32, pp: u32) -> Self {
        Parallelism {
            tp,
            pp,
            dp: 1,
            sp: 1,
        }
    }

    /// Total executor (NPU) count for one engine.
    pub fn world_size(&self) -> u32 {
        self.tp * self.pp * self.dp
    }

    /// Validates against a model: every degree positive, layers divisible
    /// across PP stages, KV heads divisible across TP ranks.
    pub fn validate(&self, model: &ModelSpec) -> Result<(), String> {
        if self.tp == 0 || self.pp == 0 || self.dp == 0 || self.sp == 0 {
            return Err("all parallelism degrees must be >= 1".to_string());
        }
        if !model.num_layers.is_multiple_of(self.pp) {
            return Err(format!(
                "{} layers not divisible by pp={}",
                model.num_layers, self.pp
            ));
        }
        if !model.num_kv_heads.is_multiple_of(self.tp) && model.num_kv_heads >= self.tp {
            return Err(format!(
                "{} kv heads not divisible by tp={}",
                model.num_kv_heads, self.tp
            ));
        }
        Ok(())
    }

    /// Weight bytes each executor holds (TP and PP split the checkpoint;
    /// DP replicates it).
    pub fn weight_bytes_per_npu(&self, model: &ModelSpec) -> u64 {
        model.weight_bytes() / (self.tp as u64 * self.pp as u64)
    }

    /// KV bytes per token each executor holds. TP splits KV across ranks
    /// (by head); PP splits by layer; MLA latents are replicated across TP
    /// ranks (they are head-shared), which is why DP is the preferred axis
    /// for MLA models.
    pub fn kv_bytes_per_token_per_npu(&self, model: &ModelSpec) -> u64 {
        use crate::spec::AttentionKind;
        let per_token = model.kv_bytes_per_token();
        let tp_split = match model.attention {
            AttentionKind::Mla { .. } => 1, // latent replicated across TP
            _ => self.tp as u64,
        };
        per_token / tp_split / self.pp as u64
    }

    /// Layers hosted by one PP stage.
    pub fn layers_per_stage(&self, model: &ModelSpec) -> u32 {
        model.num_layers / self.pp
    }
}

/// Standard production configuration for a model on a given chip: picks the
/// smallest TP that fits weights in HBM while leaving `kv_headroom`
/// (fraction) for KV cache.
pub fn min_tp_for(model: &ModelSpec, hbm_bytes: u64, kv_headroom: f64) -> u32 {
    assert!(
        (0.0..1.0).contains(&kv_headroom),
        "kv_headroom must be in [0, 1)"
    );
    let budget = (hbm_bytes as f64 * (1.0 - kv_headroom)) as u64;
    let mut tp = 1u32;
    while tp <= 64 {
        if model.weight_bytes() / tp as u64 <= budget {
            return tp;
        }
        tp *= 2;
    }
    tp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_size_multiplies_degrees() {
        let p = Parallelism {
            tp: 4,
            pp: 2,
            dp: 2,
            sp: 1,
        };
        assert_eq!(p.world_size(), 16);
        assert_eq!(Parallelism::tp(8).world_size(), 8);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let m = ModelSpec::internal_34b(); // 60 layers, 8 kv heads
        assert!(Parallelism::tp(4).validate(&m).is_ok());
        assert!(Parallelism::tp_pp(4, 4).validate(&m).is_ok()); // 60 / 4 = 15
        assert!(Parallelism::tp_pp(4, 7).validate(&m).is_err()); // 60 % 7 != 0
        assert!(Parallelism::tp(0).validate(&m).is_err());
        assert!(Parallelism::tp(3).validate(&m).is_err()); // 8 % 3 != 0
    }

    #[test]
    fn weight_partition_divides_evenly() {
        let m = ModelSpec::internal_34b();
        let p = Parallelism::tp(4);
        assert_eq!(p.weight_bytes_per_npu(&m), m.weight_bytes() / 4);
        let p2 = Parallelism::tp_pp(4, 2);
        assert_eq!(p2.weight_bytes_per_npu(&m), m.weight_bytes() / 8);
    }

    #[test]
    fn mla_kv_is_replicated_across_tp() {
        let mla = ModelSpec::deepseek_mla();
        let p = Parallelism::tp(4);
        assert_eq!(p.kv_bytes_per_token_per_npu(&mla), mla.kv_bytes_per_token());
        let gqa = ModelSpec::internal_34b();
        assert_eq!(
            p.kv_bytes_per_token_per_npu(&gqa),
            gqa.kv_bytes_per_token() / 4
        );
    }

    #[test]
    fn min_tp_fits_hbm() {
        let hbm = 64 * (1u64 << 30);
        // 8B FP16 = 16 GB fits in one gen2 card with half headroom.
        assert_eq!(min_tp_for(&ModelSpec::llama3_8b(), hbm, 0.5), 1);
        // 70B FP16 = 131.5 GB needs TP4 with 50% headroom on 64 GB cards.
        assert_eq!(min_tp_for(&ModelSpec::llama3_70b(), hbm, 0.5), 8);
        assert_eq!(min_tp_for(&ModelSpec::llama3_70b(), hbm, 0.2), 4);
        // 34B with the paper's TP=4 leaves most HBM for KV.
        assert!(min_tp_for(&ModelSpec::internal_34b(), hbm, 0.5) <= 4);
    }
}
