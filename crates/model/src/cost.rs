//! Roofline execution-cost model: how long one engine iteration takes.
//!
//! This is the leaf substitution for "run a forward pass on the NPUs"
//! (DESIGN.md). The model is the standard serving roofline:
//!
//! * **prefill** is compute-bound — linear FLOPs `2 * params * tokens` plus
//!   quadratic attention, divided over the TP group's peak at a calibrated
//!   MFU;
//! * **decode** is memory-bound — every iteration streams the weight
//!   partition plus the batch's KV cache through HBM;
//! * **TP communication** adds two ring all-reduces per layer of
//!   `tokens * hidden` activations.
//!
//! One iteration's time is `max(compute, memory) + comm`: compute and
//! memory overlap inside the cores, communication (mostly) does not. The
//! engine's scheduler composes these into continuous batching, chunked
//! prefill and pipeline parallelism; this module only prices a single
//! forward pass.

use crate::parallel::Parallelism;
use crate::spec::ModelSpec;
use npu::hccl;
use npu::specs::{ChipSpec, LinkSpec};
use serde::Serialize;
use simcore::SimDuration;

/// Fraction of peak FLOPs dense prefill actually achieves.
pub const PREFILL_MFU: f64 = 0.45;
/// Fraction of peak HBM bandwidth decode streaming achieves.
pub const DECODE_HBM_EFFICIENCY: f64 = 0.8;
/// Per-iteration fixed kernel-launch/framework floor on the device,
/// independent of batch content.
pub const ITERATION_FLOOR_US: u64 = 500;

/// Work contained in one engine iteration (one forward pass).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct BatchWork {
    /// New prompt tokens prefilling this step (post chunking).
    pub prefill_tokens: u64,
    /// KV context already present for those prefill tokens (prefix-cache
    /// hits or earlier chunks); attention cost covers it.
    pub prefill_context: u64,
    /// Decode sequences generating one token each.
    pub decode_seqs: u64,
    /// Total KV context across the decode sequences.
    pub decode_context_total: u64,
}

impl BatchWork {
    /// Pure-prefill work item.
    pub fn prefill(tokens: u64, cached_context: u64) -> Self {
        BatchWork {
            prefill_tokens: tokens,
            prefill_context: cached_context,
            ..Default::default()
        }
    }

    /// Pure-decode work item.
    pub fn decode(seqs: u64, context_total: u64) -> Self {
        BatchWork {
            decode_seqs: seqs,
            decode_context_total: context_total,
            ..Default::default()
        }
    }

    /// Whether this step does nothing.
    pub fn is_empty(&self) -> bool {
        self.prefill_tokens == 0 && self.decode_seqs == 0
    }

    /// Tokens entering the batch (prefill chunk + one per decode seq) —
    /// the activation row count for communication sizing.
    pub fn batch_tokens(&self) -> u64 {
        self.prefill_tokens + self.decode_seqs
    }
}

/// Where one iteration's time went.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StepBreakdown {
    /// Compute-bound component (seconds).
    pub compute_s: f64,
    /// Memory-bound component (seconds).
    pub memory_s: f64,
    /// TP/PP communication component (seconds).
    pub comm_s: f64,
    /// Fixed iteration floor (seconds).
    pub floor_s: f64,
}

impl StepBreakdown {
    /// Total iteration time: roofline max of compute/memory, plus comm and
    /// the fixed floor.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.compute_s.max(self.memory_s) + self.comm_s + self.floor_s)
    }
}

/// Prices forward passes for one (chip, link, model, parallelism) tuple.
#[derive(Debug, Clone)]
pub struct ExecCostModel {
    chip: ChipSpec,
    /// Link used for TP collectives (HCCS within a server).
    tp_link: LinkSpec,
    model: ModelSpec,
    par: Parallelism,
}

impl ExecCostModel {
    /// Creates a cost model.
    ///
    /// # Panics
    ///
    /// Panics if the parallelism is invalid for the model (see
    /// [`Parallelism::validate`]).
    pub fn new(chip: ChipSpec, tp_link: LinkSpec, model: ModelSpec, par: Parallelism) -> Self {
        if let Err(e) = par.validate(&model) {
            // detlint: allow(panic) — construction-time config validation, documented under # Panics; failing fast here beats simulating a physically impossible parallelism
            panic!("ExecCostModel: invalid parallelism for {}: {e}", model.name);
        }
        ExecCostModel {
            chip,
            tp_link,
            model,
            par,
        }
    }

    /// The model being priced.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The parallelism configuration.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The chip this model runs on.
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// Detailed cost of one iteration.
    pub fn step_breakdown(&self, w: &BatchWork) -> StepBreakdown {
        if w.is_empty() {
            return StepBreakdown::default();
        }
        let tp = self.par.tp as f64;

        // ---- compute ----
        let mut flops = 0.0;
        if w.prefill_tokens > 0 {
            flops += self.model.linear_flops_per_token() * w.prefill_tokens as f64;
            // Each prefill token attends to the cached context plus, on
            // average, half of its own chunk (causal attention).
            let avg_kv = w.prefill_context + w.prefill_tokens / 2;
            flops += self.model.attn_flops_per_token(avg_kv) * w.prefill_tokens as f64;
        }
        if w.decode_seqs > 0 {
            flops += self.model.linear_flops_per_token() * w.decode_seqs as f64;
            let avg_ctx = w.decode_context_total / w.decode_seqs.max(1);
            flops += self.model.attn_flops_per_token(avg_ctx) * w.decode_seqs as f64;
        }
        // All PP stages together hold `tp * pp` NPUs but a forward pass
        // visits stages serially, so the effective compute width is `tp`.
        let compute_s = flops / (tp * self.chip.flops() * PREFILL_MFU);

        // ---- memory ----
        // Per iteration each NPU streams its weight slice; summed across the
        // serial PP stages that is weights/tp. KV traffic: decode reads the
        // whole context per seq, prefill writes its new KV and reads cached
        // context once.
        let kv_per_tok = self.model.kv_bytes_per_token() as f64 / tp;
        let mut mem_bytes = self.model.weight_bytes() as f64 / tp;
        mem_bytes += w.decode_context_total as f64 * kv_per_tok;
        mem_bytes += (w.prefill_tokens + w.prefill_context) as f64 * kv_per_tok;
        let memory_s = mem_bytes / (self.chip.hbm_bw * DECODE_HBM_EFFICIENCY);

        // ---- communication ----
        let mut comm_s = 0.0;
        if self.par.tp > 1 {
            let bytes_per_layer =
                w.batch_tokens() * self.model.hidden as u64 * self.model.dtype_bytes as u64
                    / self.par.sp as u64;
            let per_layer =
                hccl::all_reduce_time(&self.tp_link, self.par.tp as usize, bytes_per_layer);
            comm_s += per_layer.as_secs_f64() * (2 * self.model.num_layers) as f64;
        }
        if self.par.pp > 1 {
            // Activation handoff between consecutive stages.
            let act_bytes =
                w.batch_tokens() * self.model.hidden as u64 * self.model.dtype_bytes as u64;
            let hop = hccl::p2p_time(&self.tp_link, act_bytes);
            comm_s += hop.as_secs_f64() * (self.par.pp - 1) as f64;
        }

        StepBreakdown {
            compute_s,
            memory_s,
            comm_s,
            floor_s: ITERATION_FLOOR_US as f64 / 1e6,
        }
    }

    /// Total time of one iteration.
    pub fn step_time(&self, w: &BatchWork) -> SimDuration {
        self.step_breakdown(w).total()
    }

    /// Convenience: full prefill of a `seq_len`-token prompt with
    /// `cached` tokens already in KV.
    pub fn prefill_time(&self, seq_len: u64, cached: u64) -> SimDuration {
        self.step_time(&BatchWork::prefill(seq_len.saturating_sub(cached), cached))
    }

    /// Convenience: one decode iteration for `batch` sequences at an
    /// average context of `avg_context` tokens.
    pub fn decode_iter_time(&self, batch: u64, avg_context: u64) -> SimDuration {
        self.step_time(&BatchWork::decode(batch, batch * avg_context))
    }

    /// NPU time for `iterations` consecutive pure-decode steps of a fixed
    /// `seqs`-sequence batch starting at `context_total` total context
    /// tokens (context grows by `seqs` each step).
    ///
    /// Deliberately *not* a closed-form integral: each step is priced and
    /// rounded to integer nanoseconds exactly like [`Self::step_time`], so
    /// macro-stepped runs stay bit-identical to single-stepped ones — a
    /// float summation could drift by an ulp and break replay.
    pub fn decode_run_time(&self, seqs: u64, context_total: u64, iterations: u64) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut ctx = context_total;
        for _ in 0..iterations {
            ctx += seqs;
            total += self.step_time(&BatchWork::decode(seqs, ctx));
        }
        total
    }

    /// Vectorized per-step pricing: appends the durations of `steps`
    /// consecutive pure-decode iterations of a fixed `seqs`-sequence
    /// batch into `out`, starting at `context_start` total context
    /// tokens (context grows by `seqs` before each step, exactly like
    /// [`Self::decode_run_time`]).
    ///
    /// The context-invariant terms of [`Self::step_breakdown`] — linear
    /// FLOPs, weight-streaming bytes, TP/PP communication (decode batch
    /// tokens equal `seqs`, independent of context) and the fixed floor
    /// — are hoisted out of the loop; only the attention FLOPs and KV
    /// traffic are recomputed per step. Every hoisted value comes from
    /// the *same* float expressions the scalar path evaluates (for the
    /// positive finite values here `0.0 + x == x` and
    /// `y + 0.0 * kv == y` exactly), and each step ends in the same
    /// `compute.max(memory) + comm + floor` rounding through
    /// [`SimDuration::from_secs_f64`], so the results are bit-identical
    /// to calling [`Self::step_time`] once per iteration. The engine's
    /// fast-forward path re-verifies this with a debug assertion on
    /// every absorbed iteration.
    pub fn decode_step_times_into(
        &self,
        seqs: u64,
        context_start: u64,
        steps: u64,
        out: &mut Vec<SimDuration>,
    ) {
        if seqs == 0 || steps == 0 {
            return;
        }
        let tp = self.par.tp as f64;
        let seqs_f = seqs as f64;
        // Hoisted invariants — expression-for-expression the ones in
        // `step_breakdown` for a pure-decode `BatchWork`.
        let linear_flops = self.model.linear_flops_per_token() * seqs_f;
        let compute_denom = tp * self.chip.flops() * PREFILL_MFU;
        let kv_per_tok = self.model.kv_bytes_per_token() as f64 / tp;
        let mem_base = self.model.weight_bytes() as f64 / tp;
        let mem_denom = self.chip.hbm_bw * DECODE_HBM_EFFICIENCY;
        let mut comm_s = 0.0;
        if self.par.tp > 1 {
            let bytes_per_layer = seqs * self.model.hidden as u64 * self.model.dtype_bytes as u64
                / self.par.sp as u64;
            let per_layer =
                hccl::all_reduce_time(&self.tp_link, self.par.tp as usize, bytes_per_layer);
            comm_s += per_layer.as_secs_f64() * (2 * self.model.num_layers) as f64;
        }
        if self.par.pp > 1 {
            let act_bytes = seqs * self.model.hidden as u64 * self.model.dtype_bytes as u64;
            let hop = hccl::p2p_time(&self.tp_link, act_bytes);
            comm_s += hop.as_secs_f64() * (self.par.pp - 1) as f64;
        }
        let floor_s = ITERATION_FLOOR_US as f64 / 1e6;

        out.reserve(steps as usize);
        let mut ctx = context_start;
        for _ in 0..steps {
            ctx += seqs;
            let avg_ctx = ctx / seqs;
            let flops = linear_flops + self.model.attn_flops_per_token(avg_ctx) * seqs_f;
            let compute_s = flops / compute_denom;
            let memory_s = (mem_base + ctx as f64 * kv_per_tok) / mem_denom;
            out.push(SimDuration::from_secs_f64(
                compute_s.max(memory_s) + comm_s + floor_s,
            ));
        }
    }

    /// How many KV-cache tokens fit on each NPU after weights and a
    /// `reserve` fraction of HBM for activations/workspace.
    pub fn kv_capacity_tokens(&self, reserve_frac: f64) -> u64 {
        let usable = self.chip.hbm_bytes as f64 * (1.0 - reserve_frac);
        let weights = self.par.weight_bytes_per_npu(&self.model) as f64;
        let kv_per_tok = self.par.kv_bytes_per_token_per_npu(&self.model) as f64;
        if usable <= weights || kv_per_tok <= 0.0 {
            return 0;
        }
        ((usable - weights) / kv_per_tok) as u64
    }

    /// Estimated recompute time for `tokens` of KV (used by the RTC
    /// populate cost model: reuse cache only if fetching beats this).
    pub fn recompute_time(&self, tokens: u64) -> SimDuration {
        self.step_time(&BatchWork::prefill(tokens, 0))
    }

    /// Hard lower bound on any non-empty iteration's duration: the fixed
    /// per-iteration floor ([`ITERATION_FLOOR_US`]). Compute, memory and
    /// comm terms only add to it. Fault slowdowns multiply wall time and
    /// are >= 1, so this bound survives them too.
    pub fn min_step_time(&self) -> SimDuration {
        SimDuration::from_micros(ITERATION_FLOOR_US)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu::specs::ClusterSpec;

    fn model_34b_tp4() -> ExecCostModel {
        let cluster = ClusterSpec::gen2_cluster(1);
        ExecCostModel::new(
            cluster.server.chip.clone(),
            cluster.hccs,
            ModelSpec::internal_34b(),
            Parallelism::tp(4),
        )
    }

    #[test]
    fn empty_step_is_free() {
        let m = model_34b_tp4();
        assert_eq!(m.step_time(&BatchWork::default()), SimDuration::ZERO);
    }

    #[test]
    fn prefill_is_compute_bound_decode_is_memory_bound() {
        let m = model_34b_tp4();
        let p = m.step_breakdown(&BatchWork::prefill(2048, 0));
        assert!(
            p.compute_s > p.memory_s,
            "2K prefill must be compute-bound: {p:?}"
        );
        let d = m.step_breakdown(&BatchWork::decode(8, 8 * 2048));
        assert!(
            d.memory_s > d.compute_s,
            "small-batch decode must be memory-bound: {d:?}"
        );
    }

    #[test]
    fn prefill_2k_is_hundreds_of_ms() {
        // Sanity-calibration: 34B TP=4 prefill of 2K tokens lands in the
        // 0.1-1.0 s range the paper's TTFT numbers imply.
        let m = model_34b_tp4();
        let t = m.prefill_time(2048, 0).as_secs_f64();
        assert!((0.1..1.0).contains(&t), "prefill(2048) = {t}s");
    }

    #[test]
    fn decode_tpot_is_tens_of_ms() {
        // Figure 3 operates around a 50 ms TPOT SLA; a mid-size batch must
        // land near there.
        let m = model_34b_tp4();
        let t = m.decode_iter_time(32, 2048).as_millis_f64();
        assert!((5.0..60.0).contains(&t), "decode TPOT = {t}ms");
    }

    #[test]
    fn batching_amortizes_decode() {
        let m = model_34b_tp4();
        let t1 = m.decode_iter_time(1, 2048).as_secs_f64();
        let t64 = m.decode_iter_time(64, 2048).as_secs_f64();
        // 64x the work in far less than 64x the time.
        assert!(t64 < 8.0 * t1, "t1={t1} t64={t64}");
    }

    #[test]
    fn decode_run_time_matches_per_step_sum() {
        // The multi-iteration helper must reproduce the per-step
        // integer-nanosecond rounding exactly — this is the arithmetic the
        // fast-forward path relies on for bit-identical replay.
        let m = model_34b_tp4();
        let (seqs, mut ctx, iters) = (48u64, 48 * 777u64, 100u64);
        let mut manual = SimDuration::ZERO;
        for _ in 0..iters {
            ctx += seqs;
            manual += m.step_time(&BatchWork::decode(seqs, ctx));
        }
        assert_eq!(m.decode_run_time(48, 48 * 777, iters), manual);
    }

    #[test]
    fn decode_step_times_match_scalar_pricing() {
        // The vectorized batch evaluation hoists the context-invariant
        // roofline terms; it must still reproduce the scalar per-step
        // pricing bit-for-bit, or fast-forward replay breaks.
        for par in [Parallelism::tp(4), Parallelism::tp_pp(2, 2)] {
            let cluster = ClusterSpec::gen2_cluster(1);
            let m = ExecCostModel::new(
                cluster.server.chip.clone(),
                cluster.hccs,
                ModelSpec::internal_34b(),
                par,
            );
            for seqs in [1u64, 7, 48] {
                let ctx0 = seqs * 777;
                let mut batch = Vec::new();
                m.decode_step_times_into(seqs, ctx0, 100, &mut batch);
                assert_eq!(batch.len(), 100);
                let mut ctx = ctx0;
                for (i, &t) in batch.iter().enumerate() {
                    ctx += seqs;
                    assert_eq!(
                        t,
                        m.step_time(&BatchWork::decode(seqs, ctx)),
                        "tp={} pp={} seqs={seqs} step {i}",
                        par.tp,
                        par.pp
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_cache_hit_speeds_up_prefill() {
        let m = model_34b_tp4();
        let cold = m.prefill_time(4096, 0);
        let warm = m.prefill_time(4096, 3072);
        assert!(warm < cold);
        assert!(warm.as_secs_f64() < 0.5 * cold.as_secs_f64());
    }

    #[test]
    fn tp_reduces_time_but_not_linearly() {
        let cluster = ClusterSpec::gen2_cluster(1);
        let m = ModelSpec::internal_34b();
        let tp2 = ExecCostModel::new(
            cluster.server.chip.clone(),
            cluster.hccs,
            m.clone(),
            Parallelism::tp(2),
        );
        let tp8 = ExecCostModel::new(
            cluster.server.chip.clone(),
            cluster.hccs,
            m,
            Parallelism::tp(8),
        );
        let w = BatchWork::prefill(2048, 0);
        let t2 = tp2.step_time(&w).as_secs_f64();
        let t8 = tp8.step_time(&w).as_secs_f64();
        assert!(t8 < t2, "more TP must be faster");
        assert!(t8 > t2 / 4.0 * 0.8, "comm must erode perfect scaling");
    }

    #[test]
    fn kv_capacity_is_positive_and_shrinks_with_reserve() {
        let m = model_34b_tp4();
        let c0 = m.kv_capacity_tokens(0.1);
        let c1 = m.kv_capacity_tokens(0.3);
        assert!(c0 > c1);
        // 64 GB HBM - 17.2 GB weights leaves room for > 100K tokens at
        // 61 KB/token/NPU.
        assert!(c0 > 100_000, "kv capacity {c0}");
    }

    #[test]
    fn oversized_model_has_zero_capacity() {
        let cluster = ClusterSpec::gen2_cluster(1);
        let m = ExecCostModel::new(
            cluster.server.chip.clone(),
            cluster.hccs,
            ModelSpec::llama3_70b(),
            Parallelism::tp(2), // 65.7 GB weights/NPU > 64 GB HBM
        );
        assert_eq!(m.kv_capacity_tokens(0.0), 0);
    }

    #[test]
    fn pipeline_adds_hop_cost() {
        let cluster = ClusterSpec::gen2_cluster(1);
        let m = ModelSpec::internal_34b();
        let flat = ExecCostModel::new(
            cluster.server.chip.clone(),
            cluster.hccs,
            m.clone(),
            Parallelism::tp(4),
        );
        let piped = ExecCostModel::new(
            cluster.server.chip.clone(),
            cluster.hccs,
            m,
            Parallelism::tp_pp(4, 2),
        );
        let w = BatchWork::prefill(1024, 0);
        assert!(piped.step_breakdown(&w).comm_s > flat.step_breakdown(&w).comm_s);
    }
}
