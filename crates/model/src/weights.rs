//! Safetensors-style checkpoint layout.
//!
//! The paper stores models in the safetensors format: a small JSON header
//! followed by tensors in contiguous blocks, `mmap`ed so reads fault pages
//! in on demand (§6.2). Two properties matter to the scaling path and are
//! modeled here:
//!
//! 1. tensors are contiguous, so a TP rank's partition is a *byte range* it
//!    can fault in without touching the rest of the file;
//! 2. loading onto the NPU adds a fixed framework cost for tensor object
//!    initialization (the paper measures 0.3 s).

use crate::parallel::Parallelism;
use crate::spec::ModelSpec;
use npu::pagecache::{ByteRange, FileId};
use simcore::SimDuration;

/// Fixed per-load tensor-initialization overhead the paper measures
/// ("PyTorch model tensor initialization (0.3s)").
pub const TENSOR_INIT: SimDuration = SimDuration::from_millis(300);

/// One checkpoint file on a server's storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Identity in the page-cache layer.
    pub file: FileId,
    /// Model this checkpoint holds.
    pub model: ModelSpec,
    /// Serialized header size (tensor index), bytes.
    pub header_bytes: u64,
}

impl Checkpoint {
    /// Creates a checkpoint for `model` with the given file identity.
    pub fn new(file: FileId, model: ModelSpec) -> Self {
        // Headers are tens of KB in practice; size scales mildly with
        // tensor count (~layers).
        let header_bytes = 4096 + 512 * model.num_layers as u64;
        Checkpoint {
            file,
            model,
            header_bytes,
        }
    }

    /// Total file size: header plus all weights.
    pub fn total_bytes(&self) -> u64 {
        self.header_bytes + self.model.weight_bytes()
    }

    /// The byte range TP rank `rank` of `par` must read: the header (every
    /// rank parses the index) plus its contiguous weight partition.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is outside the TP x PP grid.
    pub fn partition(&self, par: Parallelism, rank: u32) -> ByteRange {
        let shards = par.tp as u64 * par.pp as u64;
        assert!(
            (rank as u64) < shards,
            "partition: rank {rank} outside {shards} shards"
        );
        let w = self.model.weight_bytes();
        let shard = w / shards;
        let start = self.header_bytes + rank as u64 * shard;
        // Last shard absorbs the remainder.
        let end = if rank as u64 == shards - 1 {
            self.header_bytes + w
        } else {
            start + shard
        };
        ByteRange::new(start, end)
    }

    /// Bytes each rank's partition holds (excluding the shared header).
    pub fn partition_bytes(&self, par: Parallelism) -> u64 {
        self.model.weight_bytes() / (par.tp as u64 * par.pp as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_file_exactly() {
        let c = Checkpoint::new(FileId(1), ModelSpec::internal_34b());
        let par = Parallelism::tp(4);
        let mut covered = 0;
        for rank in 0..4 {
            let r = c.partition(par, rank);
            covered += r.len();
            assert!(r.start >= c.header_bytes);
        }
        assert_eq!(covered, c.model.weight_bytes());
        // Last partition ends exactly at EOF.
        assert_eq!(c.partition(par, 3).end, c.total_bytes());
    }

    #[test]
    fn partitions_are_disjoint_and_ordered() {
        let c = Checkpoint::new(FileId(2), ModelSpec::llama3_70b());
        let par = Parallelism::tp_pp(4, 2);
        for rank in 0..7 {
            let a = c.partition(par, rank);
            let b = c.partition(par, rank + 1);
            assert_eq!(a.end, b.start, "shards must tile contiguously");
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_rank_panics() {
        let c = Checkpoint::new(FileId(3), ModelSpec::llama3_8b());
        c.partition(Parallelism::tp(2), 2);
    }

    #[test]
    fn header_is_small_relative_to_weights() {
        let c = Checkpoint::new(FileId(4), ModelSpec::generic_7b());
        assert!(c.header_bytes < 1 << 20);
        assert!(c.total_bytes() > c.model.weight_bytes());
    }
}
