//! # llm-model — model descriptors, parallelism, and the execution cost model
//!
//! Everything the serving stack needs to know about a model without running
//! it:
//!
//! * [`spec`] — geometry presets for the paper's models (Llama3-8B, the
//!   internal 34B, Llama3-70B, Qwen2-72B, a DeepSeek-style MLA model):
//!   weight sizes, KV bytes per token, FLOPs per token.
//! * [`parallel`] — TP/PP/DP/SP configurations and how they partition
//!   weights and KV cache across executors.
//! * [`cost`] — the roofline cost model pricing one forward pass
//!   (compute-bound prefill, HBM-bound decode, ring all-reduce comm).
//! * [`weights`] — safetensors-style checkpoint layout: contiguous,
//!   mmap-able per-rank byte ranges plus the fixed tensor-init overhead.

#![forbid(unsafe_code)]

pub mod cost;
pub mod parallel;
pub mod spec;
pub mod weights;

pub use cost::{BatchWork, ExecCostModel, StepBreakdown};
pub use parallel::Parallelism;
pub use spec::{AttentionKind, ModelSpec};
pub use weights::Checkpoint;
