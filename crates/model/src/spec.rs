//! LLM model descriptors.
//!
//! A [`ModelSpec`] carries exactly the geometry the serving system needs:
//! how big the weights are (TE-Load, NPU-fork, DRAM pre-loading), how many
//! bytes of KV cache a token costs (RTC, block tables, transfer sizes), and
//! how much compute/memory a forward pass moves (the roofline cost model in
//! [`crate::cost`]). No numerics — serving behaviour depends on durations
//! and sizes, not logits (DESIGN.md substitution table).

use serde::Serialize;

/// Attention flavour; affects KV-cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AttentionKind {
    /// Multi-head attention: KV heads == query heads.
    Mha,
    /// Grouped-query attention with the given KV head count.
    Gqa,
    /// DeepSeek-style multi-latent attention: KV compressed to a small
    /// latent per token, shared across heads. Makes data parallelism
    /// attractive because the per-token cache is tiny (§4.2 "optimized for
    /// DeepSeek's multi-latent attention (MLA) to reduce redundant caching").
    Mla {
        /// Compressed latent dimension per token per layer.
        latent_dim: u32,
    },
}

/// Static description of a dense (or MLA) transformer LLM.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelSpec {
    /// Human name, e.g. "llama3-70b".
    pub name: &'static str,
    /// Total parameter count.
    pub params: u64,
    /// Transformer layer count.
    pub num_layers: u32,
    /// Model (hidden) dimension.
    pub hidden: u32,
    /// Query head count.
    pub num_heads: u32,
    /// KV head count (== num_heads for MHA, fewer for GQA).
    pub num_kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Bytes per weight/KV element (2 for FP16/BF16).
    pub dtype_bytes: u32,
    /// Attention flavour.
    pub attention: AttentionKind,
    /// Maximum supported context length in tokens.
    pub max_context: u32,
}

impl ModelSpec {
    /// Total weight bytes of the checkpoint.
    pub fn weight_bytes(&self) -> u64 {
        self.params * self.dtype_bytes as u64
    }

    /// KV-cache bytes per token across all layers (un-partitioned).
    pub fn kv_bytes_per_token(&self) -> u64 {
        let per_layer = match self.attention {
            AttentionKind::Mla { latent_dim } => latent_dim as u64 * self.dtype_bytes as u64,
            _ => 2 * self.num_kv_heads as u64 * self.head_dim as u64 * self.dtype_bytes as u64,
        };
        per_layer * self.num_layers as u64
    }

    /// The same geometry at a different parameter count — fleet
    /// registries derive hundreds of size variants from a few preset
    /// families, and only the checkpoint size (hence cold-start cost)
    /// changes.
    pub fn scaled_to(mut self, params: u64) -> Self {
        self.params = params;
        self
    }

    /// Dense FLOPs per token through the linear layers (multiply-add = 2).
    pub fn linear_flops_per_token(&self) -> f64 {
        2.0 * self.params as f64
    }

    /// Attention FLOPs for one token attending to a context of `kv_len`
    /// tokens: QK^T plus attention-weighted V, per layer.
    pub fn attn_flops_per_token(&self, kv_len: u64) -> f64 {
        let per_layer = 4.0 * kv_len as f64 * (self.num_heads as u64 * self.head_dim as u64) as f64;
        per_layer * self.num_layers as f64
    }

    // ---- Presets (the models the paper evaluates) ----

    /// Llama3-8B: the NPU-fork scaling model (Figure 10, "Llama3-8B-TP1").
    pub fn llama3_8b() -> Self {
        ModelSpec {
            name: "llama3-8b",
            params: 8_030_000_000,
            num_layers: 32,
            hidden: 4096,
            num_heads: 32,
            num_kv_heads: 8,
            head_dim: 128,
            vocab: 128_256,
            dtype_bytes: 2,
            attention: AttentionKind::Gqa,
            max_context: 8192,
        }
    }

    /// The "34B model" used throughout the serving evaluation (Figures 3-6,
    /// always with TP=4). Geometry follows Yi-34B/CodeLlama-34B-class
    /// models.
    pub fn internal_34b() -> Self {
        ModelSpec {
            name: "internal-34b",
            params: 34_400_000_000,
            num_layers: 60,
            hidden: 7168,
            num_heads: 56,
            num_kv_heads: 8,
            head_dim: 128,
            vocab: 64_000,
            dtype_bytes: 2,
            attention: AttentionKind::Gqa,
            max_context: 16384,
        }
    }

    /// Llama3-70B: pre-warmed-TE adaptability target (§6.1).
    pub fn llama3_70b() -> Self {
        ModelSpec {
            name: "llama3-70b",
            params: 70_600_000_000,
            num_layers: 80,
            hidden: 8192,
            num_heads: 64,
            num_kv_heads: 8,
            head_dim: 128,
            vocab: 128_256,
            dtype_bytes: 2,
            attention: AttentionKind::Gqa,
            max_context: 8192,
        }
    }

    /// Qwen2-72B: the other pre-warmed-TE adaptability target (§6.1).
    pub fn qwen2_72b() -> Self {
        ModelSpec {
            name: "qwen2-72b",
            params: 72_700_000_000,
            num_layers: 80,
            hidden: 8192,
            num_heads: 64,
            num_kv_heads: 8,
            head_dim: 128,
            vocab: 152_064,
            dtype_bytes: 2,
            attention: AttentionKind::Gqa,
            max_context: 32768,
        }
    }

    /// A generic 7B model ("100 7B models fit in 1.5 TB DRAM", §6.2).
    pub fn generic_7b() -> Self {
        ModelSpec {
            name: "generic-7b",
            params: 7_000_000_000,
            num_layers: 32,
            hidden: 4096,
            num_heads: 32,
            num_kv_heads: 32,
            head_dim: 128,
            vocab: 32_000,
            dtype_bytes: 2,
            attention: AttentionKind::Mha,
            max_context: 4096,
        }
    }

    /// A DeepSeek-style MLA model for the data-parallel serving path.
    pub fn deepseek_mla() -> Self {
        ModelSpec {
            name: "deepseek-mla",
            params: 37_000_000_000, // activated params of a large MoE
            num_layers: 61,
            hidden: 7168,
            num_heads: 128,
            num_kv_heads: 128,
            head_dim: 128,
            vocab: 129_280,
            dtype_bytes: 2,
            attention: AttentionKind::Mla { latent_dim: 576 },
            max_context: 16384,
        }
    }

    /// A deliberately tiny model for fast unit tests.
    pub fn tiny_test() -> Self {
        ModelSpec {
            name: "tiny-test",
            params: 10_000_000,
            num_layers: 4,
            hidden: 256,
            num_heads: 4,
            num_kv_heads: 2,
            head_dim: 64,
            vocab: 1000,
            dtype_bytes: 2,
            attention: AttentionKind::Gqa,
            max_context: 2048,
        }
    }

    /// The catalog of production presets (everything except the test model).
    pub fn catalog() -> Vec<ModelSpec> {
        vec![
            Self::generic_7b(),
            Self::llama3_8b(),
            Self::internal_34b(),
            Self::deepseek_mla(),
            Self::llama3_70b(),
            Self::qwen2_72b(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_sizes_are_plausible() {
        // FP16: bytes = 2 * params.
        assert_eq!(ModelSpec::llama3_8b().weight_bytes(), 2 * 8_030_000_000);
        let gb_70b = ModelSpec::llama3_70b().weight_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gb_70b > 125.0 && gb_70b < 140.0, "{gb_70b}");
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        let gqa = ModelSpec::llama3_8b(); // 8 kv heads of 32
        let mha_equiv = ModelSpec {
            num_kv_heads: 32,
            attention: AttentionKind::Mha,
            ..gqa.clone()
        };
        assert_eq!(gqa.kv_bytes_per_token() * 4, mha_equiv.kv_bytes_per_token());
    }

    #[test]
    fn mla_kv_is_much_smaller_than_gqa() {
        let mla = ModelSpec::deepseek_mla();
        // MLA: latent_dim * dtype per layer, vs 2 * kv_heads * head_dim.
        let gqa_equiv = ModelSpec {
            attention: AttentionKind::Gqa,
            num_kv_heads: 8,
            ..mla.clone()
        };
        assert!(mla.kv_bytes_per_token() < gqa_equiv.kv_bytes_per_token());
    }

    #[test]
    fn kv_bytes_34b_match_hand_calculation() {
        let m = ModelSpec::internal_34b();
        // 2 (K and V) * 8 heads * 128 dim * 2 bytes * 60 layers = 245760.
        assert_eq!(m.kv_bytes_per_token(), 245_760);
    }

    #[test]
    fn flops_scale_with_context() {
        let m = ModelSpec::internal_34b();
        assert_eq!(m.linear_flops_per_token(), 2.0 * 34.4e9);
        assert!(m.attn_flops_per_token(4096) > m.attn_flops_per_token(1024));
        assert_eq!(m.attn_flops_per_token(0), 0.0);
    }

    #[test]
    fn catalog_is_sorted_by_size_and_unique() {
        let cat = ModelSpec::catalog();
        for w in cat.windows(2) {
            assert!(w[0].params <= w[1].params);
            assert_ne!(w[0].name, w[1].name);
        }
    }
}
