//! Property-based tests for platform-layer invariants: the distributed
//! scheduler, the heatmap, the autoscaler, and the scaling cost model.

use deepserve::{
    ApiRequest, AutoscaleSignal, Autoscaler, AutoscalerConfig, Heatmap, JobExecutor, LoadPath,
    Oracle, Policy, ScaleAction, ScalingModel, ScalingOptimizations, SchedPool, SourceLoad, Target,
    TeId, TeSnapshot,
};
use flowserve::synthetic_tokens;
use llm_model::{Checkpoint, ModelSpec, Parallelism};
use npu::pagecache::FileId;
use npu::specs::ClusterSpec;
use proptest::prelude::*;
use simcore::SimTime;
use std::collections::HashMap;

fn pool(n_coloc: usize, n_pairs: usize, loads: &[usize]) -> SchedPool {
    let mut p = SchedPool::default();
    let mut id = 0u32;
    for _ in 0..n_coloc {
        p.colocated.push(TeId(id));
        id += 1;
    }
    for _ in 0..n_pairs {
        p.pairs.push((TeId(id), TeId(id + 1)));
        id += 2;
    }
    let mut loads_map = HashMap::new();
    for t in 0..id {
        loads_map.insert(
            TeId(t),
            TeSnapshot {
                load: loads.get(t as usize).copied().unwrap_or(0),
            },
        );
    }
    p.loads = loads_map;
    p
}

proptest! {
    /// Every policy always returns a target that exists in the pool.
    #[test]
    fn scheduler_targets_are_in_pool(
        n_coloc in 0usize..4,
        n_pairs in 0usize..3,
        loads in prop::collection::vec(0usize..50, 10),
        prefill in 1usize..10_000,
        output in 1u32..2_000,
        policy_idx in 0usize..5,
    ) {
        prop_assume!(n_coloc + n_pairs > 0);
        let policy = [
            Policy::RoundRobin,
            Policy::LoadAware,
            Policy::LocalityAware,
            Policy::PdAware,
            Policy::Combined,
        ][policy_idx];
        let p = pool(n_coloc, n_pairs, &loads);
        let mut je = JobExecutor::new(
            policy,
            Heatmap::default_production(),
            Box::new(Oracle),
            16,
        );
        let req = ApiRequest::chat(1, synthetic_tokens(1, prefill, 64_000), output, SimTime::ZERO);
        let d = je.schedule(SimTime::ZERO, &req, &p);
        match d.target {
            Target::Colocated(te) => prop_assert!(p.colocated.contains(&te)),
            Target::Disaggregated { prefill, decode } => {
                prop_assert!(p.pairs.contains(&(prefill, decode)));
            }
        }
        prop_assert!(d.predicted_decode >= 1);
    }

    /// Load-aware scheduling never picks a strictly more loaded colocated
    /// TE than the minimum.
    #[test]
    fn load_aware_is_greedy(loads in prop::collection::vec(0usize..100, 4)) {
        let p = pool(4, 0, &loads);
        let mut je = JobExecutor::new(
            Policy::LoadAware,
            Heatmap::default_production(),
            Box::new(Oracle),
            16,
        );
        let req = ApiRequest::chat(1, synthetic_tokens(1, 512, 64_000), 100, SimTime::ZERO);
        let d = je.schedule(SimTime::ZERO, &req, &p);
        let Target::Colocated(te) = d.target else {
            return Err(TestCaseError::fail("no pairs configured"));
        };
        let min = loads.iter().copied().min().unwrap_or(0);
        prop_assert_eq!(loads[te.0 as usize], min);
    }

    /// Heatmap bucketing is monotone: longer prefill never maps to a lower
    /// row; higher ratio never maps to a lower column.
    #[test]
    fn heatmap_buckets_are_monotone(a in 1usize..40_000, b in 1usize..40_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(Heatmap::prefill_bucket(lo) <= Heatmap::prefill_bucket(hi));
        let (rl, rh) = (lo as f64 / 1000.0, hi as f64 / 1000.0);
        prop_assert!(Heatmap::ratio_bucket(rl) <= Heatmap::ratio_bucket(rh));
    }

    /// The autoscaler never exceeds its bounds in either direction.
    #[test]
    fn autoscaler_respects_bounds(
        load in 0usize..10_000,
        active in 0usize..100,
        scaling in 0usize..20,
        viol in 0.0f64..1.0,
    ) {
        let cfg = AutoscalerConfig {
            min_tes: 2,
            max_tes: 32,
            ..AutoscalerConfig::default()
        };
        let mut a = Autoscaler::new(cfg);
        let action = a.decide(SimTime::ZERO, AutoscaleSignal {
            total_load: load,
            active_tes: active,
            scaling_tes: scaling,
            slo_violation_rate: viol,
        });
        match action {
            Some(ScaleAction::Up(n)) => {
                prop_assert!(active + scaling + n <= 32);
                prop_assert!(n >= 1);
            }
            Some(ScaleAction::Down(n)) => {
                prop_assert!(active - n >= 2);
                prop_assert!(n >= 1);
            }
            None => {}
        }
    }

    /// Scaling cost model: optimizations never make any step slower, for
    /// any model/parallelism in the catalog.
    #[test]
    fn optimizations_never_hurt(model_idx in 0usize..4, tp_pow in 0u32..4) {
        let specs = [
            ModelSpec::generic_7b(),
            ModelSpec::llama3_8b(),
            ModelSpec::internal_34b(),
            ModelSpec::llama3_70b(),
        ];
        let spec = specs[model_idx].clone();
        let tp = 1u32 << tp_pow;
        prop_assume!(spec.num_kv_heads.is_multiple_of(tp));
        let par = Parallelism::tp(tp);
        let m = ScalingModel::new(ClusterSpec::gen2_cluster(4));
        let ckpt = Checkpoint::new(FileId(1), spec);
        let before = m.breakdown(
            &ckpt, par,
            ScalingOptimizations::none(),
            LoadPath::DramMiss,
            SourceLoad::idle(),
        );
        let after = m.breakdown(
            &ckpt, par,
            ScalingOptimizations::all(),
            LoadPath::DramHit,
            SourceLoad::idle(),
        );
        prop_assert!(after.scaler_pre <= before.scaler_pre);
        prop_assert!(after.te_pre_load <= before.te_pre_load);
        prop_assert!(after.te_load <= before.te_load);
        prop_assert!(after.te_post_load <= before.te_post_load);
        prop_assert!(after.scaler_post <= before.scaler_post);
    }

    /// NPU-fork time is monotone in fan-out and bounded by the pipelined
    /// broadcast's flatness.
    #[test]
    fn fork_monotone_and_flat(f1 in 1usize..64, f2 in 1usize..64) {
        prop_assume!(f1 < f2);
        let m = ScalingModel::new(ClusterSpec::gen2_cluster(16));
        let ckpt = Checkpoint::new(FileId(1), ModelSpec::llama3_8b());
        let par = Parallelism::tp(1);
        let t1 = m.te_load(&ckpt, par, LoadPath::NpuForkHccs { fanout: f1 }, SourceLoad::idle());
        let t2 = m.te_load(&ckpt, par, LoadPath::NpuForkHccs { fanout: f2 }, SourceLoad::idle());
        prop_assert!(t2 >= t1, "fork time must be monotone in fan-out");
        prop_assert!(t2.as_secs_f64() <= 2.0 * t1.as_secs_f64(), "and nearly flat");
    }
}
