//! Core-level tests for the live-ingress API (`enable_live_ingress` /
//! `submit_live` / `step_until`) and the `DEEPSERVE_THREADS` parser the
//! gateway's serve loop relies on.

use deepserve::{parse_threads, ApiRequest, ClusterConfig, ClusterSim, LiveEvent, TeRole};
use flowserve::{synthetic_tokens, CacheId};
use simcore::{SimDuration, SimTime};

fn sim() -> ClusterSim {
    ClusterSim::new(
        ClusterConfig::standard_34b(),
        &[TeRole::Colocated, TeRole::Colocated],
    )
}

fn req(id: u64, at: SimTime) -> ApiRequest {
    ApiRequest::chat(id, synthetic_tokens(id, 96, 64_000), 4, at)
}

#[test]
fn parse_threads_accepts_positive_integers() {
    assert_eq!(parse_threads("1"), Ok(1));
    assert_eq!(parse_threads(" 8 "), Ok(8));
    assert_eq!(parse_threads(""), Ok(1));
    assert_eq!(parse_threads("   "), Ok(1));
}

#[test]
fn parse_threads_rejects_garbage_with_a_diagnostic() {
    for bad in ["0", "-2", "fourr", "1.5", "8x", "NaN"] {
        let err = parse_threads(bad).expect_err(bad);
        assert!(
            err.contains("DEEPSERVE_THREADS") && err.contains(bad),
            "diagnostic must name the variable and the bad value: {err}"
        );
    }
}

#[test]
fn live_arrivals_are_bumped_monotonic_and_recorded() {
    let mut s = sim();
    s.enable_live_ingress();
    // Three submissions claiming the same instant: each must land on its
    // own, strictly later nanosecond.
    let t0 = SimTime::ZERO + SimDuration::from_millis(5);
    let a = s.submit_live(req(1, t0));
    let b = s.submit_live(req(2, t0));
    let c = s.submit_live(req(3, t0));
    assert!(a < b && b < c, "arrivals must be strictly increasing");

    let log = s.ingress_log().to_vec();
    assert_eq!(log.len(), 3);
    assert_eq!(
        log.iter().map(|r| r.id).collect::<Vec<_>>(),
        vec![1, 2, 3],
        "ingress log keeps submission order"
    );
    for (rec, at) in log.iter().zip([a, b, c]) {
        assert_eq!(
            rec.arrival_ns,
            at.as_nanos(),
            "log records the bumped stamp"
        );
    }
}

#[test]
fn step_until_only_advances_to_the_pace_limit() {
    let mut s = sim();
    s.enable_live_ingress();
    s.submit_live(req(1, SimTime::ZERO + SimDuration::from_millis(1)));
    s.submit_live(req(2, SimTime::ZERO + SimDuration::from_secs(30)));

    let limit = SimTime::ZERO + SimDuration::from_secs(5);
    let next = s.step_until(limit);
    // Request 1 (arrival + full decode) fits well inside 5 s; request 2
    // has not even arrived, so the next pending event is its arrival.
    let next = next.expect("request 2 still pending");
    assert!(next > limit, "no event at or before the limit may remain");
    assert_eq!(next, SimTime::ZERO + SimDuration::from_secs(30));

    let events = s.take_live_events();
    let finished: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            LiveEvent::Finished { id, .. } => Some(id.0),
            _ => None,
        })
        .collect();
    assert_eq!(finished, vec![1], "only request 1 can finish by 5 s");

    // Draining the rest completes request 2 as well.
    let mut report = s.run_to_completion();
    assert_eq!(report.latency.completed(), 2);
    let _ = report.to_json();
}

#[test]
fn live_run_report_matches_injected_replay() {
    // Live path: submissions trickle in while the sim steps.
    let mut live = sim();
    live.enable_live_ingress();
    live.submit_live(req(1, SimTime::ZERO));
    live.step_until(SimTime::ZERO + SimDuration::from_secs(2));
    let mut r2 = req(2, SimTime::ZERO + SimDuration::from_secs(1));
    r2.cache_id = Some(CacheId(9));
    live.submit_live(r2);
    live.step_until(SimTime::ZERO + SimDuration::from_secs(4));
    let log = live.ingress_log().to_vec();
    let live_json = live.run_to_completion().to_json().to_json();

    // Replay path: the recorded log injected into a fresh sim up front.
    let mut replay = sim();
    replay.inject(log.iter().map(|r| r.to_request()).collect());
    let replay_json = replay.run_to_completion().to_json().to_json();
    assert_eq!(
        live_json, replay_json,
        "live and replay must be byte-identical"
    );
}

#[test]
fn token_events_cover_the_decode_stream() {
    let mut s = sim();
    s.enable_live_ingress();
    s.set_token_events(true);
    s.submit_live(req(1, SimTime::ZERO));
    let mut report = s.run_to_completion();
    assert_eq!(report.latency.completed(), 1);

    let events = s.take_live_events();
    let mut first = 0u64;
    let mut streamed = 0u64;
    let mut finished_total = 0u64;
    for ev in &events {
        match *ev {
            LiveEvent::FirstToken { .. } => first += 1,
            LiveEvent::Tokens { n, .. } => streamed += u64::from(n),
            LiveEvent::Finished { output_tokens, .. } => finished_total = output_tokens,
            LiveEvent::Failed { .. } => panic!("unexpected failure"),
        }
    }
    assert_eq!(first, 1, "exactly one first-token event");
    assert_eq!(finished_total, 4);
    assert!(
        first + streamed >= finished_total,
        "token events must cover all {finished_total} outputs, saw {streamed}+{first}"
    );
    let _ = report.to_json();
}
