//! Directed failure-recovery scenarios: each test stages one specific fault
//! and pins the recovery semantics the fault model promises — crash during
//! prefill, crash during decode, loss of a migration destination, a
//! straggler TE, and the zero-fault identity guarantee.

use deepserve::{
    materialize_trace, ApiRequest, ClusterConfig, ClusterSim, FaultRecoveryConfig, Policy,
    RunReport, TeRole,
};
use simcore::{FaultPlan, SimDuration, SimRng, SimTime, TraceLevel};
use workloads::{ChatTrace, ReqSpec};

fn cfg() -> ClusterConfig {
    ClusterConfig {
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    }
}

fn one_request(prompt_len: usize, output_len: u32) -> Vec<ApiRequest> {
    materialize_trace(
        &[ReqSpec {
            arrival: SimTime::ZERO,
            prompt_seed: 0xDEAD,
            prompt_len,
            shared_prefix: None,
            output_len,
        }],
        64_000,
    )
}

/// Runs the workload on one colocated TE with the given plan; returns the
/// report plus `(completed, failed)`.
fn run_single_te(reqs: Vec<ApiRequest>, plan: &FaultPlan) -> (RunReport, u64, u64) {
    let mut sim = ClusterSim::new(cfg(), &[TeRole::Colocated]);
    sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
    sim.inject(reqs);
    sim.install_faults(plan, FaultRecoveryConfig::default());
    let report = sim.run_to_completion();
    let (done, _) = sim.progress();
    let failed = sim.failed();
    (report, done, failed)
}

/// First-token and finish times of the single request in a healthy run,
/// used to aim crashes at a specific lifecycle phase.
fn healthy_lifecycle(reqs: Vec<ApiRequest>) -> (SimTime, SimTime) {
    let (report, done, _) = run_single_te(reqs, &FaultPlan::none());
    assert_eq!(done, 1);
    let first = report
        .trace
        .events_labeled("request.first_token")
        .next()
        .expect("first_token event")
        .at;
    let end = report
        .trace
        .events_labeled("request.finished")
        .next()
        .expect("finished event")
        .at;
    (first, end)
}

fn midpoint(a: SimTime, b: SimTime) -> SimTime {
    SimTime::from_nanos((a.as_nanos() + b.as_nanos()) / 2)
}

#[test]
fn crash_during_prefill_requeues_and_completes_after_repair() {
    let reqs = one_request(6144, 32);
    let (first_token, _) = healthy_lifecycle(reqs.clone());
    // Aim the crash inside the prefill window (before the first token).
    let crash_at = midpoint(SimTime::ZERO, first_token);
    let plan = FaultPlan::none().with_crash(crash_at, 0);

    let (mut report, done, failed) = run_single_te(reqs, &plan);
    assert_eq!((done, failed), (1, 0), "request survives via re-dispatch");
    assert_eq!(report.counters.get("cluster.failures"), 1);
    assert_eq!(report.counters.get("cluster.detected_down"), 1);
    assert_eq!(report.counters.get("cluster.repaired"), 1);
    assert!(report.counters.get("sim.requeued") >= 1);
    // With the only TE down, re-dispatch must defer until repair lands.
    assert!(report.counters.get("sim.dispatch_deferred") >= 1);
    // The recovered JCT includes detection + repair + re-prefill.
    let jct = report.latency.jct_ms();
    assert!(
        jct.max * 1e-3 > crash_at.as_secs_f64(),
        "JCT {}ms must extend past the crash at {}s",
        jct.max,
        crash_at.as_secs_f64()
    );
}

#[test]
fn crash_during_decode_loses_kv_and_still_completes() {
    let reqs = one_request(512, 256);
    let (first_token, end) = healthy_lifecycle(reqs.clone());
    assert!(first_token < end);
    // Aim the crash mid-decode: after the first token, before the last.
    let crash_at = midpoint(first_token, end);
    let plan = FaultPlan::none().with_crash(crash_at, 0);

    let (report, done, failed) = run_single_te(reqs, &plan);
    assert_eq!((done, failed), (1, 0));
    assert_eq!(report.counters.get("cluster.failures"), 1);
    assert!(report.counters.get("sim.requeued") >= 1);
    // The decode state was lost mid-stream: the request re-enters and the
    // trace shows more than one first_token emission.
    let firsts = report.trace.events_labeled("request.first_token").count();
    assert!(
        firsts >= 2,
        "expected re-prefill, saw {firsts} first tokens"
    );
}

#[test]
fn migration_destination_crash_aborts_and_reroutes() {
    // A prefill/decode pair plus a colocated fallback: when the decode TE
    // dies, in-flight and not-yet-started migrations abort and their
    // requests reroute (to the colocated TE until the repair lands).
    let mut rng = SimRng::seed_from_u64(21);
    let reqs = materialize_trace(&ChatTrace::paper(2.0).generate(&mut rng, 30), 64_000);
    let expected = reqs.len() as u64;
    let plan = FaultPlan::none().with_crash(SimTime::from_secs(4), 1);

    let mut sim = ClusterSim::new(cfg(), &[TeRole::Prefill, TeRole::Decode, TeRole::Colocated]);
    sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
    sim.inject(reqs);
    sim.install_faults(&plan, FaultRecoveryConfig::default());
    let report = sim.run_to_completion();
    let (done, sub) = sim.progress();
    assert_eq!(sub, expected);
    assert_eq!(done + sim.failed(), sub, "conservation under pair loss");
    assert_eq!(report.counters.get("sim.double_terminal"), 0);
    assert!(
        report.counters.get("sim.migrations_aborted") >= 1,
        "the dead decode endpoint must abort at least one migration"
    );
    assert_eq!(report.counters.get("cluster.repaired"), 1);
}

#[test]
fn straggler_te_degrades_latency_but_loses_nothing() {
    let workload = || {
        let mut rng = SimRng::seed_from_u64(17);
        materialize_trace(&ChatTrace::paper(0.8).generate(&mut rng, 30), 64_000)
    };
    let run = |plan: &FaultPlan| {
        let mut sim = ClusterSim::new(cfg(), &[TeRole::Colocated]);
        sim.inject(workload());
        sim.install_faults(plan, FaultRecoveryConfig::default());
        let mut report = sim.run_to_completion();
        let (done, sub) = sim.progress();
        assert_eq!(done, sub, "a slow TE finishes everything eventually");
        (
            report.latency.tpot_ms().p99,
            report.latency.jct_ms().mean,
            report,
        )
    };
    let (healthy_tpot, healthy_jct, _) = run(&FaultPlan::none());
    // 4x slower than spec for the bulk of the run: TPOT blows through any
    // per-token SLA that the healthy run meets.
    let plan = FaultPlan::none().with_straggler(SimTime::ZERO, 0, 4.0, SimDuration::from_secs(120));
    let (slow_tpot, slow_jct, report) = run(&plan);
    assert_eq!(report.counters.get("cluster.stragglers"), 1);
    assert_eq!(report.counters.get("cluster.failures"), 0, "slow, not dead");
    assert!(
        slow_tpot > healthy_tpot * 2.0,
        "straggler TPOT p99 {slow_tpot} should dwarf healthy {healthy_tpot}"
    );
    assert!(slow_jct > healthy_jct);
}

#[test]
fn zero_fault_plan_is_bit_identical_to_unarmed_run() {
    let go = |armed: bool| {
        let mut rng = SimRng::seed_from_u64(5);
        let reqs = materialize_trace(&ChatTrace::paper(1.0).generate(&mut rng, 40), 64_000);
        let mut sim = ClusterSim::new(cfg(), &[TeRole::Colocated, TeRole::Prefill, TeRole::Decode]);
        sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
        sim.inject(reqs);
        if armed {
            // The empty plan must be a guaranteed no-op.
            sim.install_faults(&FaultPlan::none(), FaultRecoveryConfig::default());
        }
        let mut report = sim.run_to_completion();
        (report.to_json().to_json(), report.trace.to_json().to_json())
    };
    let (unarmed_report, unarmed_trace) = go(false);
    let (armed_report, armed_trace) = go(true);
    assert_eq!(
        unarmed_report, armed_report,
        "report must be byte-identical"
    );
    assert_eq!(unarmed_trace, armed_trace, "trace must be byte-identical");
}
