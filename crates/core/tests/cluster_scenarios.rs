//! Full-platform scenarios: JE scheduling over colocated and disaggregated
//! TE pools, serving synthetic production traces. These are the same code
//! paths the Figure 4/5/6 benches sweep; here we pin the qualitative
//! behaviours as regressions.

use deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, RunReport, TeRole};
use simcore::SimRng;
use workloads::{ChatTrace, CodeGenTrace, SharedPrefixChat};

fn run(policy: Policy, roles: &[TeRole], reqs: Vec<deepserve::ApiRequest>) -> RunReport {
    let cfg = ClusterConfig {
        policy,
        ..ClusterConfig::standard_34b()
    };
    let mut sim = ClusterSim::new(cfg, roles);
    sim.inject(reqs);
    let report = sim.run_to_completion();
    let (done, sub) = sim.progress();
    assert_eq!(done, sub, "all submitted requests must complete");
    report
}

fn chat(rps: f64, count: usize, seed: u64) -> Vec<deepserve::ApiRequest> {
    let mut rng = SimRng::seed_from_u64(seed);
    materialize_trace(&ChatTrace::paper(rps).generate(&mut rng, count), 64_000)
}

#[test]
fn colocated_pool_serves_chat_trace() {
    let mut report = run(
        Policy::Combined,
        &[TeRole::Colocated, TeRole::Colocated],
        chat(0.4, 60, 1),
    );
    assert_eq!(report.latency.completed(), 60);
    let ttft = report.latency.ttft_ms();
    let tpot = report.latency.tpot_ms();
    // 2K prefill on a 34B TP4 engine: sub-second to a few seconds TTFT at
    // low load; decode in the tens of ms.
    assert!(
        ttft.p50 > 50.0 && ttft.p50 < 5_000.0,
        "TTFT p50 {}",
        ttft.p50
    );
    assert!(tpot.p50 > 5.0 && tpot.p50 < 80.0, "TPOT p50 {}", tpot.p50);
    assert!(
        report.throughput() > 10.0,
        "throughput {}",
        report.throughput()
    );
}

#[test]
fn disaggregated_pair_serves_end_to_end() {
    let report = run(
        Policy::Combined,
        &[TeRole::Prefill, TeRole::Decode],
        chat(0.4, 40, 2),
    );
    assert_eq!(report.latency.completed(), 40);
    assert_eq!(report.counters.get("sim.routed_disaggregated"), 40);
    assert_eq!(report.counters.get("sim.kv_migrations"), 40);
    assert!(report.counters.get("sim.kv_bytes_migrated") > 0);
}

#[test]
fn disagg_lowers_tpot_at_matched_throughput() {
    // Figure 4's headline: at the same offered load, PD-disaggregation
    // yields lower TPOT than colocated serving because decode never
    // contends with prefill.
    let load = || chat(0.8, 150, 3);
    let mut coloc = run(Policy::Combined, &[TeRole::Colocated; 4], load());
    let mut disagg = run(
        Policy::Combined,
        &[
            TeRole::Prefill,
            TeRole::Prefill,
            TeRole::Decode,
            TeRole::Decode,
        ],
        load(),
    );
    let c = coloc.latency.tpot_ms();
    let d = disagg.latency.tpot_ms();
    assert!(
        d.p90 < c.p90,
        "disagg TPOT p90 {} should beat colocated {}",
        d.p90,
        c.p90
    );
}

#[test]
fn locality_policy_beats_load_only_on_shared_prefix_traffic() {
    let trace = |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        materialize_trace(
            &SharedPrefixChat::standard(1.0).generate(&mut rng, 120),
            64_000,
        )
    };
    let roles = [TeRole::Colocated, TeRole::Colocated, TeRole::Colocated];
    let combined = run(Policy::Combined, &roles, trace(4));
    let load_only = run(Policy::LoadAware, &roles, trace(4));
    let hits_combined: u64 = combined.counters.get("sim.completed"); // sanity
    assert_eq!(hits_combined, 120);
    // The real check: cache-hit volume. Extract from TE busy time proxy:
    // locality routing must not be slower end-to-end.
    let mut c = combined;
    let mut l = load_only;
    let jc = c.latency.ttft_ms();
    let jl = l.latency.ttft_ms();
    assert!(
        jc.mean <= jl.mean * 1.02,
        "locality TTFT mean {} should not lose to load-only {}",
        jc.mean,
        jl.mean
    );
}

#[test]
fn pd_aware_routes_by_shape() {
    // Long-prefill/short-decode goes disaggregated; short-prefill/
    // long-decode goes colocated (heatmap policy, §5.3).
    let mut rng = SimRng::seed_from_u64(9);
    let mut specs = Vec::new();
    for i in 0..30 {
        specs.push(workloads::ReqSpec {
            arrival: simcore::SimTime::from_millis(1_500 * i as u64),
            prompt_seed: rng.next_u64(),
            prompt_len: if i % 2 == 0 { 6144 } else { 256 },
            shared_prefix: None,
            output_len: if i % 2 == 0 { 64 } else { 512 },
        });
    }
    let reqs = materialize_trace(&specs, 64_000);
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        predictor_accuracy: None, // oracle: deterministic routing
        ..ClusterConfig::standard_34b()
    };
    let mut sim = ClusterSim::new(
        cfg,
        &[
            TeRole::Colocated,
            TeRole::Colocated,
            TeRole::Prefill,
            TeRole::Decode,
        ],
    );
    sim.inject(reqs);
    let report = sim.run_to_completion();
    assert_eq!(report.latency.completed(), 30);
    assert_eq!(report.counters.get("sim.routed_disaggregated"), 15);
    assert_eq!(report.counters.get("sim.routed_colocated"), 15);
}

#[test]
fn code_gen_trace_exercises_prefix_reuse() {
    let mut rng = SimRng::seed_from_u64(12);
    let reqs = materialize_trace(&CodeGenTrace::paper(1.0).generate(&mut rng, 100), 64_000);
    let report = run(
        Policy::Combined,
        &[TeRole::Colocated, TeRole::Colocated],
        reqs,
    );
    assert_eq!(report.latency.completed(), 100);
}

#[test]
fn cluster_replay_is_deterministic() {
    let go = || {
        let mut r = run(
            Policy::Combined,
            &[TeRole::Colocated, TeRole::Prefill, TeRole::Decode],
            chat(1.0, 80, 7),
        );
        let l = r.latency.jct_ms();
        (r.latency.completed(), l.mean.to_bits(), l.p99.to_bits())
    };
    assert_eq!(go(), go());
}

#[test]
fn overload_degrades_gracefully_not_fatally() {
    // Offered load well above one TE's capacity: queueing explodes but
    // every request still completes and ordering stays sane.
    let mut report = run(Policy::Combined, &[TeRole::Colocated], chat(4.0, 120, 8));
    assert_eq!(report.latency.completed(), 120);
    let jct = report.latency.jct_ms();
    assert!(jct.p99 > jct.p50, "queueing must show in the tail");
}
