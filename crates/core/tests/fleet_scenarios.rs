//! Directed scenarios for the model-fleet layer: cold starts through the
//! storage hierarchy, locality-aware placement, HBM eviction, scale-out
//! multicast, and the cold-start mode ablation.

use deepserve::{
    materialize_fleet_trace, ClusterConfig, ClusterSim, ColdStartMode, FleetConfig, LoadState,
    ModelRegistry, TeId, TeRole,
};
use llm_model::ModelSpec;
use simcore::{SimDuration, SimTime};
use workloads::{FleetReqSpec, ReqSpec};

/// A hand-shaped fleet request: model `m` arriving at `secs`.
fn req(m: u32, secs: f64) -> FleetReqSpec {
    FleetReqSpec {
        model: m,
        spec: ReqSpec {
            arrival: SimTime::ZERO + SimDuration::from_secs_f64(secs),
            prompt_seed: 0x5eed ^ u64::from(m),
            prompt_len: 128,
            shared_prefix: None,
            output_len: 8,
        },
    }
}

fn small_registry(n: usize) -> ModelRegistry {
    let mut reg = ModelRegistry::new();
    for i in 0..n {
        reg.register(format!("m{i}"), ModelSpec::generic_7b());
    }
    reg
}

fn fleet_sim(roles: usize, cfg: FleetConfig, models: usize) -> ClusterSim {
    let mut sim = ClusterSim::new(
        ClusterConfig::standard_34b(),
        &vec![TeRole::Colocated; roles],
    );
    sim.enable_fleet(small_registry(models), cfg);
    sim
}

#[test]
fn cold_start_then_hot_path() {
    let mut sim = fleet_sim(2, FleetConfig::default(), 2);
    // Three requests for model 0: the first pays a cold start and the
    // rest ride the loaded replica; one late request for model 1 pays its
    // own cold start.
    let specs = vec![req(0, 0.0), req(0, 0.5), req(0, 60.0), req(1, 120.0)];
    sim.inject(materialize_fleet_trace(&specs, 64_000));
    let report = sim.run_to_completion();

    let (done, sub) = sim.progress();
    assert_eq!(sub, 4);
    assert_eq!(done + sim.failed(), sub, "conservation");
    assert_eq!(sim.failed(), 0);
    assert_eq!(report.counters.get("fleet.cold_starts"), 2);
    // The two early model-0 requests queue behind the load; the 60s one
    // hits the hot path.
    assert!(report.counters.get("fleet.queued") >= 2);
    assert!(report.counters.get("fleet.dispatch_hot") >= 1);
    let reg = sim.fleet_registry().expect("fleet mode");
    assert_eq!(reg.state(0), LoadState::Loaded);
    assert_eq!(reg.state(1), LoadState::Loaded);
    assert_eq!(reg.hosts(0).len(), 1);
}

#[test]
fn duplicate_cold_starts_coalesce() {
    let mut sim = fleet_sim(2, FleetConfig::default(), 1);
    // A burst of requests for one unloaded model must start exactly one
    // checkpoint load, with everyone else queueing behind it.
    let specs: Vec<FleetReqSpec> = (0..6).map(|i| req(0, 0.001 * f64::from(i))).collect();
    sim.inject(materialize_fleet_trace(&specs, 64_000));
    let report = sim.run_to_completion();
    assert_eq!(report.counters.get("fleet.cold_starts"), 1);
    assert_eq!(report.counters.get("fleet.queued"), 6);
    let (done, sub) = sim.progress();
    assert_eq!((done, sim.failed()), (sub, 0));
}

#[test]
fn locality_prefers_the_server_holding_the_checkpoint() {
    // gen2_cluster(4) at TP4 packs two TEs per server: TEs 0-1 on server
    // 0, TEs 2-3 on server 1. Stage the checkpoint on server 1's SSD
    // only; the JE must start the model there, not on the lower-numbered
    // (otherwise tie-breaking) server-0 TEs.
    let mut sim = fleet_sim(4, FleetConfig::default(), 1);
    sim.prime_model_on_server(0, 1);
    sim.inject(materialize_fleet_trace(&[req(0, 0.0)], 64_000));
    let report = sim.run_to_completion();
    let reg = sim.fleet_registry().expect("fleet mode");
    assert_eq!(reg.hosts(0), &[TeId(2)], "must land on server 1");
    assert_eq!(report.counters.get("fleet.loads_ssd"), 1);
    assert_eq!(report.metrics.counter_value("je.cold_start_local_hit"), 1);
}

#[test]
fn hbm_pressure_evicts_lru_and_refaults_from_dram() {
    // Budget fits one 7B replica (14 GB weights): loading model 1 evicts
    // model 0, and model 0's return is another cold start — but its bytes
    // are still in server DRAM, so the refault is a DRAM-tier load.
    let cfg = FleetConfig {
        hbm_weight_budget: Some(20 * (1u64 << 30)),
        ..FleetConfig::default()
    };
    let mut sim = fleet_sim(1, cfg, 2);
    let specs = vec![req(0, 0.0), req(1, 90.0), req(0, 180.0)];
    sim.inject(materialize_fleet_trace(&specs, 64_000));
    let report = sim.run_to_completion();

    let (done, sub) = sim.progress();
    assert_eq!((done, sim.failed()), (sub, 0));
    assert_eq!(report.counters.get("fleet.cold_starts"), 3);
    assert!(report.counters.get("fleet.evictions") >= 1);
    assert!(
        report.counters.get("fleet.loads_dram") >= 1,
        "the re-load must hit the DRAM tier, not stream from remote: {:?}",
        report.counters
    );
    let reg = sim.fleet_registry().expect("fleet mode");
    assert_eq!(reg.state(0), LoadState::Loaded, "model 0 reloaded last");
}

#[test]
fn multicast_scale_out_adds_replicas_under_pressure() {
    let cfg = FleetConfig {
        mode: ColdStartMode::HierarchyMulticast,
        ..FleetConfig::default()
    };
    let mut sim = fleet_sim(4, cfg, 1);
    // 64 near-simultaneous requests for one model: draining the cold-start
    // queue pushes the single replica's engine load past the scale-out
    // threshold, triggering a binary-tree multicast to spare TEs.
    let specs: Vec<FleetReqSpec> = (0..64).map(|i| req(0, 0.0005 * f64::from(i))).collect();
    sim.inject(materialize_fleet_trace(&specs, 64_000));
    let report = sim.run_to_completion();

    let (done, sub) = sim.progress();
    assert_eq!((done, sim.failed()), (sub, 0));
    assert!(
        report.counters.get("fleet.replicas_added") > 1,
        "scale-out must add replicas: {:?}",
        report.counters
    );
    assert!(
        report.counters.get("fleet.loads_hbm") >= 1,
        "scale-out forks HBM-to-HBM"
    );
    let reg = sim.fleet_registry().expect("fleet mode");
    assert!(reg.hosts(0).len() > 1, "hosts: {:?}", reg.hosts(0));
}

#[test]
fn hierarchy_cold_starts_beat_prewarm_miss() {
    // Same skewed trace under both modes, fleet staged on SSD: faulting
    // through the storage hierarchy must beat re-streaming every miss
    // from the remote store.
    let run = |mode: ColdStartMode| {
        let cfg = FleetConfig {
            mode,
            ..FleetConfig::default()
        };
        let mut sim = fleet_sim(4, cfg, 6);
        sim.stage_fleet_on_ssd();
        let specs: Vec<FleetReqSpec> = (0..6).map(|m| req(m as u32, 10.0 * m as f64)).collect();
        sim.inject(materialize_fleet_trace(&specs, 64_000));
        let mut report = sim.run_to_completion();
        let (done, sub) = sim.progress();
        assert_eq!((done, sim.failed()), (sub, 0));
        report
            .metrics
            .summary("fleet.cold_start_ms")
            .expect("cold starts happened")
            .mean
    };
    let prewarm = run(ColdStartMode::PrewarmMiss);
    let hierarchy = run(ColdStartMode::Hierarchy);
    assert!(
        hierarchy < prewarm,
        "hierarchy {hierarchy} ms vs prewarm-miss {prewarm} ms"
    );
}

#[test]
fn unknown_model_fails_cleanly() {
    let mut sim = fleet_sim(2, FleetConfig::default(), 1);
    sim.inject(materialize_fleet_trace(&[req(0, 0.0), req(7, 1.0)], 64_000));
    let report = sim.run_to_completion();
    let (done, sub) = sim.progress();
    assert_eq!(sub, 2);
    assert_eq!(done, 1);
    assert_eq!(sim.failed(), 1, "unknown model must fail, not wedge");
    assert_eq!(report.counters.get("fleet.unknown_model"), 1);
}

#[test]
fn untagged_requests_keep_the_single_model_path() {
    // A fleet sim serving only untagged requests must not touch the
    // registry at all.
    let mut sim = fleet_sim(2, FleetConfig::default(), 2);
    let mut rng = simcore::SimRng::seed_from_u64(5);
    let reqs = deepserve::materialize_trace(
        &workloads::ChatTrace::paper(4.0).generate(&mut rng, 20),
        64_000,
    );
    sim.inject(reqs);
    let report = sim.run_to_completion();
    let (done, sub) = sim.progress();
    assert_eq!((done, sim.failed()), (sub, 0));
    assert_eq!(report.counters.get("fleet.cold_starts"), 0);
    assert_eq!(report.counters.get("fleet.dispatch_hot"), 0);
    let reg = sim.fleet_registry().expect("fleet mode");
    assert_eq!(reg.state(0), LoadState::Unloaded);
    assert_eq!(reg.state(1), LoadState::Unloaded);
}
