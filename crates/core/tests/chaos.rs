//! Chaos suite: under *arbitrary* generated fault plans, every request must
//! terminate exactly once — finished, or failed-with-reason after retry
//! exhaustion. No hangs, no double-finishes, no lost requests.
//!
//! The driver's conservation invariant is `completed + failed == submitted`
//! with `sim.double_terminal == 0`; `run_to_completion` returning at all is
//! the no-hang half (a livelock trips the sim's event budget).
//!
//! CI runs this suite over a matrix of `CHAOS_SEED` values; the seed is
//! mixed into the workload generator so each matrix entry explores a
//! different deterministic slice of (workload x fault-plan) space.

use deepserve::{
    fleet_catalog, materialize_fleet_trace, materialize_trace, ClusterConfig, ClusterSim,
    ColdStartMode, FaultRecoveryConfig, FleetConfig, Policy, TeRole,
};
use proptest::prelude::*;
use simcore::{FaultKind, FaultPlan, SimDuration, SimRng, SimTime};
use workloads::{ChatTrace, FleetTrace};

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Mixed pool: two colocated TEs plus one disaggregated pair, so plans hit
/// every recovery path (colocated re-dispatch, migration aborts, pair loss).
const ROLES: [TeRole; 4] = [
    TeRole::Colocated,
    TeRole::Colocated,
    TeRole::Prefill,
    TeRole::Decode,
];

proptest! {
    #[test]
    fn every_request_terminates_exactly_once(
        workload_salt in 0u64..1_000,
        rps_x10 in 5u64..30,
        crashes in prop::collection::vec((0u32..4, 500u64..25_000), 0..3),
        stragglers in prop::collection::vec(
            (0u32..4, 0u64..15_000, 1.5f64..6.0, 1_000u64..10_000), 0..2),
        degrades in prop::collection::vec(
            (0.05f64..0.9, 0u64..15_000, 1_000u64..10_000), 0..2),
        flakes in prop::collection::vec((0u64..15_000, 500u64..5_000), 0..2),
    ) {
        let mut plan = FaultPlan::none();
        for &(te, at) in &crashes {
            plan.push(SimTime::from_millis(at), FaultKind::TeCrash { te });
        }
        for &(te, at, factor, dur) in &stragglers {
            plan.push(
                SimTime::from_millis(at),
                FaultKind::Straggler { te, factor, duration: SimDuration::from_millis(dur) },
            );
        }
        for &(factor, at, dur) in &degrades {
            plan.push(
                SimTime::from_millis(at),
                FaultKind::LinkDegrade { factor, duration: SimDuration::from_millis(dur) },
            );
        }
        for &(at, dur) in &flakes {
            plan.push(
                SimTime::from_millis(at),
                FaultKind::TransferFlake { duration: SimDuration::from_millis(dur) },
            );
        }

        let mut rng = SimRng::seed_from_u64(
            chaos_seed().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ workload_salt,
        );
        let reqs = materialize_trace(
            &ChatTrace::paper(rps_x10 as f64 / 10.0).generate(&mut rng, 24),
            64_000,
        );
        let expected = reqs.len() as u64;

        let cfg = ClusterConfig {
            policy: Policy::Combined,
            ..ClusterConfig::standard_34b()
        };
        let mut sim = ClusterSim::new(cfg, &ROLES);
        sim.inject(reqs);
        sim.install_faults(&plan, FaultRecoveryConfig::default());
        let report = sim.run_to_completion();

        let (done, sub) = sim.progress();
        prop_assert_eq!(sub, expected);
        // Conservation: every request reaches exactly one terminal state.
        prop_assert_eq!(done + sim.failed(), sub);
        prop_assert_eq!(report.counters.get("sim.double_terminal"), 0);
        prop_assert_eq!(report.latency.completed(), done);
        prop_assert_eq!(report.counters.get("sim.completed"), done);
        prop_assert_eq!(report.counters.get("sim.failed"), sim.failed());
        prop_assert_eq!(report.failed, sim.failed());
        // Detection/repair bookkeeping balances: each detection starts
        // exactly one repair.
        prop_assert_eq!(
            report.counters.get("cluster.detected_down"),
            report.counters.get("cluster.repairs_started")
        );
    }
}

// ---- fleet chaos --------------------------------------------------------
//
// The fleet layer adds new in-flight state a crash can land inside:
// checkpoint loads, multicast forks, and requests parked waiting for a
// model. Conservation and replayability must survive all of it.

/// One faulted fleet run; asserts conservation internally and returns the
/// serialized report for replay comparison.
fn fleet_chaos_run(
    seed: u64,
    mode: ColdStartMode,
    models: usize,
    n_reqs: usize,
    plan: &FaultPlan,
) -> String {
    let mut rng = SimRng::seed_from_u64(seed);
    let specs = FleetTrace::skewed(models, 3.0).generate(&mut rng, n_reqs);
    let reqs = materialize_fleet_trace(&specs, 64_000);
    let expected = reqs.len() as u64;
    let roles = [TeRole::Colocated; 4];
    let mut sim = ClusterSim::new(ClusterConfig::standard_34b(), &roles);
    sim.enable_fleet(
        fleet_catalog(models),
        FleetConfig {
            mode,
            ..FleetConfig::default()
        },
    );
    sim.stage_fleet_on_ssd();
    sim.inject(reqs);
    sim.install_faults(plan, FaultRecoveryConfig::default());
    let mut report = sim.run_to_completion();

    let (done, sub) = sim.progress();
    assert_eq!(sub, expected);
    assert_eq!(done + sim.failed(), sub, "fleet conservation under faults");
    assert_eq!(report.counters.get("sim.double_terminal"), 0);
    assert_eq!(report.latency.completed(), done);
    report.to_json().to_json()
}

proptest! {
    /// Arbitrary crash/straggler plans against skewed fleet traces in
    /// every cold-start mode: each request terminates exactly once, and
    /// the identical `(seed, plan)` replays to byte-identical report JSON.
    #[test]
    fn fleet_requests_terminate_exactly_once(
        workload_salt in 0u64..1_000,
        models in 2usize..10,
        mode_idx in 0usize..3,
        crashes in prop::collection::vec((0u32..4, 500u64..25_000), 0..3),
        stragglers in prop::collection::vec(
            (0u32..4, 0u64..15_000, 1.5f64..6.0, 1_000u64..10_000), 0..2),
    ) {
        let mut plan = FaultPlan::none();
        for &(te, at) in &crashes {
            plan.push(SimTime::from_millis(at), FaultKind::TeCrash { te });
        }
        for &(te, at, factor, dur) in &stragglers {
            plan.push(
                SimTime::from_millis(at),
                FaultKind::Straggler { te, factor, duration: SimDuration::from_millis(dur) },
            );
        }
        let mode = [
            ColdStartMode::PrewarmMiss,
            ColdStartMode::Hierarchy,
            ColdStartMode::HierarchyMulticast,
        ][mode_idx];
        let seed = chaos_seed().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ workload_salt;
        let a = fleet_chaos_run(seed, mode, models, 20, &plan);
        let b = fleet_chaos_run(seed, mode, models, 20, &plan);
        prop_assert_eq!(a, b, "faulted fleet run must replay bit-for-bit");
    }
}

/// A TE crash landing *mid-checkpoint-load*: the first request's cold
/// start targets TE 0 (all tiers equal, lowest id wins); killing it at 2s
/// — squarely inside the multi-second load — must abort the load, re-run
/// the cold start elsewhere, and still complete every request.
#[test]
fn crash_mid_checkpoint_load_recovers() {
    let plan = FaultPlan::none().with_crash(SimTime::from_secs(2), 0);
    let go = || {
        let mut sim = ClusterSim::new(ClusterConfig::standard_34b(), &[TeRole::Colocated; 4]);
        sim.enable_fleet(fleet_catalog(1), FleetConfig::default());
        let specs = FleetTrace::skewed(1, 2.0).generate(&mut SimRng::seed_from_u64(3), 8);
        sim.inject(materialize_fleet_trace(&specs, 64_000));
        sim.install_faults(&plan, FaultRecoveryConfig::default());
        let mut report = sim.run_to_completion();
        let (done, sub) = sim.progress();
        assert_eq!(done + sim.failed(), sub, "conservation");
        assert_eq!(sim.failed(), 0, "waiters must be re-dispatched, not lost");
        assert!(
            report.counters.get("fleet.loads_aborted") >= 1,
            "the crash must land inside the load: {:?}",
            report.counters
        );
        assert!(
            report.counters.get("fleet.cold_starts") >= 2,
            "the aborted load must be retried on a surviving TE"
        );
        report.to_json().to_json()
    };
    assert_eq!(go(), go(), "crash-during-load must replay bit-for-bit");
}

/// A TE crash landing *mid-multicast*: heavy single-model pressure forks
/// replicas via the binary tree; crashing a fork target while the
/// multicast is in flight must drop only that replica and keep
/// conservation. Bit-for-bit replayable from `(seed, plan)`.
#[test]
fn crash_mid_multicast_recovers() {
    let plan = FaultPlan::none().with_crash(SimTime::from_secs(9), 3);
    let go = || {
        let mut sim = ClusterSim::new(ClusterConfig::standard_34b(), &[TeRole::Colocated; 4]);
        sim.enable_fleet(
            fleet_catalog(1),
            FleetConfig {
                mode: ColdStartMode::HierarchyMulticast,
                ..FleetConfig::default()
            },
        );
        sim.stage_fleet_on_ssd();
        // A concentrated burst: everyone wants the one model, so draining
        // the cold-start queue trips scale-out multicast.
        let specs = FleetTrace::skewed(1, 50.0).generate(&mut SimRng::seed_from_u64(5), 60);
        sim.inject(materialize_fleet_trace(&specs, 64_000));
        sim.install_faults(&plan, FaultRecoveryConfig::default());
        let mut report = sim.run_to_completion();
        let (done, sub) = sim.progress();
        assert_eq!(done + sim.failed(), sub, "conservation");
        assert_eq!(report.counters.get("sim.double_terminal"), 0);
        assert!(
            report.counters.get("fleet.cold_starts") >= 2,
            "pressure must trigger a scale-out load: {:?}",
            report.counters
        );
        report.to_json().to_json()
    };
    assert_eq!(go(), go(), "crash-during-multicast must replay bit-for-bit");
}
