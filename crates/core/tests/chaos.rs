//! Chaos suite: under *arbitrary* generated fault plans, every request must
//! terminate exactly once — finished, or failed-with-reason after retry
//! exhaustion. No hangs, no double-finishes, no lost requests.
//!
//! The driver's conservation invariant is `completed + failed == submitted`
//! with `sim.double_terminal == 0`; `run_to_completion` returning at all is
//! the no-hang half (a livelock trips the sim's event budget).
//!
//! CI runs this suite over a matrix of `CHAOS_SEED` values; the seed is
//! mixed into the workload generator so each matrix entry explores a
//! different deterministic slice of (workload x fault-plan) space.

use deepserve::{
    materialize_trace, ClusterConfig, ClusterSim, FaultRecoveryConfig, Policy, TeRole,
};
use proptest::prelude::*;
use simcore::{FaultKind, FaultPlan, SimDuration, SimRng, SimTime};
use workloads::ChatTrace;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Mixed pool: two colocated TEs plus one disaggregated pair, so plans hit
/// every recovery path (colocated re-dispatch, migration aborts, pair loss).
const ROLES: [TeRole; 4] = [
    TeRole::Colocated,
    TeRole::Colocated,
    TeRole::Prefill,
    TeRole::Decode,
];

proptest! {
    #[test]
    fn every_request_terminates_exactly_once(
        workload_salt in 0u64..1_000,
        rps_x10 in 5u64..30,
        crashes in prop::collection::vec((0u32..4, 500u64..25_000), 0..3),
        stragglers in prop::collection::vec(
            (0u32..4, 0u64..15_000, 1.5f64..6.0, 1_000u64..10_000), 0..2),
        degrades in prop::collection::vec(
            (0.05f64..0.9, 0u64..15_000, 1_000u64..10_000), 0..2),
        flakes in prop::collection::vec((0u64..15_000, 500u64..5_000), 0..2),
    ) {
        let mut plan = FaultPlan::none();
        for &(te, at) in &crashes {
            plan.push(SimTime::from_millis(at), FaultKind::TeCrash { te });
        }
        for &(te, at, factor, dur) in &stragglers {
            plan.push(
                SimTime::from_millis(at),
                FaultKind::Straggler { te, factor, duration: SimDuration::from_millis(dur) },
            );
        }
        for &(factor, at, dur) in &degrades {
            plan.push(
                SimTime::from_millis(at),
                FaultKind::LinkDegrade { factor, duration: SimDuration::from_millis(dur) },
            );
        }
        for &(at, dur) in &flakes {
            plan.push(
                SimTime::from_millis(at),
                FaultKind::TransferFlake { duration: SimDuration::from_millis(dur) },
            );
        }

        let mut rng = SimRng::seed_from_u64(
            chaos_seed().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ workload_salt,
        );
        let reqs = materialize_trace(
            &ChatTrace::paper(rps_x10 as f64 / 10.0).generate(&mut rng, 24),
            64_000,
        );
        let expected = reqs.len() as u64;

        let cfg = ClusterConfig {
            policy: Policy::Combined,
            ..ClusterConfig::standard_34b()
        };
        let mut sim = ClusterSim::new(cfg, &ROLES);
        sim.inject(reqs);
        sim.install_faults(&plan, FaultRecoveryConfig::default());
        let report = sim.run_to_completion();

        let (done, sub) = sim.progress();
        prop_assert_eq!(sub, expected);
        // Conservation: every request reaches exactly one terminal state.
        prop_assert_eq!(done + sim.failed(), sub);
        prop_assert_eq!(report.counters.get("sim.double_terminal"), 0);
        prop_assert_eq!(report.latency.completed(), done);
        prop_assert_eq!(report.counters.get("sim.completed"), done);
        prop_assert_eq!(report.counters.get("sim.failed"), sim.failed());
        prop_assert_eq!(report.failed, sim.failed());
        // Detection/repair bookkeeping balances: each detection starts
        // exactly one repair.
        prop_assert_eq!(
            report.counters.get("cluster.detected_down"),
            report.counters.get("cluster.repairs_started")
        );
    }
}
