//! Acceptance test for the observability layer: the per-request lifecycle
//! events in a traced cluster run must reconstruct the *same* TTFT/TPOT
//! distribution that the report's `LatencyStats` accumulated on the side.
//! This is what makes a `--trace` dump trustworthy — the trace is not a
//! parallel approximation of the run, it IS the run.

use std::collections::BTreeMap;

use deepserve::{
    fleet_catalog, materialize_fleet_trace, materialize_trace, ClusterConfig, ClusterSim,
    ColdStartMode, FaultRecoveryConfig, FleetConfig, Policy, TeRole,
};
use flowserve::EngineConfig;
use proptest::prelude::*;
use simcore::{FaultPlan, Samples, SimDuration, SimRng, SimTime, TraceLevel};
use workloads::{ChatTrace, FleetTrace};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

/// Runs a PD-disaggregated cluster (the Figure 4 code path, including KV
/// migrations over DistFlow) with lifecycle tracing on, then rebuilds every
/// request's TTFT/TPOT from trace events alone and compares percentiles
/// against the report.
#[test]
fn traced_run_reconstructs_report_latency() {
    let mut rng = SimRng::seed_from_u64(7);
    let reqs = materialize_trace(&ChatTrace::paper(6.0).generate(&mut rng, 80), 64_000);
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let roles = [TeRole::Prefill, TeRole::Prefill, TeRole::Decode];
    let mut sim = ClusterSim::new(cfg, &roles);
    sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
    sim.inject(reqs);
    let mut report = sim.run_to_completion();
    assert_eq!(
        report.trace.dropped, 0,
        "ring buffer must not overflow here"
    );

    // Index the three lifecycle points by request id. A request arrives
    // exactly once, emits first_token exactly once (on the prefill TE when
    // disaggregated), and finishes exactly once (on the decode TE).
    let mut arrival: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut first_token: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut finished: BTreeMap<u64, (SimTime, u64)> = BTreeMap::new();
    for e in report.trace.events_labeled("arrival") {
        let req = e.attr_u64("req").expect("arrival carries req");
        assert!(arrival.insert(req, e.at).is_none(), "duplicate arrival");
    }
    for e in report.trace.events_labeled("request.first_token") {
        let req = e.attr_u64("req").expect("first_token carries req");
        assert!(
            first_token.insert(req, e.at).is_none(),
            "duplicate first_token"
        );
    }
    for e in report.trace.events_labeled("request.finished") {
        let req = e.attr_u64("req").expect("finished carries req");
        let out = e.attr_u64("output_tokens").expect("finished carries count");
        assert!(
            finished.insert(req, (e.at, out)).is_none(),
            "duplicate finished"
        );
    }
    assert_eq!(
        finished.len() as u64,
        report.latency.completed(),
        "one finished event per completed request"
    );

    // Rebuild the distributions with the engine's own latency arithmetic:
    // ttft = first_token - arrival, tpot = (finished - first_token) over
    // (output_tokens - 1) inter-token gaps, integer-nanosecond division.
    let mut ttft = Samples::default();
    let mut tpot = Samples::default();
    for (req, &(end, out)) in &finished {
        let t0 = arrival[req];
        let t1 = first_token[req];
        assert!(t0 <= t1 && t1 <= end, "lifecycle order for req {req}");
        ttft.record(t1.since(t0).as_millis_f64());
        let gap = if out > 1 {
            SimDuration::from_nanos(end.since(t1).as_nanos() / (out - 1))
        } else {
            SimDuration::ZERO
        };
        tpot.record(gap.as_millis_f64());
    }

    let (rt, tt) = (ttft.summary(), tpot.summary());
    let (rr, tr) = (report.latency.ttft_ms(), report.latency.tpot_ms());
    assert_eq!(rt.count, rr.count);
    assert!(close(rt.p50, rr.p50), "ttft p50 {} vs {}", rt.p50, rr.p50);
    assert!(close(rt.p90, rr.p90), "ttft p90 {} vs {}", rt.p90, rr.p90);
    assert!(close(rt.p99, rr.p99), "ttft p99 {} vs {}", rt.p99, rr.p99);
    assert!(close(tt.p50, tr.p50), "tpot p50 {} vs {}", tt.p50, tr.p50);
    assert!(close(tt.p90, tr.p90), "tpot p90 {} vs {}", tt.p90, tr.p90);
    assert!(close(tt.p99, tr.p99), "tpot p99 {} vs {}", tt.p99, tr.p99);

    // The registry's sample metrics are fed from the same stream.
    let m = report
        .metrics
        .summary("cluster.ttft_ms")
        .expect("registered");
    assert_eq!(m.count, rr.count);
    assert!(close(m.p90, rr.p90));
}

/// A traced run must be byte-identical in outcome to an untraced one:
/// tracing is observation, never perturbation.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let run = |traced: bool| {
        let mut rng = SimRng::seed_from_u64(11);
        let reqs = materialize_trace(&ChatTrace::paper(4.0).generate(&mut rng, 40), 64_000);
        let cfg = ClusterConfig {
            policy: Policy::Combined,
            ..ClusterConfig::standard_34b()
        };
        let mut sim = ClusterSim::new(cfg, &[TeRole::Colocated, TeRole::Colocated]);
        if traced {
            sim.enable_tracing(TraceLevel::Full, 1 << 20);
        }
        sim.inject(reqs);
        let mut report = sim.run_to_completion();
        (
            report.makespan,
            report.latency.completed(),
            report.latency.ttft_ms().p99,
            report.latency.tpot_ms().p99,
        )
    };
    assert_eq!(run(false), run(true));
}

/// A faulted cluster with a crash plan installed.
fn faulted_sim() -> ClusterSim {
    faulted_sim_paced(true)
}

fn faulted_sim_paced(fast_forward: bool) -> ClusterSim {
    let mut rng = SimRng::seed_from_u64(13);
    let reqs = materialize_trace(&ChatTrace::paper(1.5).generate(&mut rng, 50), 64_000);
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let plan = FaultPlan::none()
        .with_crash(SimTime::from_secs(6), 0)
        .with_straggler(SimTime::from_secs(2), 1, 3.0, SimDuration::from_secs(5))
        .with_transfer_flake(SimTime::from_secs(1), SimDuration::from_secs(3));
    let roles = [TeRole::Colocated, TeRole::Colocated, TeRole::Colocated];
    let mut sim = ClusterSim::new(cfg, &roles);
    sim.set_fast_forward(fast_forward);
    sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
    sim.inject(reqs);
    sim.install_faults(&plan, FaultRecoveryConfig::default());
    sim
}

/// The determinism contract extends to faulted runs: the same
/// `(workload seed, fault plan)` must replay to byte-identical report JSON
/// and trace JSON, crashes and all.
#[test]
fn faulted_replay_is_bit_identical() {
    let go = || {
        let mut sim = faulted_sim();
        let mut report = sim.run_to_completion();
        assert!(
            report.counters.get("cluster.failures") >= 1,
            "the plan must actually crash something"
        );
        (report.to_json().to_json(), report.trace.to_json().to_json())
    };
    assert_eq!(go(), go());
}

/// Trace/report consistency holds through re-queues: a request that was
/// re-dispatched after a crash emits a *new* `request.first_token` from the
/// attempt that completed it, so rebuilding TTFT/TPOT with last-wins
/// first-token events must still match the report percentiles.
#[test]
fn faulted_trace_reconstructs_report_latency() {
    let mut sim = faulted_sim();
    let mut report = sim.run_to_completion();
    assert_eq!(report.trace.dropped, 0);
    let (done, sub) = sim.progress();
    assert_eq!(done + sim.failed(), sub);
    assert!(
        report.counters.get("sim.requeued") >= 1,
        "the crash must hit at least one in-flight request"
    );

    let mut arrival: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut first_token: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut finished: BTreeMap<u64, (SimTime, u64)> = BTreeMap::new();
    for e in report.trace.events_labeled("arrival") {
        let req = e.attr_u64("req").expect("arrival carries req");
        assert!(arrival.insert(req, e.at).is_none(), "duplicate arrival");
    }
    for e in report.trace.events_labeled("request.first_token") {
        let req = e.attr_u64("req").expect("first_token carries req");
        // Last-wins: a crashed attempt's first token is superseded by the
        // re-prefilled attempt that actually delivered the stream.
        let latest = first_token.entry(req).or_insert(e.at);
        *latest = (*latest).max(e.at);
    }
    for e in report.trace.events_labeled("request.finished") {
        let req = e.attr_u64("req").expect("finished carries req");
        let out = e.attr_u64("output_tokens").expect("finished carries count");
        assert!(
            finished.insert(req, (e.at, out)).is_none(),
            "a request must finish at most once, even when requeued"
        );
    }
    assert_eq!(finished.len() as u64, report.latency.completed());
    let failed_events = report.trace.events_labeled("request.failed").count() as u64;
    assert_eq!(
        failed_events, report.failed,
        "one failure event per failure"
    );

    let mut ttft = Samples::default();
    let mut tpot = Samples::default();
    for (req, &(end, out)) in &finished {
        let t0 = arrival[req];
        let t1 = first_token[req];
        assert!(t0 <= t1 && t1 <= end, "lifecycle order for req {req}");
        ttft.record(t1.since(t0).as_millis_f64());
        let gap = if out > 1 {
            SimDuration::from_nanos(end.since(t1).as_nanos() / (out - 1))
        } else {
            SimDuration::ZERO
        };
        tpot.record(gap.as_millis_f64());
    }
    let (rt, tt) = (ttft.summary(), tpot.summary());
    let (rr, tr) = (report.latency.ttft_ms(), report.latency.tpot_ms());
    assert_eq!(rt.count, rr.count);
    assert!(close(rt.p50, rr.p50), "ttft p50 {} vs {}", rt.p50, rr.p50);
    assert!(close(rt.p99, rr.p99), "ttft p99 {} vs {}", rt.p99, rr.p99);
    assert!(close(tt.p50, tr.p50), "tpot p50 {} vs {}", tt.p50, tr.p50);
    assert!(close(tt.p99, tr.p99), "tpot p99 {} vs {}", tt.p99, tr.p99);
}

// ---- decode fast-forward (macro-stepping) equivalence -------------------
//
// Fast-forward changes how the simulator executes (how many events it
// processes), never what it computes: the serialized `RunReport` must be
// byte-identical with macro-stepping on and off.

/// One full run at the given pacing; returns the serialized report and the
/// number of events the simulator processed.
fn run_paced(
    fast_forward: bool,
    roles: &[TeRole],
    engine: EngineConfig,
    seed: u64,
    rps: f64,
    n_reqs: usize,
    faulted: bool,
) -> (String, u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let reqs = materialize_trace(&ChatTrace::paper(rps).generate(&mut rng, n_reqs), 64_000);
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        engine,
        ..ClusterConfig::standard_34b()
    };
    let mut sim = ClusterSim::new(cfg, roles);
    sim.set_fast_forward(fast_forward);
    sim.inject(reqs);
    if faulted {
        let plan = FaultPlan::none()
            .with_crash(SimTime::from_secs(6), 0)
            .with_straggler(SimTime::from_secs(2), 1, 3.0, SimDuration::from_secs(5))
            .with_transfer_flake(SimTime::from_secs(1), SimDuration::from_secs(3));
        sim.install_faults(&plan, FaultRecoveryConfig::default());
    }
    let mut report = sim.run_to_completion();
    (report.to_json().to_json(), sim.events_processed())
}

proptest! {
    /// Random workloads x random engine configs x random topologies, with
    /// and without faults: fast-forward on vs off must produce
    /// byte-identical serialized `RunReport`s.
    #[test]
    fn fast_forward_is_bit_identical(
        seed in 0u64..10_000,
        rps_x10 in 5u64..60,
        n_reqs in 8usize..40,
        topo in 0usize..4,
        max_batch in 4usize..48,
        chunk_idx in 0usize..2,
        faulted in 0usize..2,
    ) {
        let roles: &[TeRole] = match topo {
            0 => &[TeRole::Colocated, TeRole::Colocated],
            1 => &[TeRole::Colocated, TeRole::Colocated, TeRole::Colocated],
            2 => &[TeRole::Prefill, TeRole::Prefill, TeRole::Decode],
            _ => &[TeRole::Prefill, TeRole::Decode, TeRole::Colocated],
        };
        let engine = EngineConfig {
            max_batch,
            prefill_chunk_tokens: [256, 512][chunk_idx],
            ..EngineConfig::colocated()
        };
        let rps = rps_x10 as f64 / 10.0;
        let ff = run_paced(true, roles, engine.clone(), seed, rps, n_reqs, faulted == 1);
        let ss = run_paced(false, roles, engine, seed, rps, n_reqs, faulted == 1);
        prop_assert_eq!(&ff.0, &ss.0, "fast-forward diverged from single-step");
    }
}

/// Directed PD-disaggregated scenario (KV migrations, populate transfers):
/// identical reports, strictly fewer events with fast-forward.
#[test]
fn fast_forward_matches_single_step_disaggregated() {
    let roles = [TeRole::Prefill, TeRole::Prefill, TeRole::Decode];
    let engine = EngineConfig::colocated();
    let ff = run_paced(true, &roles, engine.clone(), 7, 6.0, 80, false);
    let ss = run_paced(false, &roles, engine, 7, 6.0, 80, false);
    assert_eq!(ff.0, ss.0);
    assert!(
        ff.1 < ss.1,
        "fast-forward must absorb decode wakes: {} vs {} events",
        ff.1,
        ss.1
    );
}

/// Directed colocated decode-heavy scenario: the macro-stepping sweet spot.
/// Reports identical; the event count drops by a large factor.
#[test]
fn fast_forward_reduces_events() {
    let roles = [TeRole::Colocated, TeRole::Colocated];
    let engine = EngineConfig::colocated();
    let ff = run_paced(true, &roles, engine.clone(), 11, 2.0, 40, false);
    let ss = run_paced(false, &roles, engine, 11, 2.0, 40, false);
    assert_eq!(ff.0, ss.0);
    assert!(
        ff.1 * 2 < ss.1,
        "expected >= 2x fewer events on a decode-heavy run: {} vs {}",
        ff.1,
        ss.1
    );
}

// ---- conservative parallel stepping equivalence -------------------------
//
// Multi-threaded engine advance is, like fast-forward, a pure execution
// strategy: the coordinator merges worker results in the exact sequential
// order, so report JSON *and* trace JSON must be byte-identical at any
// thread count.

/// One full traced run at the given thread count; returns the serialized
/// report and the serialized lifecycle trace.
#[allow(clippy::too_many_arguments)]
fn run_threaded(
    threads: usize,
    fast_forward: bool,
    roles: &[TeRole],
    engine: EngineConfig,
    seed: u64,
    rps: f64,
    n_reqs: usize,
    faulted: bool,
) -> (String, String) {
    let mut rng = SimRng::seed_from_u64(seed);
    let reqs = materialize_trace(&ChatTrace::paper(rps).generate(&mut rng, n_reqs), 64_000);
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        engine,
        ..ClusterConfig::standard_34b()
    };
    let mut sim = ClusterSim::new(cfg, roles);
    sim.set_threads(threads);
    sim.set_fast_forward(fast_forward);
    sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
    sim.inject(reqs);
    if faulted {
        let plan = FaultPlan::none()
            .with_crash(SimTime::from_secs(6), 0)
            .with_straggler(SimTime::from_secs(2), 1, 3.0, SimDuration::from_secs(5))
            .with_transfer_flake(SimTime::from_secs(1), SimDuration::from_secs(3));
        sim.install_faults(&plan, FaultRecoveryConfig::default());
    }
    let mut report = sim.run_to_completion();
    (report.to_json().to_json(), report.trace.to_json().to_json())
}

proptest! {
    /// Random workloads x topologies x pacings x faults: the sequential
    /// loop vs worker pools of 2–8 threads (odd counts included, and —
    /// with 2-3 TE topologies — always some cases where threads exceed
    /// engines) must produce byte-identical serialized reports AND traces.
    #[test]
    fn parallel_stepping_is_bit_identical(
        seed in 0u64..10_000,
        rps_x10 in 5u64..60,
        n_reqs in 8usize..40,
        topo in 0usize..4,
        max_batch in 4usize..48,
        fast_forward in 0usize..2,
        faulted in 0usize..2,
        threads_idx in 0usize..5,
    ) {
        let roles: &[TeRole] = match topo {
            0 => &[TeRole::Colocated, TeRole::Colocated],
            1 => &[TeRole::Colocated, TeRole::Colocated, TeRole::Colocated],
            2 => &[TeRole::Prefill, TeRole::Prefill, TeRole::Decode],
            _ => &[TeRole::Prefill, TeRole::Decode, TeRole::Colocated],
        };
        let engine = EngineConfig {
            max_batch,
            ..EngineConfig::colocated()
        };
        let threads = [2usize, 3, 4, 5, 8][threads_idx];
        let rps = rps_x10 as f64 / 10.0;
        let ff = fast_forward == 1;
        let seq = run_threaded(1, ff, roles, engine.clone(), seed, rps, n_reqs, faulted == 1);
        let par = run_threaded(threads, ff, roles, engine, seed, rps, n_reqs, faulted == 1);
        prop_assert_eq!(&seq.0, &par.0, "parallel report diverged at {} threads", threads);
        prop_assert_eq!(&seq.1, &par.1, "parallel trace diverged at {} threads", threads);
    }
}

/// Directed PD-disaggregated scenario under parallel stepping: decode
/// wake batches run concurrently while KV migrations, populate transfers
/// and prefill wakes stay coordinator-side — reports and traces must not
/// move by a byte at any thread count.
#[test]
fn parallel_stepping_matches_sequential_disaggregated() {
    let roles = [TeRole::Prefill, TeRole::Prefill, TeRole::Decode];
    let seq = run_threaded(
        1,
        true,
        &roles,
        EngineConfig::colocated(),
        7,
        6.0,
        80,
        false,
    );
    for threads in [2, 3, 4, 5, 8] {
        let par = run_threaded(
            threads,
            true,
            &roles,
            EngineConfig::colocated(),
            7,
            6.0,
            80,
            false,
        );
        assert_eq!(seq.0, par.0, "report diverged at {threads} threads");
        assert_eq!(seq.1, par.1, "trace diverged at {threads} threads");
    }
}

/// Directed faulted scenario (TeCrash + Straggler + TransferFlake) under
/// parallel stepping: crashes land between batches (fault events bound the
/// lookahead window), so recovery, re-queues and repairs replay exactly.
#[test]
fn parallel_stepping_matches_sequential_faulted() {
    let roles = [TeRole::Colocated, TeRole::Colocated, TeRole::Colocated];
    let seq = run_threaded(
        1,
        true,
        &roles,
        EngineConfig::colocated(),
        13,
        1.5,
        50,
        true,
    );
    for threads in [2, 3, 4, 5, 8] {
        let par = run_threaded(
            threads,
            true,
            &roles,
            EngineConfig::colocated(),
            13,
            1.5,
            50,
            true,
        );
        assert_eq!(seq.0, par.0, "faulted report diverged at {threads} threads");
        assert_eq!(seq.1, par.1, "faulted trace diverged at {threads} threads");
    }
}

/// Faults, stragglers and migrations force single-step fallback on the
/// affected TEs — and the overall outcome (latencies, counters, failure
/// set, makespan) still matches single-stepping bit for bit, trace
/// included for the lifecycle level.
#[test]
fn fast_forward_matches_single_step_faulted() {
    // Macro-stepping legitimately coarsens the *iteration* spans in a
    // trace, so raw traces differ; every request-level milestone must
    // still land at the exact single-step instant.
    let lifecycle = |report: &mut deepserve::RunReport| {
        let mut stream: Vec<(String, u64, simcore::SimTime)> = Vec::new();
        for label in [
            "arrival",
            "request.first_token",
            "request.finished",
            "request.failed",
            "request.requeued",
        ] {
            for e in report.trace.events_labeled(label) {
                stream.push((label.to_string(), e.attr_u64("req").unwrap_or(0), e.at));
            }
        }
        stream.sort();
        stream
    };
    let go = |ff: bool| {
        let mut sim = faulted_sim_paced(ff);
        let mut report = sim.run_to_completion();
        assert!(report.counters.get("cluster.failures") >= 1);
        let stream = lifecycle(&mut report);
        (report.to_json().to_json(), stream)
    };
    let (ff_report, ff_stream) = go(true);
    let (ss_report, ss_stream) = go(false);
    assert_eq!(ff_report, ss_report);
    assert_eq!(ff_stream, ss_stream);
}

// ---- model-fleet determinism --------------------------------------------
//
// The fleet layer (cold starts through the storage hierarchy, multicast
// scale-out, HBM eviction) routes everything through `sched`, so the same
// contract applies: report AND trace byte-identical at any thread count,
// with fast-forward on or off, in every cold-start mode.

/// One full traced fleet run over a skewed multi-model trace; returns the
/// serialized report and the serialized lifecycle trace.
fn run_fleet(
    threads: usize,
    fast_forward: bool,
    mode: ColdStartMode,
    seed: u64,
    models: usize,
    n_reqs: usize,
) -> (String, String) {
    let mut rng = SimRng::seed_from_u64(seed);
    let specs = FleetTrace::skewed(models, 4.0).generate(&mut rng, n_reqs);
    let reqs = materialize_fleet_trace(&specs, 64_000);
    let roles = [TeRole::Colocated, TeRole::Colocated, TeRole::Colocated];
    let mut sim = ClusterSim::new(ClusterConfig::standard_34b(), &roles);
    sim.set_threads(threads);
    sim.set_fast_forward(fast_forward);
    sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
    let cfg = FleetConfig {
        mode,
        ..FleetConfig::default()
    };
    sim.enable_fleet(fleet_catalog(models), cfg);
    sim.stage_fleet_on_ssd();
    sim.inject(reqs);
    let mut report = sim.run_to_completion();
    let (done, sub) = sim.progress();
    assert_eq!(done + sim.failed(), sub, "fleet conservation");
    (report.to_json().to_json(), report.trace.to_json().to_json())
}

proptest! {
    /// Random fleet workloads x thread counts x pacings x cold-start
    /// modes: the sequential loop vs worker pools must produce
    /// byte-identical serialized reports AND traces.
    #[test]
    fn fleet_runs_are_bit_identical(
        seed in 0u64..10_000,
        models in 3usize..24,
        n_reqs in 8usize..32,
        fast_forward in 0usize..2,
        threads_idx in 0usize..5,
        mode_idx in 0usize..3,
    ) {
        let mode = [
            ColdStartMode::PrewarmMiss,
            ColdStartMode::Hierarchy,
            ColdStartMode::HierarchyMulticast,
        ][mode_idx];
        let threads = [2usize, 3, 4, 5, 8][threads_idx];
        let ff = fast_forward == 1;
        let seq = run_fleet(1, ff, mode, seed, models, n_reqs);
        let par = run_fleet(threads, ff, mode, seed, models, n_reqs);
        prop_assert_eq!(&seq.0, &par.0, "fleet report diverged at {} threads", threads);
        prop_assert_eq!(&seq.1, &par.1, "fleet trace diverged at {} threads", threads);
    }
}

/// Directed fleet scenario: skewed 16-model trace, hierarchy cold starts.
/// Reports and traces must not move by a byte across thread counts or
/// fast-forward settings — and replaying the identical configuration
/// reproduces the run exactly.
#[test]
fn fleet_replay_is_bit_identical_across_threads() {
    let base = run_fleet(1, true, ColdStartMode::Hierarchy, 17, 16, 40);
    assert_eq!(
        base,
        run_fleet(1, true, ColdStartMode::Hierarchy, 17, 16, 40),
        "same seed must replay exactly"
    );
    for threads in [2, 3, 4, 5, 8] {
        let par = run_fleet(threads, true, ColdStartMode::Hierarchy, 17, 16, 40);
        assert_eq!(base.0, par.0, "fleet report diverged at {threads} threads");
        assert_eq!(base.1, par.1, "fleet trace diverged at {threads} threads");
    }
    // Fast-forward changes how many engine iterations the trace records
    // (macro-stepping coarsens iteration spans), so only the *report* is
    // byte-comparable across pacings — same caveat as
    // `fast_forward_matches_single_step_faulted`.
    let ss = run_fleet(1, false, ColdStartMode::Hierarchy, 17, 16, 40);
    assert_eq!(base.0, ss.0, "fast-forward diverged on the fleet path");
}

/// Same contract with multicast scale-out in play: a hot head model under
/// a concentrated trace forks replicas mid-run, and the run still replays
/// byte-for-byte at every thread count.
#[test]
fn fleet_multicast_is_bit_identical_across_threads() {
    // Few models + real pressure so scale-out actually triggers.
    let base = run_fleet(1, true, ColdStartMode::HierarchyMulticast, 5, 3, 60);
    for threads in [2, 3, 4, 5, 8] {
        let par = run_fleet(threads, true, ColdStartMode::HierarchyMulticast, 5, 3, 60);
        assert_eq!(
            base.0, par.0,
            "multicast report diverged at {threads} threads"
        );
        assert_eq!(
            base.1, par.1,
            "multicast trace diverged at {threads} threads"
        );
    }
    let ss = run_fleet(1, false, ColdStartMode::HierarchyMulticast, 5, 3, 60);
    assert_eq!(base.0, ss.0, "fast-forward diverged with multicast");
}

/// One full traced run with streaming injection (one-lookahead arrival
/// admission): the trace generator stays a lazy iterator end to end.
#[allow(clippy::too_many_arguments)]
fn run_streamed(
    threads: usize,
    fast_forward: bool,
    roles: &[TeRole],
    engine: EngineConfig,
    seed: u64,
    rps: f64,
    n_reqs: usize,
) -> (String, String) {
    let stream = ChatTrace::paper(rps).stream(SimRng::seed_from_u64(seed).fork(), n_reqs);
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        engine,
        ..ClusterConfig::standard_34b()
    };
    let mut sim = ClusterSim::new(cfg, roles);
    sim.set_threads(threads);
    sim.set_fast_forward(fast_forward);
    sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
    sim.inject_stream(deepserve::stream_trace(stream, 64_000));
    let mut report = sim.run_to_completion();
    (report.to_json().to_json(), report.trace.to_json().to_json())
}

proptest! {
    /// Streaming injection vs materialized injection: a `ChatTrace` fed
    /// lazily through `inject_stream` (O(1) resident requests) must
    /// reproduce the materialized `inject` run byte for byte — same
    /// report, same trace — across thread counts and pacing modes.
    #[test]
    fn streaming_injection_is_bit_identical(
        seed in 0u64..10_000,
        rps_x10 in 5u64..60,
        n_reqs in 8usize..40,
        topo in 0usize..4,
        fast_forward in 0usize..2,
        threads_idx in 0usize..6,
    ) {
        let roles: &[TeRole] = match topo {
            0 => &[TeRole::Colocated, TeRole::Colocated],
            1 => &[TeRole::Colocated, TeRole::Colocated, TeRole::Colocated],
            2 => &[TeRole::Prefill, TeRole::Prefill, TeRole::Decode],
            _ => &[TeRole::Prefill, TeRole::Decode, TeRole::Colocated],
        };
        let threads = [1usize, 2, 3, 4, 5, 8][threads_idx];
        let rps = rps_x10 as f64 / 10.0;
        let ff = fast_forward == 1;
        let engine = EngineConfig::colocated();
        let mat = run_threaded(threads, ff, roles, engine.clone(), seed, rps, n_reqs, false);
        let streamed = run_streamed(threads, ff, roles, engine, seed, rps, n_reqs);
        prop_assert_eq!(&mat.0, &streamed.0, "streaming report diverged at {} threads", threads);
        prop_assert_eq!(&mat.1, &streamed.1, "streaming trace diverged at {} threads", threads);
    }
}

/// Wide parallel windows are a pure scheduling optimization: with them
/// disabled (prefill wakes end collection, PR 4 behavior) the run must
/// not move by a byte — and with them enabled on a PD-disaggregated
/// topology, prefill wakes must actually join batches.
#[test]
fn wide_windows_are_pure_perf_and_actually_widen() {
    let roles = [TeRole::Prefill, TeRole::Prefill, TeRole::Decode];
    let run = |wide: bool| {
        let mut rng = SimRng::seed_from_u64(7);
        let reqs = materialize_trace(&ChatTrace::paper(6.0).generate(&mut rng, 80), 64_000);
        let cfg = ClusterConfig {
            policy: Policy::Combined,
            ..ClusterConfig::standard_34b()
        };
        let mut sim = ClusterSim::new(cfg, &roles);
        sim.set_threads(4);
        sim.set_fast_forward(true);
        sim.set_wide_windows(wide);
        sim.enable_tracing(TraceLevel::Lifecycle, 1 << 20);
        sim.inject(reqs);
        let mut report = sim.run_to_completion();
        let stats = sim.exec_stats();
        (
            report.to_json().to_json(),
            report.trace.to_json().to_json(),
            stats,
        )
    };
    let narrow = run(false);
    let wide = run(true);
    assert_eq!(narrow.0, wide.0, "wide windows changed the report");
    assert_eq!(narrow.1, wide.1, "wide windows changed the trace");
    let (_, _, (n_batches, n_members, n_prefill, n_seq)) = narrow.clone();
    let (_, _, (w_batches, w_members, w_prefill, w_seq)) = wide;
    assert_eq!(
        n_prefill, 0,
        "narrow batches must not contain prefill wakes"
    );
    assert!(w_prefill > 0, "wide batches must contain prefill wakes");
    assert!(
        n_seq > 0,
        "narrow windows must force prefill wakes through the sequential path"
    );
    // Effective width counts forced-sequential wakes as width-1 windows;
    // admitting prefill wakes must widen it.
    let eff =
        |batches: u64, members: u64, seq: u64| (members + seq) as f64 / (batches + seq) as f64;
    assert!(
        eff(w_batches, w_members, w_seq) >= eff(n_batches, n_members, n_seq),
        "wide windows must not shrink effective window width: \
         wide ({w_members}+{w_seq})/({w_batches}+{w_seq}), \
         narrow ({n_members}+{n_seq})/({n_batches}+{n_seq})"
    );
}
