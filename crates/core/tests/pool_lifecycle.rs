//! Lifecycle edge cases for the persistent worker pool behind parallel
//! cluster stepping: mid-run `set_threads` reconfiguration, dropping a
//! pool whose workers are parked, worker panic propagation (a poisoned
//! pool must fail loudly, never deadlock), and reassembly order under
//! work-stealing. Byte-identity across thread counts at steady state is
//! covered by `trace_consistency.rs`; this file covers the transitions.

use deepserve::{ClusterConfig, ClusterSim, Policy, PoolMember, TeRole, WorkerPool};
use flowserve::{Engine, EngineConfig, Pacing};
use llm_model::{ExecCostModel, ModelSpec, Parallelism};
use npu::specs::ClusterSpec;
use simcore::{SimRng, SimTime};
use workloads::ChatTrace;

/// A small PD-mixed cluster with a fixed injected workload.
fn sim_with(threads: usize) -> ClusterSim {
    let mut rng = SimRng::seed_from_u64(29);
    let reqs = deepserve::materialize_trace(&ChatTrace::paper(6.0).generate(&mut rng, 60), 64_000);
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let roles = [TeRole::Prefill, TeRole::Decode, TeRole::Colocated];
    let mut sim = ClusterSim::new(cfg, &roles);
    sim.set_threads(threads);
    sim.inject(reqs);
    sim
}

fn finish(mut sim: ClusterSim) -> (String, u64) {
    let mut report = sim.run_to_completion();
    (report.to_json().to_json(), report.latency.completed())
}

/// Reconfiguring the pool mid-run (4 -> 2 -> 5 threads, each swap tearing
/// down one pool generation and standing up the next) must not move the
/// report by a byte relative to a constant single-threaded run.
#[test]
fn set_threads_reconfigures_mid_run() {
    let expect = finish(sim_with(1));

    let mut sim = sim_with(4);
    sim.step_until(SimTime::from_secs(3));
    sim.set_threads(2);
    sim.step_until(SimTime::from_secs(6));
    sim.set_threads(5);
    let got = finish(sim);

    assert!(expect.1 > 0, "workload must actually complete requests");
    assert_eq!(expect, got, "mid-run reconfiguration diverged");
}

/// A pool whose workers never received a job (and a sim whose pool was
/// stood up but never dispatched into) must tear down promptly: close
/// wakes every parked worker and join returns.
#[test]
fn drop_while_workers_parked() {
    for threads in [2, 5, 8] {
        let pool = WorkerPool::new(threads);
        assert_eq!(pool.workers(), threads - 1);
        drop(pool);
    }
    // Cluster-level: `set_threads` creates the pool eagerly; dropping the
    // sim without ever running drops it with workers still parked.
    let sim = sim_with(6);
    drop(sim);
}

fn test_engine() -> Engine {
    let cluster = ClusterSpec::gen2_cluster(1);
    let cost = ExecCostModel::new(
        cluster.server.chip.clone(),
        cluster.hccs,
        ModelSpec::internal_34b(),
        Parallelism::tp(4),
    );
    Engine::new(EngineConfig::colocated(), cost)
}

/// Members come back in their original order regardless of which lane
/// finished first — with 10 members over 3 lanes the round splits into
/// multiple stealable chunks, and repeated rounds exercise the epoch
/// counter and the chunk-vector recycling.
#[test]
fn advance_preserves_member_order_across_rounds() {
    let mut pool = WorkerPool::new(3);
    for _ in 0..5 {
        let mut members: Vec<PoolMember> = (1..=10)
            .map(|i| PoolMember {
                at: SimTime::from_secs(i),
                engine: test_engine(),
                buf: Vec::new(),
            })
            .collect();
        pool.advance(Pacing::SingleStep, &mut members);
        let ats: Vec<SimTime> = members.iter().map(|m| m.at).collect();
        let expect: Vec<SimTime> = (1..=10).map(SimTime::from_secs).collect();
        assert_eq!(ats, expect, "pool reassembly reordered the wave");
    }
    // An empty round is a no-op, not a hang.
    let mut none: Vec<PoolMember> = Vec::new();
    pool.advance(Pacing::SingleStep, &mut none);
    assert!(none.is_empty());
}

/// A panic inside a worker must surface as a loud coordinator panic
/// carrying the worker's message — not a deadlocked `recv` — and the
/// poisoned pool must still tear down cleanly afterwards.
#[test]
fn worker_panic_fails_loudly_not_deadlocked() {
    let mut pool = WorkerPool::new(4);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.inject_worker_panic()))
        .expect_err("injected worker panic must propagate to the coordinator");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string payload>".to_string());
    assert!(
        msg.contains("worker pool poisoned") && msg.contains("injected worker panic"),
        "unexpected panic message: {msg}"
    );
    // Workers caught the panic and kept looping; the pool still advances
    // a healthy round and then drops without hanging.
    let mut members: Vec<PoolMember> = (1..=4)
        .map(|i| PoolMember {
            at: SimTime::from_secs(i),
            engine: test_engine(),
            buf: Vec::new(),
        })
        .collect();
    pool.advance(Pacing::SingleStep, &mut members);
    assert_eq!(members.len(), 4);
    drop(pool);
}

/// The inline (no-worker) variant of the injection hook takes the same
/// fail-loud path.
#[test]
fn worker_panic_propagates_without_workers() {
    let mut pool = WorkerPool::new(1);
    assert_eq!(pool.workers(), 0);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.inject_worker_panic()))
        .expect_err("inline injected panic must propagate");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string payload>".to_string());
    assert!(msg.contains("worker pool poisoned"), "{msg}");
}

/// Stress: 200 event rounds stepped one pending-event time at a time,
/// with the pool torn down and rebuilt every 10 rounds cycling through
/// {2, 5, 8} threads. Twenty pool generations across three widths while
/// requests are in flight must not move the report by a byte relative to
/// a constant single-threaded run.
#[test]
fn churned_stress_200_rounds_is_bit_identical() {
    let expect = finish(sim_with(1));

    let mut sim = sim_with(2);
    let churn = [2usize, 5, 8];
    let mut swaps = 0;
    let mut rounds = 0;
    while rounds < 200 {
        let Some(next) = sim.next_event_time() else {
            break;
        };
        sim.step_until(next);
        rounds += 1;
        if rounds % 10 == 0 {
            swaps += 1;
            sim.set_threads(churn[swaps % churn.len()]);
        }
    }
    assert_eq!(
        rounds, 200,
        "workload drained before the churn schedule ran"
    );
    assert_eq!(swaps, 20, "every scheduled reconfiguration must have fired");
    let got = finish(sim);

    assert!(expect.1 > 0, "workload must actually complete requests");
    assert_eq!(expect, got, "thread churn under load diverged");
}

/// A worker panic during the *final* round before teardown: the poisoned
/// pool's Drop must still close the queue, wake every parked worker and
/// join all of them — a hang here is the lost-wakeup/teardown bug class
/// the model checker guards (`detcheck` covers the same path
/// exhaustively in `pool_model.rs`).
#[test]
fn worker_panic_during_final_round_still_joins_on_drop() {
    let mut pool = WorkerPool::new(5);
    assert_eq!(pool.workers(), 4);
    // A few healthy rounds first, so workers are warm and parked again.
    for _ in 0..3 {
        let mut members: Vec<PoolMember> = (1..=4)
            .map(|i| PoolMember {
                at: SimTime::from_secs(i),
                engine: test_engine(),
                buf: Vec::new(),
            })
            .collect();
        pool.advance(Pacing::SingleStep, &mut members);
    }
    // Final round: a worker panics mid-round.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.inject_worker_panic()))
        .expect_err("injected worker panic must propagate to the coordinator");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string payload>".to_string());
    assert!(msg.contains("worker pool poisoned"), "{msg}");
    // No healthy round in between: teardown happens directly after the
    // poisoned round. Drop must join all four workers without hanging.
    drop(pool);
}

/// More threads than engines (8 threads, 2 TEs) still produces the
/// reference report: excess lanes just idle.
#[test]
fn threads_exceeding_engines_is_bit_identical() {
    let run = |threads: usize| {
        let mut rng = SimRng::seed_from_u64(31);
        let reqs =
            deepserve::materialize_trace(&ChatTrace::paper(8.0).generate(&mut rng, 48), 64_000);
        let cfg = ClusterConfig {
            policy: Policy::Combined,
            ..ClusterConfig::standard_34b()
        };
        let mut sim = ClusterSim::new(cfg, &[TeRole::Colocated, TeRole::Colocated]);
        sim.set_threads(threads);
        sim.inject(reqs);
        let mut report = sim.run_to_completion();
        (report.to_json().to_json(), report.trace.to_json().to_json())
    };
    let reference = run(1);
    for threads in [3, 8] {
        assert_eq!(reference, run(threads), "diverged at {threads} threads");
    }
}
