//! The cluster manager: pre-warmed resource pools, predictive DRAM
//! pre-loading, and the AUTOSCALER policy (§3, §6, §6.1, §6.2).
//!
//! "The cluster manager is a highly available system that oversees and
//! scales all JEs and TEs." High availability is organizational (replicated
//! deployment); what this module implements is the decision logic: when to
//! scale, which resources a scale-up can grab warm, and which checkpoints
//! to keep hot in each server's page cache.

use crate::prompt_tree::TeId;
use llm_model::Checkpoint;
use npu::pagecache::PageCache;
use serde::Serialize;
use simcore::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Pool of pre-warmed pods (workload-independent, infra-managed; §6.1
/// "usually managed by the infrastructure layer, such as Kubernetes, and
/// can be shared across services").
#[derive(Debug, Clone)]
pub struct PodPool {
    warm: usize,
    /// Replenishment target.
    pub target: usize,
}

impl PodPool {
    /// Creates a pool holding `target` warm pods.
    pub fn new(target: usize) -> Self {
        PodPool {
            warm: target,
            target,
        }
    }

    /// Warm pods currently available.
    pub fn available(&self) -> usize {
        self.warm
    }

    /// Takes a warm pod if any; `false` means the scale-up pays the cold
    /// pod-allocation price.
    pub fn acquire(&mut self) -> bool {
        if self.warm > 0 {
            self.warm -= 1;
            true
        } else {
            false
        }
    }

    /// Background replenishment (one pod per call; the infra layer
    /// backfills asynchronously).
    pub fn replenish_one(&mut self) {
        if self.warm < self.target {
            self.warm += 1;
        }
    }
}

/// Pool of pre-warmed TEs. Stage one made them model-agnostic; stage two
/// parallelism-agnostic, by pooling SPMD masters and executors separately
/// and packing them on demand (§6.1).
#[derive(Debug, Clone)]
pub struct TePool {
    masters: usize,
    executors: usize,
    /// Replenishment targets.
    pub master_target: usize,
    /// Executor replenishment target.
    pub executor_target: usize,
}

impl TePool {
    /// Creates a pool with the given warm master/executor counts.
    pub fn new(masters: usize, executors: usize) -> Self {
        TePool {
            masters,
            executors,
            master_target: masters,
            executor_target: executors,
        }
    }

    /// Warm `(masters, executors)` currently available.
    pub fn available(&self) -> (usize, usize) {
        (self.masters, self.executors)
    }

    /// Packs one pre-warmed TE for an engine of `world_size` executors:
    /// one master plus `world_size` executors, all-or-nothing.
    pub fn acquire(&mut self, world_size: usize) -> bool {
        if self.masters >= 1 && self.executors >= world_size {
            self.masters -= 1;
            self.executors -= world_size;
            true
        } else {
            false
        }
    }

    /// Background replenishment of one master and up to `n` executors.
    pub fn replenish(&mut self, n: usize) {
        if self.masters < self.master_target {
            self.masters += 1;
        }
        self.executors = (self.executors + n).min(self.executor_target);
    }
}

/// Predictive DRAM pre-loading: tracks model demand and keeps the most
/// popular checkpoints resident in each server's page cache (§6.2: "The
/// cluster manager predicts models likely to scale and pre-loads them into
/// DRAM pagecache").
pub struct PreloadManager {
    /// Demand counts. A `BTreeMap`: `ranking()` iterates it and feeds
    /// preload decisions, so order must be the keys', not a hasher's.
    popularity: BTreeMap<&'static str, u64>,
}

impl PreloadManager {
    /// Creates an empty demand tracker.
    pub fn new() -> Self {
        PreloadManager {
            popularity: BTreeMap::new(),
        }
    }

    /// Records demand for a model (a request arrival, a scale event).
    pub fn note_demand(&mut self, model_name: &'static str) {
        *self.popularity.entry(model_name).or_insert(0) += 1;
    }

    /// Demand-ranked model names, most popular first (ties by name for
    /// determinism).
    pub fn ranking(&self) -> Vec<&'static str> {
        let mut v: Vec<(&'static str, u64)> =
            self.popularity.iter().map(|(&k, &v)| (k, v)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v.into_iter().map(|(k, _)| k).collect()
    }

    /// Pre-loads checkpoints into `cache` in popularity order until the
    /// cache cannot hold the next one. Returns the names made hot.
    pub fn preload_into(&self, cache: &mut PageCache, catalog: &[Checkpoint]) -> Vec<&'static str> {
        let mut hot = Vec::new();
        for name in self.ranking() {
            let Some(ckpt) = catalog.iter().find(|c| c.model.name == name) else {
                continue;
            };
            let size = ckpt.total_bytes();
            if cache.used() + size > cache.capacity() {
                continue; // try smaller, less popular models
            }
            cache.preload(ckpt.file, npu::ByteRange::new(0, size));
            hot.push(name);
        }
        hot
    }
}

impl Default for PreloadManager {
    fn default() -> Self {
        Self::new()
    }
}

/// Health-monitoring thresholds (the cluster manager's HA loop: "oversees
/// ... all JEs and TEs").
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HealthConfig {
    /// How often TEs heartbeat and the manager sweeps.
    pub heartbeat_interval: SimDuration,
    /// Consecutive missed heartbeats before a TE is declared down.
    pub miss_threshold: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            heartbeat_interval: SimDuration::from_millis(500),
            miss_threshold: 3,
        }
    }
}

impl HealthConfig {
    /// Time from a silent TE's last heartbeat to detection.
    pub fn detection_timeout(&self) -> SimDuration {
        self.heartbeat_interval
            .saturating_mul(self.miss_threshold as u64)
    }
}

/// Heartbeat bookkeeping: which TEs are alive, when each last reported,
/// and which have been declared down. Deterministic by construction
/// (BTree-ordered state, sorted sweep results).
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    last_beat: BTreeMap<TeId, SimTime>,
    down: BTreeSet<TeId>,
}

impl HealthMonitor {
    /// Creates a monitor with no registered TEs.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            last_beat: BTreeMap::new(),
            down: BTreeSet::new(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Starts (or resumes, after repair) tracking a TE; counts as a
    /// heartbeat at `now`.
    pub fn register(&mut self, te: TeId, now: SimTime) {
        self.last_beat.insert(te, now);
        self.down.remove(&te);
    }

    /// Stops tracking a TE entirely (scale-down).
    pub fn deregister(&mut self, te: TeId) {
        self.last_beat.remove(&te);
        self.down.remove(&te);
    }

    /// Records a heartbeat from a live TE.
    pub fn heartbeat(&mut self, te: TeId, now: SimTime) {
        if let Some(last) = self.last_beat.get_mut(&te) {
            *last = (*last).max(now);
        }
    }

    /// Whether `te` has been declared down (and not re-registered since).
    pub fn is_down(&self, te: TeId) -> bool {
        self.down.contains(&te)
    }

    /// Sweeps for TEs whose last heartbeat is at least the detection
    /// timeout ago. Newly detected TEs are marked down and returned in id
    /// order; already-down TEs are not re-reported.
    pub fn sweep(&mut self, now: SimTime) -> Vec<TeId> {
        let timeout = self.cfg.detection_timeout();
        let mut newly_down = Vec::new();
        for (&te, &last) in &self.last_beat {
            // Deadline form (`last + timeout`) rather than `now - last`:
            // a beat stamped ahead of `now` must not underflow the sweep.
            if !self.down.contains(&te) && last + timeout <= now {
                newly_down.push(te);
            }
        }
        for &te in &newly_down {
            self.down.insert(te);
        }
        newly_down
    }
}

/// Signals the autoscaler reads each tick ("based on metrics like load or
/// SLO-violation rates", §6).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AutoscaleSignal {
    /// Requests queued + running across the TE group.
    pub total_load: usize,
    /// TEs currently serving (excludes ones still scaling up).
    pub active_tes: usize,
    /// TEs in flight (scale-ups not yet serving).
    pub scaling_tes: usize,
    /// Fraction of recent requests violating their TPOT SLO.
    pub slo_violation_rate: f64,
}

/// What the autoscaler wants done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ScaleAction {
    /// Add this many TEs.
    Up(usize),
    /// Retire this many TEs.
    Down(usize),
}

/// Autoscaler thresholds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AutoscalerConfig {
    /// Scale up when load per active TE exceeds this.
    pub high_load_per_te: f64,
    /// Scale down when load per active TE falls below this.
    pub low_load_per_te: f64,
    /// Scale up when SLO violations exceed this rate regardless of load.
    pub max_slo_violation_rate: f64,
    /// Minimum time between actions.
    pub cooldown: SimDuration,
    /// Never go below this many TEs.
    pub min_tes: usize,
    /// Never exceed this many TEs.
    pub max_tes: usize,
    /// TEs added per scale-up decision (DeepServe scales "up to 64
    /// instances in parallel").
    pub step: usize,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            high_load_per_te: 12.0,
            low_load_per_te: 2.0,
            max_slo_violation_rate: 0.1,
            cooldown: SimDuration::from_secs(5),
            min_tes: 1,
            max_tes: 64,
            step: 4,
        }
    }
}

/// The AUTOSCALER decision loop.
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    last_action: Option<SimTime>,
}

impl Autoscaler {
    /// Creates an autoscaler.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Autoscaler {
            cfg,
            last_action: None,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Evaluates the signal; returns an action or `None` (in cooldown, or
    /// nothing to do).
    pub fn decide(&mut self, now: SimTime, s: AutoscaleSignal) -> Option<ScaleAction> {
        if let Some(last) = self.last_action {
            if now.since(last) < self.cfg.cooldown {
                return None;
            }
        }
        let provisioned = s.active_tes + s.scaling_tes;
        let per_te = if s.active_tes == 0 {
            f64::INFINITY
        } else {
            s.total_load as f64 / s.active_tes as f64
        };
        let want_up = (per_te > self.cfg.high_load_per_te
            || s.slo_violation_rate > self.cfg.max_slo_violation_rate)
            && provisioned < self.cfg.max_tes;
        if want_up {
            let n = self.cfg.step.min(self.cfg.max_tes - provisioned);
            if n > 0 {
                self.last_action = Some(now);
                return Some(ScaleAction::Up(n));
            }
        }
        let want_down = per_te < self.cfg.low_load_per_te
            && s.scaling_tes == 0
            && s.active_tes > self.cfg.min_tes
            && s.slo_violation_rate < self.cfg.max_slo_violation_rate / 2.0;
        if want_down {
            let n = self.cfg.step.min(s.active_tes - self.cfg.min_tes);
            if n > 0 {
                self.last_action = Some(now);
                return Some(ScaleAction::Down(n));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::ModelSpec;
    use npu::pagecache::FileId;

    #[test]
    fn pod_pool_exhausts_and_replenishes() {
        let mut p = PodPool::new(2);
        assert!(p.acquire());
        assert!(p.acquire());
        assert!(!p.acquire(), "pool empty -> cold path");
        p.replenish_one();
        assert!(p.acquire());
    }

    #[test]
    fn te_pool_packs_masters_and_executors() {
        let mut p = TePool::new(2, 8);
        assert!(p.acquire(4)); // 1 master + 4 executors
        assert_eq!(p.available(), (1, 4));
        assert!(!p.acquire(8), "not enough executors");
        assert!(p.acquire(4));
        assert!(!p.acquire(1), "no masters left");
    }

    #[test]
    fn preload_fills_by_popularity_within_capacity() {
        // 1.5 TB DRAM: "sufficient for pre-loading 10 70B models or 100 7B
        // models" (§6.2).
        let server = npu::specs::ServerSpec::standard(npu::specs::ChipSpec::gen2());
        let mut cache = PageCache::new(server.dram_bytes);
        let seventy = Checkpoint::new(FileId(1), ModelSpec::llama3_70b());
        assert!(
            server.dram_bytes / seventy.total_bytes() >= 10,
            "paper's 10x-70B claim must hold"
        );
        let mut pm = PreloadManager::new();
        let catalog = vec![
            Checkpoint::new(FileId(1), ModelSpec::llama3_70b()),
            Checkpoint::new(FileId(2), ModelSpec::internal_34b()),
            Checkpoint::new(FileId(3), ModelSpec::llama3_8b()),
        ];
        pm.note_demand("internal-34b");
        pm.note_demand("internal-34b");
        pm.note_demand("llama3-8b");
        let hot = pm.preload_into(&mut cache, &catalog);
        assert_eq!(hot[0], "internal-34b");
        assert!(hot.contains(&"llama3-8b"));
        assert!(cache.used() > 0);
    }

    #[test]
    fn preload_skips_oversized_but_takes_smaller() {
        let mut cache = PageCache::new(20 * (1u64 << 30)); // 20 GB only
        let mut pm = PreloadManager::new();
        pm.note_demand("llama3-70b");
        pm.note_demand("llama3-70b");
        pm.note_demand("llama3-8b");
        let catalog = vec![
            Checkpoint::new(FileId(1), ModelSpec::llama3_70b()), // 131 GB: no
            Checkpoint::new(FileId(2), ModelSpec::llama3_8b()),  // 15 GB: yes
        ];
        let hot = pm.preload_into(&mut cache, &catalog);
        assert_eq!(hot, vec!["llama3-8b"]);
    }

    #[test]
    fn autoscaler_scales_up_on_load_and_respects_cooldown() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let hot = AutoscaleSignal {
            total_load: 100,
            active_tes: 2,
            scaling_tes: 0,
            slo_violation_rate: 0.0,
        };
        assert_eq!(a.decide(SimTime::ZERO, hot), Some(ScaleAction::Up(4)));
        // Cooldown suppresses immediate repeat.
        assert_eq!(a.decide(SimTime::from_secs(1), hot), None);
        assert!(a.decide(SimTime::from_secs(10), hot).is_some());
    }

    #[test]
    fn autoscaler_scales_up_on_slo_violations_alone() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let s = AutoscaleSignal {
            total_load: 4, // light load
            active_tes: 2,
            scaling_tes: 0,
            slo_violation_rate: 0.5,
        };
        assert!(matches!(
            a.decide(SimTime::ZERO, s),
            Some(ScaleAction::Up(_))
        ));
    }

    #[test]
    fn autoscaler_scales_down_when_idle() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let s = AutoscaleSignal {
            total_load: 2,
            active_tes: 8,
            scaling_tes: 0,
            slo_violation_rate: 0.0,
        };
        assert_eq!(a.decide(SimTime::ZERO, s), Some(ScaleAction::Down(4)));
    }

    #[test]
    fn autoscaler_honors_bounds() {
        let cfg = AutoscalerConfig {
            max_tes: 4,
            min_tes: 2,
            ..AutoscalerConfig::default()
        };
        let mut a = Autoscaler::new(cfg);
        // Already at max: no up.
        let s = AutoscaleSignal {
            total_load: 1000,
            active_tes: 4,
            scaling_tes: 0,
            slo_violation_rate: 1.0,
        };
        assert_eq!(a.decide(SimTime::ZERO, s), None);
        // At min: no down.
        let s2 = AutoscaleSignal {
            total_load: 0,
            active_tes: 2,
            scaling_tes: 0,
            slo_violation_rate: 0.0,
        };
        assert_eq!(a.decide(SimTime::from_secs(100), s2), None);
    }

    #[test]
    fn health_monitor_detects_silent_te_once() {
        let cfg = HealthConfig {
            heartbeat_interval: SimDuration::from_secs(1),
            miss_threshold: 3,
        };
        let mut hm = HealthMonitor::new(cfg);
        hm.register(TeId(0), SimTime::ZERO);
        hm.register(TeId(1), SimTime::ZERO);
        // TE 1 keeps beating; TE 0 goes silent.
        for s in 1..=3 {
            hm.heartbeat(TeId(1), SimTime::from_secs(s));
        }
        assert_eq!(hm.sweep(SimTime::from_secs(2)), vec![], "within timeout");
        assert_eq!(hm.sweep(SimTime::from_secs(3)), vec![TeId(0)]);
        assert!(hm.is_down(TeId(0)));
        assert!(!hm.is_down(TeId(1)));
        assert_eq!(
            hm.sweep(SimTime::from_secs(10)),
            vec![TeId(1)],
            "no re-report of TE 0"
        );
    }

    #[test]
    fn health_monitor_reregister_resumes_tracking() {
        let mut hm = HealthMonitor::new(HealthConfig::default());
        hm.register(TeId(0), SimTime::ZERO);
        let t = SimTime::ZERO + hm.config().detection_timeout();
        assert_eq!(hm.sweep(t), vec![TeId(0)]);
        // Repair: re-register. The TE is healthy again until it goes silent.
        hm.register(TeId(0), t);
        assert!(!hm.is_down(TeId(0)));
        assert_eq!(hm.sweep(t), vec![]);
        assert_eq!(hm.sweep(t + hm.config().detection_timeout()), vec![TeId(0)]);
    }

    #[test]
    fn health_monitor_ignores_unregistered_heartbeats() {
        let mut hm = HealthMonitor::new(HealthConfig::default());
        hm.heartbeat(TeId(7), SimTime::from_secs(1));
        assert_eq!(hm.sweep(SimTime::from_secs(100)), vec![]);
        hm.register(TeId(2), SimTime::ZERO);
        hm.deregister(TeId(2));
        assert_eq!(hm.sweep(SimTime::from_secs(100)), vec![]);
    }

    #[test]
    fn zero_active_tes_forces_scale_up() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        let s = AutoscaleSignal {
            total_load: 1,
            active_tes: 0,
            scaling_tes: 0,
            slo_violation_rate: 0.0,
        };
        assert!(matches!(
            a.decide(SimTime::ZERO, s),
            Some(ScaleAction::Up(_))
        ));
    }
}
