//! Persistent worker pool for parallel engine stepping.
//!
//! PR 4 introduced bit-identical parallel wake batches, but paid a
//! `std::thread::scope` spawn + join on *every* window — and per-member
//! engine advances are so cheap that the setup cost ate the speedup
//! (BENCH_scale.json showed thread multipliers of 0.24–0.87x). This module
//! replaces per-window spawning with N long-lived workers created once at
//! [`crate::ClusterSim::set_threads`] and torn down on drop or
//! reconfigure, following the shape ServerlessLLM and λScale use for
//! execution resources: provision once, hand work off cheaply.
//!
//! ## Handoff protocol
//!
//! Each wave the coordinator bumps an [`Epoch`], splits the gated members
//! into up to `2 × lanes` contiguous chunks (`lanes = workers + 1`; the
//! over-split is what enables work-stealing at wave granularity), stamps
//! every chunk with the epoch and its original start index, and pushes
//! them all onto one shared closable [`TaskQueue`]. Workers and the
//! coordinator then race to pop chunks — the coordinator works whatever it
//! pops inline (its "first chunk" plus anything it steals back from a slow
//! round) and collects worker completions over an `mpsc` channel until the
//! round drains. Completions are reassembled **by start index**, so the
//! order chunks finish in can never reorder results: determinism comes
//! from where a result is placed, not when it arrives.
//!
//! ## Why merge order is unaffected
//!
//! A worker only ever touches the engines and event buffers *inside its
//! own chunk* — `PoolMember` moves the owned [`Engine`] through the
//! channel (the coordinator swaps a placeholder into the sim while the
//! real engine is out), so there is no shared simulated state at all. The
//! coordinator applies results in original member order, exactly as the
//! sequential path does, and the cluster's exact-pop-order merge
//! (`step_wake_batch`) runs unchanged downstream.
//!
//! ## Epoch / generation scheme
//!
//! Rounds are strictly sequential: [`WorkerPool::advance`] blocks until
//! every chunk of the round it dispatched has returned. The epoch tag on
//! each completion is asserted against the current round; a mismatch can
//! only mean a protocol bug (e.g. a completion from a pool generation that
//! should have been torn down) and fails loudly. Reconfiguration
//! (`set_threads`) drops the whole pool — closing the queue wakes parked
//! workers, which observe shutdown and exit — and builds a fresh one, so
//! generations never share a queue or channel.
//!
//! ## Panic containment
//!
//! A panic inside a worker's chunk is caught (`catch_unwind`), converted
//! into a [`Done::Poisoned`] completion carrying the panic message, and
//! the worker *keeps looping* — so the coordinator always collects a full
//! round (no deadlocked `recv`) and `Drop` can always join. After a
//! poisoned round the coordinator re-panics with the worker's message:
//! the pool fails loudly rather than serving a half-advanced wave.

use flowserve::{Engine, EngineEvent, Pacing};
use simcore::sync::{Epoch, TaskQueue};
use simcore::SimTime;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

// Under the `detcheck` feature the channel and the thread handles come
// from the model checker's shim layer, making every channel op, spawn
// and join a scheduler yield point inside a model run (and plain std
// passthrough outside one). See crates/detcheck.
#[cfg(feature = "detcheck")]
use detcheck::sync::mpsc::{channel, Receiver, Sender};
#[cfg(feature = "detcheck")]
use detcheck::thread::{spawn, JoinHandle};
#[cfg(not(feature = "detcheck"))]
use std::sync::mpsc::{channel, Receiver, Sender};
#[cfg(not(feature = "detcheck"))]
use std::thread::{spawn, JoinHandle};

/// One gated wave member travelling through the pool: the engine to
/// advance, the wake time to advance it to, and the event buffer it fills.
pub struct PoolMember {
    /// Wake time for this member's `advance_paced` call.
    pub at: SimTime,
    /// The engine, moved out of the sim for the duration of the round.
    pub engine: Engine,
    /// Engine event buffer; filled by the advance, drained by the merge.
    pub buf: Vec<EngineEvent>,
}

/// A unit of work handed to whoever pops it first (worker or coordinator).
enum Job {
    /// A contiguous chunk of wave members starting at `start` in the
    /// original member order.
    Chunk {
        epoch: u64,
        start: usize,
        pacing: Pacing,
        members: Vec<PoolMember>,
    },
    /// Test-only: panic inside the worker's `catch_unwind` to exercise the
    /// poisoned-pool path end to end.
    InjectPanic { epoch: u64 },
}

/// A completed unit of work.
enum Done {
    Chunk {
        epoch: u64,
        start: usize,
        members: Vec<PoolMember>,
    },
    /// The job panicked; the panic message rides back for the coordinator
    /// to re-raise.
    Poisoned { epoch: u64, message: String },
}

/// Runs one job to completion, containing any panic it raises.
fn run_job(job: Job) -> Done {
    match job {
        Job::Chunk {
            epoch,
            start,
            pacing,
            mut members,
        } => {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                for m in &mut members {
                    m.engine.advance_paced(m.at, pacing, &mut m.buf);
                }
            }));
            match outcome {
                Ok(()) => Done::Chunk {
                    epoch,
                    start,
                    members,
                },
                Err(payload) => Done::Poisoned {
                    epoch,
                    message: panic_message(payload),
                },
            }
        }
        Job::InjectPanic { epoch } => {
            // detlint: allow(panic) — deliberate test-only fault, raised
            // inside catch_unwind to prove poisoned rounds propagate.
            let outcome = catch_unwind(|| panic!("injected worker panic"));
            match outcome {
                Ok(()) => unreachable(epoch),
                Err(payload) => Done::Poisoned {
                    epoch,
                    message: panic_message(payload),
                },
            }
        }
    }
}

/// `Job::InjectPanic` always unwinds; this arm exists only to satisfy the
/// type checker without a panic-rule waiver on a reachable path.
fn unreachable(epoch: u64) -> Done {
    Done::Poisoned {
        epoch,
        message: "injected panic did not unwind".to_string(),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// N long-lived worker threads fed chunks of wave members over a shared
/// closable queue, with coordinator participation and wave-granularity
/// work-stealing. See the module docs for the protocol.
pub struct WorkerPool {
    injector: Arc<TaskQueue<Job>>,
    results_rx: Receiver<Done>,
    handles: Vec<JoinHandle<()>>,
    epoch: Epoch,
    /// Recycled chunk vectors: dispatch drains them, collection refills
    /// them, so steady-state rounds allocate nothing.
    spare_chunks: Vec<Vec<PoolMember>>,
    /// Collection scratch, kept across rounds for the same reason.
    scratch: Vec<(usize, Vec<PoolMember>)>,
}

impl WorkerPool {
    /// Spawns a pool backing `threads` lanes of parallelism: the
    /// coordinator is lane 0, so `threads - 1` worker threads are created.
    pub fn new(threads: usize) -> Self {
        let injector: Arc<TaskQueue<Job>> = Arc::new(TaskQueue::new());
        let (results_tx, results_rx): (Sender<Done>, Receiver<Done>) = channel();
        let workers = threads.saturating_sub(1);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let q = Arc::clone(&injector);
            let tx = results_tx.clone();
            handles.push(spawn(move || {
                // A caught panic becomes a Poisoned completion and the
                // worker keeps looping, so rounds always drain and Drop
                // always joins.
                while let Some(job) = q.pop_wait() {
                    if tx.send(run_job(job)).is_err() {
                        break;
                    }
                }
            }));
        }
        WorkerPool {
            injector,
            results_rx,
            handles,
            epoch: Epoch::new(),
            spare_chunks: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Worker threads owned by the pool (excludes the coordinator lane).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Advances every member to its wake time under `pacing`, in parallel
    /// across the pool, and returns the members in their original order.
    /// Blocks until the whole round completes. Panics (loudly, by design)
    /// if any worker panicked while holding a chunk.
    pub fn advance(&mut self, pacing: Pacing, members: &mut Vec<PoolMember>) {
        let n = members.len();
        if n == 0 {
            return;
        }
        let epoch = self.epoch.advance();
        // Over-split into up to 2 lanes' worth of chunks per lane so a
        // fast lane can steal a second helping from a slow round.
        let lanes = (self.handles.len() + 1).min(n);
        let target_chunks = (2 * lanes).min(n);
        let chunk_size = n.div_ceil(target_chunks);

        // Drain members into recycled chunk vectors and enqueue the lot
        // under one lock acquisition.
        let mut jobs: Vec<Job> = Vec::with_capacity(target_chunks);
        let mut start = 0;
        let mut drain = members.drain(..);
        while start < n {
            let take = chunk_size.min(n - start);
            let mut chunk = self.spare_chunks.pop().unwrap_or_default();
            chunk.extend(drain.by_ref().take(take));
            jobs.push(Job::Chunk {
                epoch,
                start,
                pacing,
                members: chunk,
            });
            start += take;
        }
        drop(drain);
        let expected = jobs.len();
        self.injector.push_all(jobs);

        // Coordinator lane: work (and steal) chunks inline until the
        // injector drains, then collect the stragglers from workers.
        let scratch = &mut self.scratch;
        scratch.clear();
        let mut poisoned: Option<String> = None;
        let mut collected = 0;
        let mut absorb = |done: Done, poisoned: &mut Option<String>| match done {
            Done::Chunk {
                epoch: e,
                start,
                members,
            } => {
                assert_eq!(e, epoch, "stale pool completion: round {e} vs {epoch}");
                scratch.push((start, members));
            }
            Done::Poisoned { epoch: e, message } => {
                assert_eq!(e, epoch, "stale pool poison: round {e} vs {epoch}");
                poisoned.get_or_insert(message);
            }
        };
        while let Some(job) = self.injector.try_pop() {
            absorb(run_job(job), &mut poisoned);
            collected += 1;
        }
        while collected < expected {
            // The channel can only disconnect if every worker exited, which
            // a live pool never does — treat it as a poisoned round rather
            // than spinning.
            match self.results_rx.recv() {
                Ok(done) => absorb(done, &mut poisoned),
                Err(_) => {
                    poisoned.get_or_insert_with(|| "worker pool channel disconnected".to_string());
                    break;
                }
            }
            collected += 1;
        }
        if let Some(message) = poisoned {
            // detlint: allow(panic) — poisoned pool must fail loudly: a
            // half-advanced wave can never be merged deterministically.
            panic!("worker pool poisoned: {message}");
        }

        // Reassemble in original member order — completion order is
        // irrelevant by construction.
        self.scratch.sort_unstable_by_key(|(start, _)| *start);
        for (_, chunk) in &mut self.scratch {
            members.append(chunk);
        }
        for (_, chunk) in self.scratch.drain(..) {
            self.spare_chunks.push(chunk);
        }
        debug_assert_eq!(members.len(), n);
    }

    /// Test hook: dispatches a job that panics inside a worker and drives
    /// the normal collection path, so tests can prove a poisoned pool
    /// fails loudly instead of deadlocking. Panics like a real poisoned
    /// round; run under `catch_unwind`.
    pub fn inject_worker_panic(&mut self) {
        let epoch = self.epoch.advance();
        self.injector.push_all([Job::InjectPanic { epoch }]);
        let done = if self.handles.is_empty() {
            // No workers (threads == 1): exercise the same path inline.
            self.injector.try_pop().map(run_job)
        } else {
            self.results_rx.recv().ok()
        };
        match done {
            Some(Done::Poisoned { epoch: e, message }) => {
                assert_eq!(e, epoch, "stale pool poison: round {e} vs {epoch}");
                // detlint: allow(panic) — re-raises the injected worker
                // panic; this is the behavior under test.
                panic!("worker pool poisoned: {message}");
            }
            Some(Done::Chunk { .. }) | None => {
                // detlint: allow(panic) — test hook: an injected panic
                // that fails to surface is itself a protocol violation.
                panic!("injected worker panic was not reported");
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Wake every parked worker; each observes shutdown and exits.
        self.injector.close();
        for handle in self.handles.drain(..) {
            // Worker mains contain panics via catch_unwind, so join only
            // fails after a payload the runtime itself refused — nothing
            // actionable mid-drop, and re-panicking while unwinding would
            // abort. Swallow it.
            let _ = handle.join();
        }
    }
}
