//! Decode-length predictors for PD-aware scheduling.
//!
//! §5.3.2: "we predict the decode length for an incoming request using a set
//! of decode length predictors with varying accuracy. One such predictor is
//! the oracle, which assumes perfect accuracy and is an upper bound for
//! performance. In practice, we use a predictor with 90% accuracy to balance
//! prediction precision and overhead."

use crate::api::ApiRequest;
use simcore::SimRng;

/// Predicts how many tokens a request will decode.
///
/// `Send` is required so a whole [`crate::ClusterSim`] can move across
/// threads (the gateway runs one in a serving thread).
pub trait DecodePredictor: Send {
    /// A human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Predicted decode length for `req`.
    fn predict(&mut self, req: &ApiRequest) -> u32;
}

/// Perfect prediction — the upper bound for PD-aware scheduling.
#[derive(Debug, Default)]
pub struct Oracle;

impl DecodePredictor for Oracle {
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn predict(&mut self, req: &ApiRequest) -> u32 {
        req.target_output
    }
}

/// Predicts the true length with probability `accuracy`; otherwise errs by
/// a log-uniform factor in `[1/max_error, max_error]` — a mispredict lands
/// in the wrong heatmap bucket, which is exactly the failure mode that
/// matters to the scheduler.
pub struct FixedAccuracy {
    accuracy: f64,
    max_error: f64,
    rng: SimRng,
}

impl FixedAccuracy {
    /// Creates a predictor with the given hit probability.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[0, 1]` or `max_error < 1`.
    pub fn new(accuracy: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&accuracy),
            "accuracy must be in [0, 1], got {accuracy}"
        );
        FixedAccuracy {
            accuracy,
            max_error: 8.0,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// The production predictor: 90% accuracy (§5.3.2).
    pub fn production(seed: u64) -> Self {
        Self::new(0.9, seed)
    }
}

impl DecodePredictor for FixedAccuracy {
    fn name(&self) -> &'static str {
        "fixed-accuracy"
    }
    fn predict(&mut self, req: &ApiRequest) -> u32 {
        if self.rng.chance(self.accuracy) {
            req.target_output
        } else {
            // Log-uniform multiplicative error.
            let sign: f64 = if self.rng.chance(0.5) { 1.0 } else { -1.0 };
            let mag = self.rng.f64() * self.max_error.ln();
            let factor = (sign * mag).exp();
            ((req.target_output as f64 * factor).round() as u32).max(1)
        }
    }
}

/// Always predicts a fixed constant (a "mean output length" heuristic —
/// the ablation baseline).
#[derive(Debug)]
pub struct Constant(pub u32);

impl DecodePredictor for Constant {
    fn name(&self) -> &'static str {
        "constant"
    }
    fn predict(&mut self, _req: &ApiRequest) -> u32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowserve::synthetic_tokens;
    use simcore::SimTime;

    fn req(output: u32) -> ApiRequest {
        ApiRequest::chat(1, synthetic_tokens(1, 100, 64_000), output, SimTime::ZERO)
    }

    #[test]
    fn oracle_is_exact() {
        let mut o = Oracle;
        for out in [1u32, 100, 5000] {
            assert_eq!(o.predict(&req(out)), out);
        }
    }

    #[test]
    fn accuracy_rate_is_respected() {
        let mut p = FixedAccuracy::new(0.9, 7);
        let r = req(200);
        let n = 10_000;
        let hits = (0..n).filter(|_| p.predict(&r) == 200).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.02, "hit rate {rate}");
    }

    #[test]
    fn mispredictions_are_bounded_and_positive() {
        let mut p = FixedAccuracy::new(0.0, 3); // always wrong
        let r = req(64);
        for _ in 0..1000 {
            let v = p.predict(&r);
            assert!(v >= 1);
            assert!(v <= 64 * 9, "error factor must stay under 8x: {v}");
        }
    }

    #[test]
    fn zero_accuracy_still_mostly_differs() {
        let mut p = FixedAccuracy::new(0.0, 5);
        let r = req(300);
        let same = (0..1000).filter(|_| p.predict(&r) == 300).count();
        assert!(same < 50, "always-wrong predictor matched {same} times");
    }

    #[test]
    fn constant_ignores_request() {
        let mut c = Constant(128);
        assert_eq!(c.predict(&req(9999)), 128);
        assert_eq!(c.predict(&req(1)), 128);
    }
}
