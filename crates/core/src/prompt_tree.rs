//! The JE's global prompt trees (§5.2).
//!
//! "The distributed scheduler in JE maintains a global prompt tree for each
//! type of TE, while each TE also maintains a local prompt tree that shares
//! an index with its corresponding global tree."
//!
//! The shared index is the same chained block hash the TE-local RTC radix
//! tree uses, so a prefix cached on a TE and a prompt arriving at the JE
//! agree on identity without shipping tokens around. The global tree stores,
//! per prefix level, which TEs hold it and when it was last refreshed —
//! enough to answer "which TE has the longest common prefix for this
//! request" (`select_tes_prefix_match`).

use flowserve::TokenId;
use simcore::SimTime;
use std::collections::BTreeMap;

/// A TE identity (platform-level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub struct TeId(pub u32);

/// Chained hash matching `flowserve::rtc::radix`'s scheme. Kept textually
/// in sync: the two trees must agree on prefix identity (the "shared
/// index").
fn chain_hash(prev: u64, block_tokens: &[TokenId]) -> u64 {
    let mut h = prev ^ 0x51_7c_c1_b7_27_22_0a_95;
    for t in block_tokens {
        h ^= t.0 as u64;
        h = h.wrapping_mul(0x100000001b3);
        h = h.rotate_left(23);
    }
    h
}

/// The global prompt tree for one TE group.
#[derive(Debug)]
pub struct GlobalPromptTree {
    block_size: usize,
    /// prefix chain hash -> (TE -> last refresh time). Both layers are
    /// `BTreeMap`s: match/prune/remove all iterate, and the results feed
    /// scheduling decisions — order must be the keys', not a hasher's.
    levels: BTreeMap<u64, BTreeMap<TeId, SimTime>>,
    /// Soft capacity; pruning keeps roughly this many entries.
    capacity: usize,
}

impl GlobalPromptTree {
    /// Creates a tree for prefixes quantized to `block_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize, capacity: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        GlobalPromptTree {
            block_size,
            levels: BTreeMap::new(),
            capacity: capacity.max(16),
        }
    }

    /// Records that `te` now caches the full-block prefixes of `tokens`
    /// (called when a TE reports a finished prefill insertion).
    pub fn insert(&mut self, now: SimTime, te: TeId, tokens: &[TokenId]) {
        let mut hash = 0u64;
        for block in tokens.chunks_exact(self.block_size) {
            hash = chain_hash(hash, block);
            self.levels.entry(hash).or_default().insert(te, now);
        }
        if self.levels.len() > self.capacity {
            self.prune(now);
        }
    }

    /// Longest matched prefix per TE, in tokens. TEs with no match are
    /// absent.
    pub fn match_tokens(&self, tokens: &[TokenId]) -> BTreeMap<TeId, usize> {
        let mut depth: BTreeMap<TeId, usize> = BTreeMap::new();
        let mut hash = 0u64;
        let mut level = 0usize;
        for block in tokens.chunks_exact(self.block_size) {
            hash = chain_hash(hash, block);
            let Some(holders) = self.levels.get(&hash) else {
                break;
            };
            level += 1;
            for &te in holders.keys() {
                let d = depth.entry(te).or_insert(0);
                // Contiguity: only extend a TE's depth if it held every
                // shallower level too.
                if *d == (level - 1) * self.block_size {
                    *d = level * self.block_size;
                }
            }
        }
        depth.retain(|_, &mut d| d > 0);
        depth
    }

    /// The TE with the longest common prefix for `tokens`, with the match
    /// length; ties broken by lowest TE id (deterministic).
    pub fn best_te(&self, tokens: &[TokenId]) -> Option<(TeId, usize)> {
        self.match_tokens(tokens)
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
    }

    /// Forgets everything a TE held (scale-down, crash, cache reset).
    pub fn remove_te(&mut self, te: TeId) {
        for holders in self.levels.values_mut() {
            holders.remove(&te);
        }
        self.levels.retain(|_, h| !h.is_empty());
    }

    /// Entry count (prefix levels tracked).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Drops the stalest half of the entries (called on overflow). An
    /// approximation of the TEs' own LRU behaviour; the global tree is a
    /// hint structure and may safely under-report.
    fn prune(&mut self, _now: SimTime) {
        let mut ages: Vec<SimTime> = self
            .levels
            .values()
            .map(|h| h.values().copied().max().unwrap_or(SimTime::ZERO))
            .collect();
        ages.sort_unstable();
        let cutoff = ages[ages.len() / 2];
        self.levels
            .retain(|_, h| h.values().copied().max().unwrap_or(SimTime::ZERO) > cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowserve::synthetic_tokens;

    const B: usize = 16;

    fn toks(seed: u64, n: usize) -> Vec<TokenId> {
        synthetic_tokens(seed, n, 64_000)
    }

    #[test]
    fn routes_to_te_with_longest_prefix() {
        let mut t = GlobalPromptTree::new(B, 10_000);
        let shared = toks(1, 64);
        let mut long = shared.clone();
        long.extend(toks(2, 64));
        t.insert(SimTime::ZERO, TeId(0), &shared);
        t.insert(SimTime::ZERO, TeId(1), &long);
        // A prompt extending `long` matches TE 1 deepest.
        let mut prompt = long.clone();
        prompt.extend(toks(3, 32));
        let (best, len) = t.best_te(&prompt).unwrap();
        assert_eq!(best, TeId(1));
        assert_eq!(len, 128);
        let m = t.match_tokens(&prompt);
        assert_eq!(m[&TeId(0)], 64);
    }

    #[test]
    fn no_match_for_unseen_prompt() {
        let mut t = GlobalPromptTree::new(B, 10_000);
        t.insert(SimTime::ZERO, TeId(0), &toks(1, 64));
        assert!(t.best_te(&toks(99, 64)).is_none());
    }

    #[test]
    fn ties_break_to_lowest_te() {
        let mut t = GlobalPromptTree::new(B, 10_000);
        let p = toks(1, 64);
        t.insert(SimTime::ZERO, TeId(3), &p);
        t.insert(SimTime::ZERO, TeId(1), &p);
        assert_eq!(t.best_te(&p).unwrap().0, TeId(1));
    }

    #[test]
    fn shares_index_with_engine_rtc() {
        // A prefix cached through a real engine and the same prompt matched
        // through the global tree must agree on match length — the "shared
        // index" property.
        use flowserve::rtc::{Rtc, RtcConfig};
        let mut rtc = Rtc::new(RtcConfig {
            block_size: B,
            npu_blocks: 64,
            dram_blocks: 0,
        });
        let prompt = toks(7, 70); // 4 full blocks + tail
        let blocks = rtc.alloc_blocks(5).unwrap();
        rtc.insert_prefix(SimTime::ZERO, &prompt, &blocks);
        let engine_match = rtc.match_by_prefix_token(&prompt).tokens;

        let mut t = GlobalPromptTree::new(B, 10_000);
        t.insert(SimTime::ZERO, TeId(0), &prompt);
        let global_match = t.best_te(&prompt).unwrap().1;
        assert_eq!(engine_match, global_match);
    }

    #[test]
    fn remove_te_forgets_everything() {
        let mut t = GlobalPromptTree::new(B, 10_000);
        t.insert(SimTime::ZERO, TeId(0), &toks(1, 64));
        t.insert(SimTime::ZERO, TeId(1), &toks(1, 32));
        t.remove_te(TeId(0));
        let m = t.match_tokens(&toks(1, 64));
        assert_eq!(m.get(&TeId(0)), None);
        assert_eq!(m[&TeId(1)], 32);
    }

    #[test]
    fn pruning_bounds_memory() {
        let mut t = GlobalPromptTree::new(B, 64);
        for i in 0..100u64 {
            t.insert(SimTime::from_secs(i), TeId(0), &toks(i, 64));
        }
        assert!(t.len() <= 64 * 2, "tree must stay bounded: {}", t.len());
        // Recent inserts survive pruning.
        assert!(t.best_te(&toks(99, 64)).is_some());
    }

    #[test]
    fn contiguity_is_required() {
        let mut t = GlobalPromptTree::new(B, 10_000);
        let p = toks(1, 64);
        // TE 0 holds only the deep prefix entry (simulate a partial
        // insert): insert full, then fake-remove the first level by
        // removing the TE and re-inserting only deeper content is not
        // directly expressible; instead check that a TE holding an
        // unrelated deep block does not get credit.
        t.insert(SimTime::ZERO, TeId(0), &p[..32]);
        let m = t.match_tokens(&p);
        assert_eq!(m[&TeId(0)], 32, "match stops at what TE 0 holds");
    }
}
