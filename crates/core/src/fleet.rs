//! Model-fleet registry: hundreds of serverless model endpoints sharing
//! one NPU cluster (§6.2, "serverless" deployment).
//!
//! Single-model DeepServe pre-warms one checkpoint everywhere. The fleet
//! layer instead registers many models, tracks which TEs currently hold
//! each one in HBM, and prices cold starts through the four-tier storage
//! hierarchy (HBM ← DRAM ← local SSD ← remote store) plus the five-step
//! scaling pipeline. The registry itself is passive bookkeeping — the
//! cluster simulation drives state transitions so every mutation happens
//! at a deterministic simulated instant.

use crate::prompt_tree::TeId;
use crate::scaling::ScalingOptimizations;
use llm_model::{Checkpoint, ModelSpec};
use npu::pagecache::FileId;
use npu::RemoteStoreSpec;
use serde::{Number, Serialize, Value};
use simcore::SimDuration;

/// Fleet checkpoints get FileIds from this offset upward; low ids are
/// reserved for the single-model paths (fault repair uses `FileId(1)`).
pub const FLEET_FILE_BASE: u64 = 1000;

/// Where a registered model currently stands on the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadState {
    /// No TE holds the model; the next request pays a cold start.
    Unloaded,
    /// A checkpoint load is in flight; requests queue behind it.
    Loading,
    /// At least one live TE serves the model from HBM.
    Loaded,
}

impl LoadState {
    /// Stable lowercase name (gateway `/v1/models`, metrics labels).
    pub fn as_str(self) -> &'static str {
        match self {
            LoadState::Unloaded => "unloaded",
            LoadState::Loading => "loading",
            LoadState::Loaded => "loaded",
        }
    }
}

impl Serialize for LoadState {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

/// How a cold start fetches and distributes the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdStartMode {
    /// Baseline: every miss streams the whole checkpoint from the remote
    /// store, ignoring local SSD/DRAM residency (what a pre-warmed
    /// single-model deployment pays when the model is not the one warmed).
    PrewarmMiss,
    /// Storage hierarchy: fault in only the bytes missing from each tier
    /// (remote → SSD → DRAM), then TE-Load from DRAM.
    Hierarchy,
    /// Hierarchy plus λScale-style binary-tree multicast when scaling an
    /// already-loaded model out to more TEs.
    HierarchyMulticast,
}

impl ColdStartMode {
    /// Stable name for reports and bench JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ColdStartMode::PrewarmMiss => "prewarm_miss",
            ColdStartMode::Hierarchy => "hierarchy",
            ColdStartMode::HierarchyMulticast => "hierarchy_multicast",
        }
    }
}

/// Fleet-mode tuning knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Scaling-pipeline optimizations applied to every cold start.
    pub scaling: ScalingOptimizations,
    /// Checkpoint fetch/distribution strategy.
    pub mode: ColdStartMode,
    /// The shared remote checkpoint store behind every server's SSD.
    pub remote: RemoteStoreSpec,
    /// Cold-start SLA: a queued request should see first dispatch within
    /// this bound of its arrival (per-tier attainment is reported).
    pub cold_sla: SimDuration,
    /// Weight bytes one TE may pin in HBM before evicting its LRU models
    /// (None = 70% of the TE's aggregate HBM; the rest stays for KV).
    pub hbm_weight_budget: Option<u64>,
    /// Queue depth on a model's hottest host above which the JE scales
    /// the model out to one more TE.
    pub scale_out_queue: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            scaling: ScalingOptimizations::all(),
            mode: ColdStartMode::Hierarchy,
            remote: RemoteStoreSpec::default(),
            cold_sla: SimDuration::from_secs(30),
            hbm_weight_budget: None,
            scale_out_queue: 8,
        }
    }
}

/// One registered model endpoint.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Endpoint name exposed by the gateway ("fleet-017-llama3-8b").
    pub name: String,
    /// Model geometry.
    pub spec: ModelSpec,
    /// The checkpoint file backing the endpoint.
    pub ckpt: Checkpoint,
}

/// The fleet: model entries plus their live placement.
///
/// Host lists are kept sorted so iteration order is deterministic
/// regardless of load/evict interleaving.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    entries: Vec<ModelEntry>,
    states: Vec<LoadState>,
    hosts: Vec<Vec<TeId>>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a model endpoint; returns its fleet index.
    pub fn register(&mut self, name: String, spec: ModelSpec) -> u32 {
        let idx = self.entries.len() as u32;
        let file = FileId(FLEET_FILE_BASE + idx as u64);
        self.entries.push(ModelEntry {
            name,
            ckpt: Checkpoint::new(file, spec.clone()),
            spec,
        });
        self.states.push(LoadState::Unloaded);
        self.hosts.push(Vec::new());
        idx
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for model `m`, if registered.
    pub fn entry(&self, m: u32) -> Option<&ModelEntry> {
        self.entries.get(m as usize)
    }

    /// Load state of model `m` (Unloaded if out of range).
    pub fn state(&self, m: u32) -> LoadState {
        self.states
            .get(m as usize)
            .copied()
            .unwrap_or(LoadState::Unloaded)
    }

    /// TEs currently serving model `m` from HBM, ascending.
    pub fn hosts(&self, m: u32) -> &[TeId] {
        self.hosts.get(m as usize).map_or(&[], Vec::as_slice)
    }

    /// Looks up a model index by endpoint name.
    pub fn find(&self, name: &str) -> Option<u32> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(|i| i as u32)
    }

    /// Marks a load in flight.
    pub fn set_loading(&mut self, m: u32) {
        if let Some(s) = self.states.get_mut(m as usize) {
            *s = LoadState::Loading;
        }
    }

    /// Records `te` as a live host of `m` and marks the model loaded.
    pub fn set_loaded(&mut self, m: u32, te: TeId) {
        let Some(hosts) = self.hosts.get_mut(m as usize) else {
            return;
        };
        if let Err(pos) = hosts.binary_search(&te) {
            hosts.insert(pos, te);
        }
        if let Some(s) = self.states.get_mut(m as usize) {
            *s = LoadState::Loaded;
        }
    }

    /// Removes `te` from `m`'s hosts; the model drops back to Unloaded
    /// when its last host disappears (unless a load is in flight).
    pub fn remove_host(&mut self, m: u32, te: TeId) {
        let Some(hosts) = self.hosts.get_mut(m as usize) else {
            return;
        };
        if let Ok(pos) = hosts.binary_search(&te) {
            hosts.remove(pos);
        }
        if hosts.is_empty() {
            if let Some(s) = self.states.get_mut(m as usize) {
                if *s == LoadState::Loaded {
                    *s = LoadState::Unloaded;
                }
            }
        }
    }

    /// Reverts a failed load: back to Unloaded if no host survives, or
    /// Loaded if some replica is still up (an aborted scale-out).
    pub fn abort_loading(&mut self, m: u32) {
        let has_hosts = !self.hosts(m).is_empty();
        if let Some(s) = self.states.get_mut(m as usize) {
            *s = if has_hosts {
                LoadState::Loaded
            } else {
                LoadState::Unloaded
            };
        }
    }

    /// Crash cleanup: drops `te` from every model's host list.
    pub fn drop_host_everywhere(&mut self, te: TeId) {
        for m in 0..self.entries.len() as u32 {
            self.remove_host(m, te);
        }
    }

    /// Aggregate weight bytes currently pinned in HBM (each host holds a
    /// full copy; TP sharding divides it across the TE's own NPUs).
    pub fn resident_weight_bytes(&self) -> u64 {
        self.entries
            .iter()
            .zip(&self.hosts)
            .map(|(e, h)| e.spec.weight_bytes() * h.len() as u64)
            .sum()
    }
}

impl Serialize for ModelRegistry {
    fn to_value(&self) -> Value {
        Value::Array(
            self.entries
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    Value::Object(vec![
                        ("id".to_string(), Value::String(e.name.clone())),
                        ("state".to_string(), self.states[i].to_value()),
                        (
                            "hosts".to_string(),
                            Value::Array(
                                self.hosts[i]
                                    .iter()
                                    .map(|t| Value::Number(Number::U64(u64::from(t.0))))
                                    .collect(),
                            ),
                        ),
                        (
                            "weight_bytes".to_string(),
                            Value::Number(Number::U64(e.spec.weight_bytes())),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

/// Builds a registry of `n` models cycling three preset families with
/// per-index size variation, so a 100+-model fleet spans ~7–80 GB
/// checkpoints: big enough to stress DRAM, small enough that SSD holds a
/// long tail.
pub fn fleet_catalog(n: usize) -> ModelRegistry {
    let families = [
        ModelSpec::generic_7b(),
        ModelSpec::llama3_8b(),
        ModelSpec::internal_34b(),
    ];
    let mut reg = ModelRegistry::new();
    for i in 0..n {
        let base = &families[i % families.len()];
        // Vary size ±30% in 5% steps so no two neighbours in a family
        // share a checkpoint size.
        let factor = 1.0 + 0.05 * (i % 13) as f64 - 0.30;
        let params = (base.params as f64 * factor) as u64;
        let name = format!("fleet-{i:03}-{}", base.name);
        reg.register(name, base.clone().scaled_to(params));
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = ModelRegistry::new();
        let a = reg.register("m-a".into(), ModelSpec::tiny_test());
        let b = reg.register("m-b".into(), ModelSpec::generic_7b());
        assert_eq!((a, b), (0, 1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.find("m-b"), Some(1));
        assert_eq!(reg.find("nope"), None);
        assert_eq!(reg.state(0), LoadState::Unloaded);
        // Fleet FileIds stay clear of the repair path's FileId(1).
        assert_eq!(reg.entry(0).map(|e| e.ckpt.file), Some(FileId(1000)));
        assert_eq!(reg.entry(1).map(|e| e.ckpt.file), Some(FileId(1001)));
    }

    #[test]
    fn host_lifecycle_keeps_sorted_and_transitions_state() {
        let mut reg = ModelRegistry::new();
        let m = reg.register("m".into(), ModelSpec::tiny_test());
        reg.set_loading(m);
        assert_eq!(reg.state(m), LoadState::Loading);
        reg.set_loaded(m, TeId(3));
        reg.set_loaded(m, TeId(1));
        reg.set_loaded(m, TeId(1)); // idempotent
        assert_eq!(reg.hosts(m), &[TeId(1), TeId(3)]);
        assert_eq!(reg.state(m), LoadState::Loaded);
        reg.remove_host(m, TeId(1));
        assert_eq!(reg.state(m), LoadState::Loaded);
        reg.remove_host(m, TeId(3));
        assert_eq!(reg.state(m), LoadState::Unloaded);
    }

    #[test]
    fn crash_cleanup_drops_te_from_all_models() {
        let mut reg = ModelRegistry::new();
        for i in 0..3 {
            let m = reg.register(format!("m{i}"), ModelSpec::tiny_test());
            reg.set_loaded(m, TeId(0));
            reg.set_loaded(m, TeId(2));
        }
        reg.drop_host_everywhere(TeId(0));
        for m in 0..3 {
            assert_eq!(reg.hosts(m), &[TeId(2)]);
            assert_eq!(reg.state(m), LoadState::Loaded);
        }
        assert_eq!(
            reg.resident_weight_bytes(),
            3 * ModelSpec::tiny_test().weight_bytes()
        );
    }

    #[test]
    fn catalog_spans_sizes_and_names_are_unique() {
        let reg = fleet_catalog(120);
        assert_eq!(reg.len(), 120);
        let mut names: Vec<_> = (0..120)
            .map(|i| reg.entry(i).map(|e| e.name.clone()))
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 120, "endpoint names must be unique");
        let sizes: Vec<u64> = (0..120)
            .filter_map(|i| reg.entry(i).map(|e| e.spec.weight_bytes()))
            .collect();
        let (min, max) = (sizes.iter().min(), sizes.iter().max());
        assert!(min < max, "catalog must span sizes");
        // Neighbouring same-family entries differ in checkpoint size.
        assert_ne!(sizes[0], sizes[3]);
        // A catalog-scale fleet outweighs a 1.5 TB DRAM tier in aggregate.
        let total: u64 = sizes.iter().sum();
        assert!(total > 2 * (1u64 << 40), "total {total} should exceed 2 TB");
    }

    #[test]
    fn load_state_names_are_stable() {
        assert_eq!(LoadState::Unloaded.as_str(), "unloaded");
        assert_eq!(LoadState::Loading.as_str(), "loading");
        assert_eq!(LoadState::Loaded.as_str(), "loaded");
        assert_eq!(
            ColdStartMode::HierarchyMulticast.as_str(),
            "hierarchy_multicast"
        );
    }
}
