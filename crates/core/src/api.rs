//! User-facing API surface and the request–job–task serverless abstraction.
//!
//! "Users interact with DeepServe by sending HTTP requests, which trigger
//! one or more internal jobs. Each job may generate multiple tasks." (§3)
//! A chat completion is one serving job; on a PD-colocated engine it is one
//! task, in a prefill–decode-disaggregated setup it is two.

use flowserve::{CacheId, Prompt, RequestId, TokenId};
use serde::{Serialize, Value};
use simcore::{SimDuration, SimTime};

/// Service-level objectives attached to a request class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Slo {
    /// Time-to-first-token target.
    pub ttft: SimDuration,
    /// Time-per-output-token target.
    pub tpot: SimDuration,
}

impl Slo {
    /// The interactive-chat SLO used throughout the evaluation (50 ms TPOT,
    /// Figure 3's SLA line; a few seconds of TTFT).
    pub fn chat() -> Self {
        Slo {
            ttft: SimDuration::from_secs(3),
            tpot: SimDuration::from_millis(50),
        }
    }

    /// Relaxed batch-inference SLO.
    pub fn batch() -> Self {
        Slo {
            ttft: SimDuration::from_secs(60),
            tpot: SimDuration::from_millis(500),
        }
    }
}

/// The API endpoint a request came through (Figure 1: chat completion,
/// batch inference, context caching, ... JEs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Endpoint {
    /// `/v1/chat/completions`-style interactive serving.
    ChatCompletion,
    /// Offline batch inference.
    BatchInference,
    /// Explicit context-cache creation (prefill + pin, no decode).
    ContextCacheCreate,
    /// Embedding computation (prefill-only workload).
    Embedding,
}

/// One user request as the platform sees it (already tokenized by the
/// frontend tokenizer pool).
#[derive(Debug, Clone)]
pub struct ApiRequest {
    /// Globally unique id.
    pub id: RequestId,
    /// Endpoint.
    pub endpoint: Endpoint,
    /// Tokenized prompt (shared by reference; an O(1) clone).
    pub prompt: Prompt,
    /// Ground-truth output length (simulation oracle; schedulers see only
    /// a prediction).
    pub target_output: u32,
    /// Arrival at the frontend.
    pub arrival: SimTime,
    /// SLO class.
    pub slo: Slo,
    /// Explicit context-cache id to reuse/create.
    pub cache_id: Option<CacheId>,
    /// Target model in the fleet registry; `None` = the cluster's single
    /// pre-warmed model (the pre-fleet behaviour, unchanged).
    pub model: Option<u32>,
}

impl ApiRequest {
    /// A chat completion request.
    pub fn chat(id: u64, prompt: impl Into<Prompt>, target_output: u32, arrival: SimTime) -> Self {
        ApiRequest {
            id: RequestId(id),
            endpoint: Endpoint::ChatCompletion,
            prompt: prompt.into(),
            target_output,
            arrival,
            slo: Slo::chat(),
            cache_id: None,
            model: None,
        }
    }

    /// The same request aimed at a fleet model.
    pub fn with_model(mut self, model: u32) -> Self {
        self.model = Some(model);
        self
    }

    /// Prompt length in tokens.
    pub fn prefill_len(&self) -> usize {
        self.prompt.len()
    }

    /// Ratio of decode length to prefill length (the heatmap x-axis).
    pub fn decode_ratio(&self, predicted_decode: u32) -> f64 {
        predicted_decode as f64 / self.prompt.len().max(1) as f64
    }
}

/// One live-ingress event: everything needed to replay a gateway
/// submission deterministically. The arrival stamp is the *final* one the
/// sim chose (strictly increasing, collision-free), so `inject`ing the
/// materialized requests into a fresh sim reproduces the live run
/// bit-for-bit. Only chat completions flow through the gateway today, so
/// the endpoint/SLO class is implied rather than recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngressRecord {
    /// Request id (gateway-assigned, unique per run).
    pub id: u64,
    /// Final arrival stamp in integer sim nanoseconds.
    pub arrival_ns: u64,
    /// Tokenized prompt.
    pub prompt: Vec<TokenId>,
    /// Requested output length.
    pub target_output: u32,
    /// Session context-cache id, if the session layer assigned one.
    pub cache_id: Option<u64>,
    /// Fleet model the request targeted, if any.
    pub model: Option<u32>,
}

impl IngressRecord {
    /// Captures a request at the moment it is accepted into the sim.
    pub fn from_request(req: &ApiRequest) -> Self {
        IngressRecord {
            id: req.id.0,
            arrival_ns: req.arrival.as_nanos(),
            prompt: req.prompt.as_slice().to_vec(),
            target_output: req.target_output,
            cache_id: req.cache_id.map(|c| c.0),
            model: req.model,
        }
    }

    /// Materializes the recorded submission for replay.
    pub fn to_request(&self) -> ApiRequest {
        let mut req = ApiRequest::chat(
            self.id,
            self.prompt.clone(),
            self.target_output,
            SimTime::ZERO + SimDuration::from_nanos(self.arrival_ns),
        );
        req.cache_id = self.cache_id.map(CacheId);
        req.model = self.model;
        req
    }

    /// Parses one record from its JSON form. Errors name the missing or
    /// ill-typed field so a hand-edited session log fails loudly.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let num = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("field {k:?} must be an unsigned integer"))
        };
        let prompt = field("prompt")?
            .as_array()
            .ok_or_else(|| "field \"prompt\" must be an array".to_string())?
            .iter()
            .map(|t| {
                t.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .map(TokenId)
                    .ok_or_else(|| "prompt tokens must be u32".to_string())
            })
            .collect::<Result<Vec<TokenId>, String>>()?;
        let cache_id = match v.get("cache_id") {
            None | Some(Value::Null) => None,
            Some(c) => Some(
                c.as_u64()
                    .ok_or_else(|| "field \"cache_id\" must be an unsigned integer".to_string())?,
            ),
        };
        // Absent in pre-fleet session logs; those replay as `None`.
        let model = match v.get("model") {
            None | Some(Value::Null) => None,
            Some(m) => Some(
                m.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| "field \"model\" must be a u32".to_string())?,
            ),
        };
        Ok(IngressRecord {
            id: num("id")?,
            arrival_ns: num("arrival_ns")?,
            prompt,
            target_output: u32::try_from(num("target_output")?)
                .map_err(|_| "field \"target_output\" must fit in u32".to_string())?,
            cache_id,
            model,
        })
    }
}

impl Serialize for IngressRecord {
    fn to_value(&self) -> Value {
        use serde::value::Number;
        Value::Object(vec![
            ("id".to_string(), Value::Number(Number::U64(self.id))),
            (
                "arrival_ns".to_string(),
                Value::Number(Number::U64(self.arrival_ns)),
            ),
            (
                "prompt".to_string(),
                Value::Array(
                    self.prompt
                        .iter()
                        .map(|&t| Value::Number(Number::U64(u64::from(t.0))))
                        .collect(),
                ),
            ),
            (
                "target_output".to_string(),
                Value::Number(Number::U64(u64::from(self.target_output))),
            ),
            (
                "cache_id".to_string(),
                self.cache_id
                    .map_or(Value::Null, |c| Value::Number(Number::U64(c))),
            ),
            (
                "model".to_string(),
                self.model
                    .map_or(Value::Null, |m| Value::Number(Number::U64(u64::from(m)))),
            ),
        ])
    }
}

/// Materializes a workload [`workloads::ReqSpec`] into a platform request:
/// shared-prefix tokens followed by unique tokens, both derived
/// deterministically from the spec's seeds. Request ids are the caller's
/// (usually the spec's index in the trace).
pub fn materialize(spec: &workloads::ReqSpec, id: u64, vocab: u32) -> ApiRequest {
    let mut prompt = Vec::with_capacity(spec.prompt_len);
    if let Some((seed, len)) = spec.shared_prefix {
        prompt.extend(flowserve::synthetic_tokens(seed, len, vocab));
    }
    prompt.extend(flowserve::synthetic_tokens(
        spec.prompt_seed,
        spec.unique_len(),
        vocab,
    ));
    ApiRequest::chat(id, prompt, spec.output_len, spec.arrival)
}

/// Lazily materializes a stream of specs, assigning sequential ids. The
/// streaming counterpart of [`materialize_trace`]: pulling one item builds
/// one request, so a million-request trace never exists in memory at once.
/// Same specs + same vocab produce byte-identical requests either way.
pub fn stream_trace(
    specs: impl Iterator<Item = workloads::ReqSpec>,
    vocab: u32,
) -> impl Iterator<Item = ApiRequest> {
    specs
        .enumerate()
        .map(move |(i, s)| materialize(&s, i as u64, vocab))
}

/// Materializes a whole trace, assigning sequential ids.
pub fn materialize_trace(specs: &[workloads::ReqSpec], vocab: u32) -> Vec<ApiRequest> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| materialize(s, i as u64, vocab))
        .collect()
}

/// Materializes a fleet trace: sequential ids, each request tagged with
/// its target model.
pub fn materialize_fleet_trace(specs: &[workloads::FleetReqSpec], vocab: u32) -> Vec<ApiRequest> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| materialize(&s.spec, i as u64, vocab).with_model(s.model))
        .collect()
}

/// Job kinds DeepServe decomposes requests into (§3). This paper focuses on
/// serving; post-training job kinds exist in the abstraction and are
/// modeled as opaque long-running occupants of TEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobKind {
    /// One serving job per chat/batch request.
    Serving,
    /// Fine-tuning pipeline stages (preprocess, train, evaluate).
    FineTunePreprocess,
    /// Training stage of a fine-tune.
    FineTuneTrain,
    /// Evaluation stage of a fine-tune.
    FineTuneEvaluate,
    /// Agent-serving step (tool-augmented loop).
    AgentServing,
}

/// Task kinds a serving job can fan out into, depending on the engine
/// configuration it lands on (§3: one task on PD-colocated, two tasks in a
/// PD-disaggregated setup, at least two in attention-expert-disaggregated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TaskKind {
    /// Whole request on one colocated engine.
    Unified,
    /// Prefill half of a disaggregated pair.
    Prefill,
    /// Decode half of a disaggregated pair.
    Decode,
    /// Attention side of operator-level disaggregation.
    Attention,
    /// Expert side of operator-level disaggregation.
    Expert,
}

/// A job spawned by a request.
#[derive(Debug, Clone)]
pub struct Job {
    /// The request that spawned this job.
    pub request: RequestId,
    /// Kind.
    pub kind: JobKind,
    /// Tasks the job fans out into, in execution order.
    pub tasks: Vec<TaskKind>,
}

impl Job {
    /// Decomposes a serving request for a chosen execution style.
    pub fn serving(request: RequestId, disaggregated: bool) -> Job {
        Job {
            request,
            kind: JobKind::Serving,
            tasks: if disaggregated {
                vec![TaskKind::Prefill, TaskKind::Decode]
            } else {
                vec![TaskKind::Unified]
            },
        }
    }

    /// Decomposes a fine-tuning request into its three jobs (the paper's
    /// example: "a fine-tuning request triggers multiple internal jobs,
    /// including preprocessing, training, and evaluation").
    pub fn fine_tune_pipeline(request: RequestId) -> Vec<Job> {
        vec![
            Job {
                request,
                kind: JobKind::FineTunePreprocess,
                tasks: vec![TaskKind::Unified],
            },
            Job {
                request,
                kind: JobKind::FineTuneTrain,
                tasks: vec![TaskKind::Unified],
            },
            Job {
                request,
                kind: JobKind::FineTuneEvaluate,
                tasks: vec![TaskKind::Unified],
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowserve::synthetic_tokens;

    #[test]
    fn serving_job_task_counts_match_paper() {
        let colocated = Job::serving(RequestId(1), false);
        assert_eq!(colocated.tasks, vec![TaskKind::Unified]);
        let disagg = Job::serving(RequestId(1), true);
        assert_eq!(disagg.tasks, vec![TaskKind::Prefill, TaskKind::Decode]);
    }

    #[test]
    fn fine_tune_fans_out_to_three_jobs() {
        let jobs = Job::fine_tune_pipeline(RequestId(9));
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].kind, JobKind::FineTunePreprocess);
        assert_eq!(jobs[2].kind, JobKind::FineTuneEvaluate);
    }

    #[test]
    fn decode_ratio_is_heatmap_axis() {
        let r = ApiRequest::chat(1, synthetic_tokens(1, 2048, 64_000), 512, SimTime::ZERO);
        assert_eq!(r.prefill_len(), 2048);
        assert!((r.decode_ratio(512) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn slo_presets_are_ordered() {
        assert!(Slo::chat().tpot < Slo::batch().tpot);
        assert!(Slo::chat().ttft < Slo::batch().ttft);
    }
}
