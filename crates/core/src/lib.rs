//! # deepserve — the serverless LLM serving platform
//!
//! Rust reproduction of DeepServe (published at USENIX ATC '25; "DeepFlow"
//! in the arXiv preprint), Huawei Cloud's serverless AI platform. This
//! crate is the paper's primary contribution: everything above the
//! FlowServe engine.
//!
//! * [`api`] — the request–job–task serverless abstraction (§3).
//! * [`je`] — Job Executors and the distributed scheduling policy
//!   (Algorithm 1: PD-aware + locality-aware + load-aware, §5).
//! * [`prompt_tree`] — the JE-side global prompt trees sharing an index
//!   with TE-local RTC radix trees (§5.2).
//! * [`heatmap`] — the profiled PD-disaggregated vs PD-colocated heatmap
//!   and `select_tes_PD_heatmap` (§5.3).
//! * [`predictor`] — decode-length predictors (oracle / 90%-accurate
//!   production predictor, §5.3.2).
//! * [`manager`] — the cluster manager: pre-warmed pod/TE pools,
//!   predictive DRAM pre-loading, the AUTOSCALER (§3, §6).
//! * [`scaling`] — the five-step scaling pipeline with every optimization
//!   of Table 2, plus the TE-Load paths (DRAM-hit/miss, NPU-fork) (§6).
//! * [`cluster`] — the cluster simulation composing JEs, TEs, the fabric
//!   and workloads (the testbed for Figures 4–6).
//! * [`pool`] — the persistent worker pool backing parallel cluster
//!   stepping: long-lived workers, channel handoff, wave-granularity
//!   work-stealing, byte-identical merge order.
//! * [`fleet`] — the serverless model-fleet registry: hundreds of model
//!   endpoints, per-model load states, and cold-start pricing through the
//!   storage hierarchy (§6.2).

#![forbid(unsafe_code)]

pub mod api;
pub mod cluster;
pub mod fleet;
pub mod heatmap;
pub mod je;
pub mod manager;
pub mod pool;
pub mod predictor;
pub mod prompt_tree;
pub mod scaling;

pub use api::{
    materialize, materialize_fleet_trace, materialize_trace, stream_trace, ApiRequest, Endpoint,
    IngressRecord, Job, JobKind, Slo, TaskKind,
};
pub use cluster::{
    default_threads, parse_threads, ClusterConfig, ClusterSim, FaultRecoveryConfig, LiveEvent,
    RunReport, TeRole,
};
pub use fleet::{fleet_catalog, ColdStartMode, FleetConfig, LoadState, ModelEntry, ModelRegistry};
pub use heatmap::Heatmap;
pub use je::{Decision, JobExecutor, Policy, SchedPool, Target, TeSnapshot};
pub use manager::{
    AutoscaleSignal, Autoscaler, AutoscalerConfig, HealthConfig, HealthMonitor, PodPool,
    PreloadManager, ScaleAction, TePool,
};
pub use pool::{PoolMember, WorkerPool};
pub use predictor::{Constant, DecodePredictor, FixedAccuracy, Oracle};
pub use prompt_tree::{GlobalPromptTree, TeId};
pub use scaling::{LoadPath, ScalingBreakdown, ScalingModel, ScalingOptimizations, SourceLoad};
